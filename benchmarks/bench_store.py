"""Out-of-core store: shuffle cost, scan throughput, and cache behavior.

Measures the three costs the store trades against memory: (1) the
one-time out-of-core shuffle (rows → column shards on disk) against the
in-memory dispatcher's working set, (2) cold vs warm full-shard scan
throughput (mmap page-ins vs LRU cache hits), and (3) an end-to-end
training run from the store on the local multiprocess backend, checked
bit-identical against the in-memory simulator run and reporting the
per-worker cache hit ratio and bytes actually fetched from disk.

Writes ``BENCH_store.json`` into the current working directory; CI's
store job uploads it.  Wall-clock numbers are this machine's, not the
paper cluster's — the point is the *shape* (warm scans orders of
magnitude over cold, training hit ratios near 1 once shards are hot)
and the exactness columns (param diff 0.0, budget respected).
"""

import json
import pathlib
import time

import numpy as np

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.runtime.local import max_rss_bytes
from repro.sim import CLUSTER1, SimulatedCluster
from repro.storage.serialization import csr_matrix_bytes
from repro.store import STORE_LEDGER, ColumnShardStore, ShuffleWriter
from repro.utils import ascii_table

WORKERS = 4
LOCAL_PROCESSES = 2
ITERATIONS = 12
BATCH = 100
BLOCK = 128
SEED = 5
ROWS = 4000
FEATURES = 600
NNZ_PER_ROW = 12


def make_data():
    return make_classification(ROWS, FEATURES, nnz_per_row=NNZ_PER_ROW, seed=SEED)


def make_driver(backend, store_dir="", budget=0):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    return ColumnSGDDriver(
        LogisticRegression(),
        SGD(0.5),
        cluster,
        config=ColumnSGDConfig(
            batch_size=BATCH,
            iterations=ITERATIONS,
            eval_every=ITERATIONS,
            seed=SEED,
            block_size=BLOCK,
            backend=backend,
            local_processes=LOCAL_PROCESSES if backend == "local" else 0,
            store_dir=str(store_dir) if store_dir else "",
            memory_budget_bytes=budget,
        ),
    )


def scan_all(store, budget):
    """Full pass over every worker's every workset; seconds + stats."""
    stores = [store.worker_store(w, cache_budget_bytes=budget) for w in range(WORKERS)]
    start = time.perf_counter()
    for ws in stores:
        for b in ws.block_ids():
            ws.get(b)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    for ws in stores:
        for b in ws.block_ids():
            ws.get(b)
    warm_s = time.perf_counter() - start
    stats = [ws.cache_stats() for ws in stores]
    for ws in stores:
        ws.clear()
    return cold_s, warm_s, stats


def test_store_out_of_core(emit, tmp_path):
    data = make_data()
    dataset_bytes = csr_matrix_bytes(data.n_rows, data.nnz, with_labels=True)
    budget = dataset_bytes // 4

    # -- shuffle: out-of-core write under a tracked budget ---------------
    writer = ShuffleWriter(
        tmp_path / "store",
        n_features=data.n_features,
        n_workers=WORKERS,
        block_size=BLOCK,
        memory_budget_bytes=budget,
    )
    start = time.perf_counter()
    for i in range(data.n_rows):
        row = data.features.row(i)
        writer.add_row(data.labels[i], row.indices, row.values)
    store = ColumnShardStore.finish(writer)
    shuffle_s = time.perf_counter() - start
    assert writer.meter.peak <= budget

    # -- scans: cold (disk) vs warm (cache) ------------------------------
    STORE_LEDGER.reset()
    cold_s, warm_s, scan_stats = scan_all(store, budget)
    scan_bytes = sum(s["bytes_read"] for s in scan_stats)
    assert scan_bytes == STORE_LEDGER.bytes_read

    # -- training: store-backed local run vs in-memory simulator --------
    ref = make_driver("sim")
    ref.load(data)
    ref.fit()
    trained = make_driver("local", store_dir=tmp_path / "store", budget=budget)
    trained.load(data)
    start = time.perf_counter()
    result = trained.fit()
    train_s = time.perf_counter() - start
    diff = float(np.max(np.abs(ref.current_params() - trained.current_params())))
    assert diff == 0.0

    hits = misses = fetched = 0
    for per_pid in trained.store_read_stats.values():
        for stats in per_pid.values():
            hits += stats["hits"]
            misses += stats["misses"]
            fetched += stats["bytes_read"]
    hit_ratio = hits / max(1, hits + misses)

    report = {
        "rows": ROWS,
        "features": FEATURES,
        "nnz_per_row": NNZ_PER_ROW,
        "workers": WORKERS,
        "block_size": BLOCK,
        "dataset_bytes": dataset_bytes,
        "memory_budget_bytes": budget,
        "stored_bytes": store.total_stored_bytes(),
        "shuffle": {
            "seconds": shuffle_s,
            "tracked_peak_bytes": writer.meter.peak,
            "blocks": store.manifest.n_blocks,
        },
        "scan": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "bytes_read": scan_bytes,
            "cold_mb_per_s": scan_bytes / 1e6 / max(cold_s, 1e-9),
        },
        "training": {
            "backend": "local",
            "seconds": train_s,
            "iterations": ITERATIONS,
            "final_loss": result.final_loss(),
            "max_abs_param_diff_vs_sim": diff,
            "cache_hit_ratio": hit_ratio,
            "bytes_fetched": fetched,
        },
        "max_rss_bytes": max_rss_bytes(),
    }
    pathlib.Path("BENCH_store.json").write_text(json.dumps(report, indent=2) + "\n")
    emit(
        "store_out_of_core",
        ascii_table(
            ["metric", "value"],
            [
                ("dataset bytes (model)", "{:,}".format(dataset_bytes)),
                ("memory budget bytes", "{:,}".format(budget)),
                ("shuffle s", "{:.3f}".format(shuffle_s)),
                ("shuffle tracked peak", "{:,}".format(writer.meter.peak)),
                ("stored bytes on disk", "{:,}".format(store.total_stored_bytes())),
                ("cold scan s", "{:.4f}".format(cold_s)),
                ("warm scan s", "{:.4f}".format(warm_s)),
                ("cold scan MB/s", "{:.1f}".format(report["scan"]["cold_mb_per_s"])),
                ("train s (local, store)", "{:.2f}".format(train_s)),
                ("train cache hit ratio", "{:.3f}".format(hit_ratio)),
                ("max |param diff| vs sim", "{:.1e}".format(diff)),
                ("max RSS bytes", "{:,}".format(max_rss_bytes())),
            ],
        ),
    )
