"""Ablation: column-assignment scheme under skewed feature popularity.

CTR data is Zipf-distributed, so *range* partitioning can hand one
worker most of the non-zeros (hot features cluster in id space when ids
are assigned by frequency), while round-robin and hash spread them.
Imbalance directly stretches the BSP statistics phase — this ablation
quantifies the choice DESIGN.md calls out (the paper uses round-robin
as its example scheme in Algorithm 4).

Wall-clock benchmark: one training iteration under the worst scheme.
"""

import numpy as np

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import Dataset, make_classification
from repro.linalg import CSRMatrix
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.partition import dispatch_block_based, make_assignment
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table

SCHEMES = ("round_robin", "range", "hash")


def frequency_sorted_dataset(seed=12):
    """Zipf data with feature ids sorted by popularity (hot ids first) —
    the adversarial case for range partitioning."""
    data = make_classification(6000, 4000, nnz_per_row=12, zipf_exponent=1.2, seed=seed)
    counts = np.bincount(data.features.indices, minlength=data.n_features)
    order = np.argsort(-counts)        # old id, most popular first
    remap = np.empty_like(order)
    remap[order] = np.arange(order.size)
    relabeled = CSRMatrix(
        data.features.indptr.copy(),
        remap[data.features.indices],
        data.features.data.copy(),
        data.n_features,
    )
    return Dataset(relabeled, data.labels, name="zipf-sorted")


def nnz_imbalance(data, scheme):
    """max/mean of per-worker shard nnz after dispatch."""
    asg = make_assignment(scheme, data.n_features, CLUSTER1.n_workers)
    stores, _, _ = dispatch_block_based(
        data, asg, SimulatedCluster(CLUSTER1), block_size=512
    )
    nnz = [s.nnz for s in stores]
    return max(nnz) / (sum(nnz) / len(nnz))


def iteration_time(data, scheme):
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=6, eval_every=0,
                               seed=12, scheme=scheme, block_size=512),
    )
    driver.load(data)
    return driver.fit().avg_iteration_seconds()


def test_ablation_partition_scheme(benchmark, emit):
    data = frequency_sorted_dataset()
    rows = []
    for scheme in SCHEMES:
        rows.append(
            (
                scheme,
                "{:.2f}".format(nnz_imbalance(data, scheme)),
                "{:.4f}s".format(iteration_time(data, scheme)),
            )
        )
    emit(
        "ablation_partition_scheme",
        ascii_table(["scheme", "shard nnz imbalance (max/mean)", "per-iteration"], rows),
    )

    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0,
                               seed=12, scheme="range", block_size=512),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
