"""Fault tolerance on the real backend: kills + stragglers, measured.

Runs ColumnSGD LR and the MLlib baseline on ``backend='local'`` under a
seeded :class:`~repro.runtime.LocalChaos` plan — a scripted SIGKILL per
run (so every cell exercises recovery) plus Poisson kill/stall arrivals
— across two chaos seeds, and reports what the fault pipeline actually
did: recoveries by mode, transport retries, and the measured seconds
spent detecting and reloading.

The numeric contract rides along: ColumnSGD restores from real
checkpoint spills (``mode='checkpoint'``), MLlib respawns stateless
workers (``mode='reload'``) and must end bit-identical to the fault-free
simulator.

Writes ``BENCH_faults_local.json`` into the current working directory;
CI's chaos-local job uploads it.
"""

import json
import pathlib

import numpy as np

from repro.baselines.registry import make_trainer
from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.core.recovery import RecoveryPolicy
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.runtime import LocalChaos, LocalFaultEvent, LocalFaultKind
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table

WORKERS = 4
ITERATIONS = 12
BATCH = 100
SEED = 5
CHAOS_SEEDS = (11, 12)
TIMEOUT_S = 5.0  # generous floor: CI machines must not time out fault-free


def make_data():
    return make_classification(2000, 400, nnz_per_row=10, seed=SEED)


def make_chaos(chaos_seed):
    return LocalChaos(
        mtbf_rounds=4.0,
        seed=chaos_seed,
        kinds=(LocalFaultKind.KILL, LocalFaultKind.STALL),
        stall_s=0.05,
        n_workers=WORKERS,
        # one guaranteed mid-run SIGKILL so every cell recovers
        events=(
            LocalFaultEvent(
                iteration=3, kind=LocalFaultKind.KILL, worker=chaos_seed % WORKERS
            ),
        ),
    )


def run_columnsgd(data, failures):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    driver = ColumnSGDDriver(
        LogisticRegression(),
        SGD(0.5),
        cluster,
        config=ColumnSGDConfig(
            batch_size=BATCH,
            iterations=ITERATIONS,
            eval_every=ITERATIONS,
            seed=SEED,
            backend="local" if failures is not None else "sim",
            local_processes=WORKERS if failures is not None else 0,
            local_timeout_s=TIMEOUT_S,
            sync_policy="retry" if failures is not None else "backup",
            check_protocol=True,
        ),
        recovery=RecoveryPolicy(checkpoint_every=2) if failures is not None else None,
        failures=failures,
    )
    driver.load(data)
    result = driver.fit()
    return result, driver.cluster.engine_trace


def run_mllib(data, failures):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    trainer = make_trainer(
        "mllib",
        LogisticRegression(),
        SGD(0.5),
        cluster,
        batch_size=BATCH,
        iterations=ITERATIONS,
        eval_every=ITERATIONS,
        seed=SEED,
        backend="local" if failures is not None else "sim",
        local_processes=WORKERS if failures is not None else 0,
        local_timeout_s=TIMEOUT_S,
        check_protocol=True,
        failures=failures,
    )
    trainer.load(data)
    result = trainer.fit()
    return result, trainer.cluster.engine_trace


RUNNERS = {"columnsgd": run_columnsgd, "mllib": run_mllib}


def summarize(trace):
    by_mode = {}
    for event in trace.recoveries:
        by_mode[event.mode] = by_mode.get(event.mode, 0) + 1
    return {
        "recoveries": len(trace.recoveries),
        "recoveries_by_mode": by_mode,
        "recovery_seconds": sum(
            e.detect_s + e.reload_s + e.replay_s for e in trace.recoveries
        ),
        "retries": len(trace.retries),
        "retry_rounds": sorted({e.round for e in trace.retries}),
    }


def test_faults_local_matrix(emit):
    data = make_data()
    report = {
        "workers": WORKERS,
        "iterations": ITERATIONS,
        "batch_size": BATCH,
        "seed": SEED,
        "chaos_seeds": list(CHAOS_SEEDS),
        "timeout_s": TIMEOUT_S,
        "systems": {},
    }
    rows = []
    for system, run in RUNNERS.items():
        reference, _ = run(data, None)
        cells = {}
        for chaos_seed in CHAOS_SEEDS:
            result, trace = run(data, make_chaos(chaos_seed))
            cell = summarize(trace)
            cell["rounds_completed"] = len(trace.rounds())
            cell["final_loss"] = result.final_loss()
            cell["max_abs_param_diff_vs_sim"] = float(
                np.max(np.abs(result.final_params - reference.final_params))
            )
            # every run must survive its guaranteed kill and finish
            assert cell["rounds_completed"] == ITERATIONS
            assert cell["recoveries"] >= 1
            if system == "mllib":
                # stateless reload loses nothing
                assert cell["max_abs_param_diff_vs_sim"] == 0.0
            cells[str(chaos_seed)] = cell
            rows.append(
                (
                    system,
                    str(chaos_seed),
                    "{}/{}".format(cell["rounds_completed"], ITERATIONS),
                    json.dumps(cell["recoveries_by_mode"], sort_keys=True),
                    str(cell["retries"]),
                    "{:.3f}".format(cell["recovery_seconds"]),
                    "{:.4f}".format(cell["final_loss"]),
                )
            )
        report["systems"][system] = cells
    pathlib.Path("BENCH_faults_local.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    emit(
        "faults_local_matrix",
        ascii_table(
            [
                "system",
                "chaos seed",
                "rounds",
                "recoveries by mode",
                "retries",
                "recovery s",
                "final loss",
            ],
            rows,
        ),
    )
