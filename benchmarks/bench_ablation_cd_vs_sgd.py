"""Ablation: the three optimizer families of Section VI, head to head.

ColumnSGD (O(B) statistics), Hydra-style coordinate descent (O(N)
residual sync over column partitions) and CoCoA-style SDCA (O(m) model
sync over row partitions) solve the same ridge problem.  The bench
surfaces the structural trade each family makes: what crosses the
network per round, and how much progress a round buys.

Wall-clock benchmark: one CD round.
"""

from repro.core import train_columnsgd
from repro.datasets import make_regression
from repro.extensions import CoCoATrainer, RidgeCDTrainer
from repro.models import LeastSquares
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration


def run_cd(data, iterations):
    trainer = RidgeCDTrainer(
        SimulatedCluster(CLUSTER1), lam=0.0, iterations=iterations,
        eval_every=5, seed=15,
    )
    trainer.load(data)
    return trainer.fit()


def run_cocoa(data, iterations):
    trainer = CoCoATrainer(
        SimulatedCluster(CLUSTER1), lam=1e-3, local_steps=800,
        iterations=iterations, eval_every=5, seed=15,
    )
    trainer.load(data)
    return trainer.fit()


def run_sgd(data, iterations):
    return train_columnsgd(
        data, LeastSquares(), SGD(0.1), SimulatedCluster(CLUSTER1),
        batch_size=1000, iterations=iterations, eval_every=5, seed=15,
    )


def comparison_table(data):
    cd = run_cd(data, 40)
    cocoa = run_cocoa(data, 40)
    sgd = run_sgd(data, 200)
    target = max(cd.final_loss(), cocoa.final_loss(), sgd.final_loss()) * 1.2
    rows = []
    for result in (cd, cocoa, sgd):
        reached = result.time_to_loss(target)
        rows.append(
            (
                result.system,
                result.n_iterations,
                "{:,}".format(result.records[-1].bytes_sent),
                format_duration(reached) if reached else "never",
                "{:.4f}".format(result.final_loss()),
            )
        )
    return ascii_table(
        ["system", "rounds", "bytes/round", "time to common loss", "final loss"],
        rows,
    )


def test_ablation_cd_vs_sgd(benchmark, emit):
    data = make_regression(8000, 20_000, nnz_per_row=12, noise_std=0.05, seed=15)
    emit("ablation_cd_vs_sgd", comparison_table(data))

    trainer = RidgeCDTrainer(
        SimulatedCluster(CLUSTER1), lam=0.0, iterations=1, eval_every=0, seed=15
    )
    trainer.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: trainer.run_round(next(counter)))
