"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure of the paper.
Results are printed through :func:`emit` (bypassing pytest capture, so
``pytest benchmarks/ --benchmark-only`` shows them inline) and appended
to ``benchmarks/results/<name>.txt`` for the record.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print a report block to the live terminal and persist it."""

    def _emit(name: str, text: str):
        block = "\n=== {} ===\n{}\n".format(name, text)
        with capsys.disabled():
            print(block)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "{}.txt".format(name)
        path.write_text(block)

    return _emit
