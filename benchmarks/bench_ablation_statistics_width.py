"""Ablation: statistics width (Section III-C's "form of statistics").

ColumnSGD's traffic is ``B * width`` values: width 1 for GLMs, C for
MLR, F+1 for FM.  This ablation sweeps MLR class counts and FM factor
counts and confirms per-iteration traffic and time scale with width and
*only* width — never with model dimension.

Wall-clock benchmark: one MLR iteration at C=10.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver, train_columnsgd
from repro.datasets import make_classification, make_multiclass
from repro.models import FactorizationMachine, MultinomialLogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table


def mlr_sweep():
    rows = []
    for n_classes in (2, 5, 10, 20):
        data = make_multiclass(4000, 5000, n_classes=n_classes, nnz_per_row=10,
                               seed=13)
        cluster = SimulatedCluster(CLUSTER1)
        result = train_columnsgd(
            data, MultinomialLogisticRegression(n_classes=n_classes), SGD(0.5),
            cluster, batch_size=500, iterations=5, eval_every=0, seed=13,
        )
        rows.append(
            (
                "MLR C={}".format(n_classes),
                n_classes,
                "{:,}".format(result.records[-1].bytes_sent),
                "{:.4f}s".format(result.avg_iteration_seconds()),
            )
        )
    return rows


def fm_sweep():
    data = make_classification(4000, 5000, nnz_per_row=10, binary_features=False,
                               seed=13)
    rows = []
    for factors in (1, 5, 10, 20):
        cluster = SimulatedCluster(CLUSTER1)
        result = train_columnsgd(
            data, FactorizationMachine(n_factors=factors), SGD(0.01), cluster,
            batch_size=500, iterations=5, eval_every=0, seed=13,
        )
        rows.append(
            (
                "FM F={}".format(factors),
                factors + 1,
                "{:,}".format(result.records[-1].bytes_sent),
                "{:.4f}s".format(result.avg_iteration_seconds()),
            )
        )
    return rows


def test_ablation_statistics_width(benchmark, emit):
    table = ascii_table(
        ["model", "statistics width", "bytes/iteration", "per-iteration"],
        mlr_sweep() + fm_sweep(),
    )
    emit("ablation_statistics_width", table)

    data = make_multiclass(4000, 5000, n_classes=10, nnz_per_row=10, seed=13)
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        MultinomialLogisticRegression(n_classes=10), SGD(0.5), cluster,
        config=ColumnSGDConfig(batch_size=500, iterations=1, eval_every=0, seed=13),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
