"""Ablation: how Table IV's conclusions move with the network fabric.

The paper's headline speedups are measured on a 1 Gbps cluster.  This
ablation re-evaluates the per-iteration cost model (paper-scale kdd12)
across fabrics from 1 to 100 Gbps and latencies from 0.1 to 5 ms:

* MLlib's gap shrinks roughly linearly with bandwidth (its cost IS the
  model transfer) but stays an order of magnitude at 100 Gbps;
* ColumnSGD is latency/task-overhead bound, so faster networks barely
  help it — and at high bandwidth + high latency MXNet widens its lead
  (ColumnSGD pays 2 task launches, the PS pays ~none);
* the ColumnSGD-vs-MXNet crossover therefore tracks the *scheduling*
  constants more than the fabric, the paper's avazu observation.

Wall-clock benchmark: the 3-fabric x 4-system prediction grid.
"""

from repro.core import predict_iteration_time
from repro.datasets import load_profile
from repro.net import NetworkModel
from repro.net.network import gbps
from repro.utils import ascii_table, format_duration

FABRICS = [
    ("1 Gbps / 0.5 ms", gbps(1.0), 0.5e-3),     # the paper's Cluster 1
    ("10 Gbps / 0.5 ms", gbps(10.0), 0.5e-3),   # the paper's Cluster 2
    ("100 Gbps / 0.5 ms", gbps(100.0), 0.5e-3),
    ("10 Gbps / 0.1 ms", gbps(10.0), 0.1e-3),
    ("10 Gbps / 5 ms", gbps(10.0), 5e-3),       # cross-AZ latency
]
SYSTEMS = ("mllib", "petuum", "mxnet", "columnsgd")


def grid():
    profile = load_profile("kdd12")
    rows = []
    for label, bandwidth, latency in FABRICS:
        net = NetworkModel(bandwidth=bandwidth, latency=latency)
        times = {
            s: predict_iteration_time(
                s, m=profile.paper_features, batch_size=1000, n_workers=8,
                avg_nnz_per_row=profile.avg_nnz_per_row, network=net,
            )
            for s in SYSTEMS
        }
        rows.append(
            (label,)
            + tuple(format_duration(times[s]) for s in SYSTEMS)
            + ("{:.0f}x".format(times["mllib"] / times["columnsgd"]),)
        )
    return ascii_table(
        ["fabric", "MLlib", "Petuum", "MXNet", "ColumnSGD", "MLlib/ColumnSGD"],
        rows,
    )


def test_ablation_network_sensitivity(benchmark, emit):
    emit("ablation_network_sensitivity", grid())
    benchmark(grid)
