"""Ablation: the two straggler-mitigation families, head to head.

The paper (Section VI) describes two lines of work: break the barrier
(SSP / bounded staleness — what Petuum does, unavailable to ColumnSGD
because the master needs all statistics) versus backup computation
(gradient coding — what ColumnSGD adopts).  Having both in one
framework lets us compare them directly under the same transient
stragglers:

* ColumnSGD-backup keeps the *exact* synchronous trajectory and flat
  time, at 2x memory/compute;
* Petuum-SSP keeps single-copy memory and near-flat time, but computes
  on stale models (approximate trajectory).

Wall-clock benchmark: one SSP iteration under stragglers.
"""

from repro.baselines import ParameterServerTrainer, RowSGDConfig, StaleSyncPSTrainer
from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel
from repro.utils import ascii_table

LEVEL = 5.0


def straggler():
    return StragglerModel(CLUSTER1.n_workers, level=LEVEL, seed=16)


def run_columnsgd(data, backup, with_straggler):
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=500, iterations=20, eval_every=20,
                               seed=16, backup=backup),
        straggler=straggler() if with_straggler else None,
    )
    driver.load(data)
    return driver.fit()


def run_ps(data, staleness, with_straggler):
    cluster = SimulatedCluster(CLUSTER1)
    cls = StaleSyncPSTrainer if staleness else ParameterServerTrainer
    kwargs = {"staleness": staleness} if staleness else {}
    trainer = cls(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=20, eval_every=20, seed=16),
        straggler=straggler() if with_straggler else None,
        **kwargs,
    )
    trainer.load(data)
    return trainer.fit()


def comparison(data):
    rows = []
    cases = [
        ("ColumnSGD (no straggler)", run_columnsgd(data, 0, False), "exact"),
        ("ColumnSGD + SL5", run_columnsgd(data, 0, True), "exact"),
        ("ColumnSGD-backup + SL5", run_columnsgd(data, 1, True), "exact"),
        ("Petuum BSP + SL5", run_ps(data, 0, True), "exact"),
        ("Petuum SSP(s=3) + SL5", run_ps(data, 3, True), "stale gradients"),
    ]
    for label, result, math in cases:
        rows.append(
            (
                label,
                "{:.4f}s".format(result.avg_iteration_seconds()),
                "{:.4f}".format(result.final_loss()),
                math,
            )
        )
    return ascii_table(["setting", "per-iteration", "final loss", "trajectory"], rows)


def test_ablation_straggler_strategies(benchmark, emit):
    data = load_profile("avazu").generate(seed=16, rows=6000)
    emit("ablation_straggler_strategies", comparison(data))

    trainer = StaleSyncPSTrainer(
        LogisticRegression(), SGD(1.0), SimulatedCluster(CLUSTER1),
        config=RowSGDConfig(batch_size=500, iterations=5, eval_every=0, seed=16),
        straggler=straggler(), staleness=3,
    )
    trainer.load(data)
    benchmark(lambda: trainer.fit(iterations=5))
