"""Fig 11: scalability w.r.t. cluster size (WX stand-in, Cluster 2).

(a) row-to-column transformation time falls as machines are added
    (paper: 2.05x from 10 to 40 machines — sublinear because every block
    is split and shuffled among all workers);
(b) per-iteration time stays roughly flat — compute shrinks per worker
    but the master's statistics fan-in grows, the scalability limit the
    paper calls out.

Wall-clock benchmark: the 40-machine dispatch.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER2, SimulatedCluster
from repro.utils import ascii_table, format_duration

MACHINES = (10, 20, 30, 40)


def run(data, n_workers):
    cluster = SimulatedCluster(CLUSTER2.with_workers(n_workers))
    config = ColumnSGDConfig(batch_size=1000, iterations=8, eval_every=0,
                             seed=9, block_size=256)
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config=config)
    load_report = driver.load(data)
    result = driver.fit()
    return load_report.seconds, result.avg_iteration_seconds()


def fig11_table(data):
    rows = []
    base_load = None
    for k in MACHINES:
        load_s, iter_s = run(data, k)
        base_load = base_load or load_s
        rows.append(
            (
                k,
                format_duration(load_s),
                "{:.2f}x".format(base_load / load_s),
                format_duration(iter_s),
            )
        )
    return ascii_table(
        ["machines", "transform time", "speedup vs 10", "per-iteration"], rows
    )


def test_fig11(benchmark, emit):
    data = load_profile("wx").generate(seed=9, rows=40_000, features=100_000)
    emit("fig11_cluster_size", fig11_table(data))

    def load_on_40():
        cluster = SimulatedCluster(CLUSTER2)
        config = ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0,
                                 block_size=256)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
        driver.load(data)

    benchmark(load_on_40)
