"""Table V: per-iteration time of training FM — MXNet vs ColumnSGD.

Shape to reproduce: the speedup grows with model size (0.5x on avazu —
MXNet wins there — to 14x on kdd12 at F=10), and at F=50 on kdd12
(2.8 billion parameters, ~22 GB) MXNet's dense driver-side init exceeds
the 32 GB node and OOMs while ColumnSGD trains fine.

Wall-clock benchmark: one ColumnSGD FM iteration (F=10).
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver, predict_iteration_time
from repro.datasets import load_profile
from repro.errors import OutOfMemoryError
from repro.models import FactorizationMachine
from repro.net import NetworkModel
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_bytes

PAPER_TABLE5 = {
    ("avazu", 10): {"mxnet": 0.03, "columnsgd": 0.06},
    ("kddb", 10): {"mxnet": 0.56, "columnsgd": 0.06},
    ("kdd12", 10): {"mxnet": 0.84, "columnsgd": 0.06},
    ("kdd12", 50): {"mxnet": None, "columnsgd": 0.15},  # MXNet OOM
}


def analytic_fm_times():
    net = NetworkModel(bandwidth=CLUSTER1.bandwidth_bytes_per_s,
                       latency=CLUSTER1.latency_s)
    rows = []
    for (name, factors), paper in PAPER_TABLE5.items():
        p = load_profile(name)
        width = factors + 1
        args = dict(
            m=p.paper_features, batch_size=1000, n_workers=8,
            avg_nnz_per_row=p.avg_nnz_per_row, network=net,
            statistics_width=width, params_per_feature=width,
        )
        column = predict_iteration_time("columnsgd", **args)

        # MXNet: dense init of m * (F+1) float64 at the driver, twice
        # (model + serialization buffer) — check the 32 GB budget first.
        init_bytes = 2 * p.paper_features * width * 8
        if init_bytes > CLUSTER1.memory_bytes_per_node:
            mxnet_cell = "OOM ({} > 32 GB)".format(format_bytes(init_bytes))
            speedup = "-"
        else:
            mxnet = predict_iteration_time("mxnet", **args)
            mxnet_cell = "{:.3f}".format(mxnet)
            speedup = "{:.1f}x".format(mxnet / column)
        rows.append(
            (
                "{} (F={})".format(name, factors),
                mxnet_cell,
                "{:.3f}".format(column),
                speedup,
                "{} / {}".format(paper["mxnet"], paper["columnsgd"]),
            )
        )
    return ascii_table(
        ["workload", "MXNet s/iter", "ColumnSGD s/iter", "speedup",
         "paper (MXNet/ColumnSGD)"],
        rows,
    )


def simulated_oom_demo():
    """Live demonstration of the OOM asymmetry on a memory-tight cluster."""
    from repro.baselines import RowSGDConfig, SparsePSTrainer
    from repro.sim import ClusterSpec

    data = load_profile("kdd12").generate(seed=6, rows=1000, features=60_000)
    tight = ClusterSpec(
        name="tight", n_workers=4, cores_per_worker=2,
        memory_bytes_per_node=60_000 * 51 * 8,  # < 2x FM(F=50) model bytes
        bandwidth_bytes_per_s=CLUSTER1.bandwidth_bytes_per_s,
    )
    lines = []
    trainer = SparsePSTrainer(
        FactorizationMachine(n_factors=50), SGD(0.01),
        SimulatedCluster(tight), config=RowSGDConfig(batch_size=100, iterations=2),
    )
    try:
        trainer.load(data)
        lines.append("MXNet-style PS: loaded (unexpected)")
    except OutOfMemoryError as err:
        lines.append("MXNet-style PS: {}".format(err))
    driver = ColumnSGDDriver(
        FactorizationMachine(n_factors=50), SGD(0.01), SimulatedCluster(tight),
        config=ColumnSGDConfig(batch_size=100, iterations=2, eval_every=0),
    )
    driver.load(data)
    driver.fit()
    lines.append("ColumnSGD: trained 2 iterations under the same budget")
    return "\n".join(lines)


def test_table5(benchmark, emit):
    emit("table5_fm_analytic", analytic_fm_times())
    emit("table5_oom_demo", simulated_oom_demo())

    data = load_profile("kddb").generate(seed=6, rows=3000)
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        FactorizationMachine(n_factors=10), SGD(0.1), cluster,
        config=ColumnSGDConfig(batch_size=500, iterations=1, eval_every=0),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
