"""Fig 9: per-iteration time with stragglers, with and without backup.

Expected shape (paper): SL1 ~2x and SL5 ~6x slower than pure;
ColumnSGD-backup stays at the pure baseline.

Wall-clock benchmark: one iteration under 1-backup computation.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel
from repro.utils import ascii_table, format_duration


def run(data, backup, straggler_level, seed=7):
    cluster = SimulatedCluster(CLUSTER1)
    straggler = (
        StragglerModel(CLUSTER1.n_workers, level=straggler_level, seed=seed)
        if straggler_level
        else None
    )
    config = ColumnSGDConfig(
        batch_size=500, iterations=10, eval_every=0, seed=seed, backup=backup
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config, straggler=straggler
    )
    driver.load(data)
    return driver.fit().avg_iteration_seconds()


def fig9_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        data = load_profile(name).generate(seed=7, rows=3000)
        pure = run(data, backup=0, straggler_level=0)
        backed = run(data, backup=1, straggler_level=5.0)
        sl1 = run(data, backup=0, straggler_level=1.0)
        sl5 = run(data, backup=0, straggler_level=5.0)
        for label, seconds in (
            ("ColumnSGD-pure", pure),
            ("ColumnSGD-backup", backed),
            ("ColumnSGD-SL1", sl1),
            ("ColumnSGD-SL5", sl5),
        ):
            rows.append(
                (name, label, format_duration(seconds), "{:.2f}x".format(seconds / pure))
            )
    return ascii_table(["dataset", "setting", "per-iteration", "vs pure"], rows)


def iteration_gantts():
    """Worker-timeline view of one straggled iteration, w/ and w/o backup."""
    from repro.core import ColumnSGDConfig, ColumnSGDDriver
    from repro.experiments import render_iteration_gantt

    data = load_profile("avazu").generate(seed=7, rows=2000)
    blocks = []
    for backup in (0, 1):
        cluster = SimulatedCluster(CLUSTER1)
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(1.0), cluster,
            config=ColumnSGDConfig(batch_size=500, iterations=1, eval_every=0,
                                   seed=7, backup=backup),
            straggler=StragglerModel(CLUSTER1.n_workers, level=5.0, seed=7),
        )
        driver.load(data)
        driver.run_round(0)
        blocks.append("backup S={}:\n{}".format(
            backup,
            render_iteration_gantt(driver.last_worker_seconds,
                                   driver.last_phase_seconds,
                                   driver.last_killed, width=64),
        ))
    return "\n\n".join(blocks)


def sync_policy_table():
    """Straggler mitigation without replicas: TimeoutSync/RetrySync
    suspect workers past ``alpha * median(finish)`` and degrade to the
    cached group statistics instead of waiting (or killing anyone)."""
    data = load_profile("avazu").generate(seed=7, rows=3000)
    rows = []
    for policy, alpha, retries in (
        ("backup", 3.0, 0), ("timeout", 1.5, 0), ("retry", 1.5, 2)
    ):
        cluster = SimulatedCluster(CLUSTER1)
        config = ColumnSGDConfig(
            batch_size=500, iterations=10, eval_every=5, seed=7,
            backup=1 if policy == "backup" else 0,
            sync_policy=policy, sync_alpha=alpha, sync_max_retries=retries,
        )
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(1.0), cluster, config=config,
            straggler=StragglerModel(CLUSTER1.n_workers, level=5.0, seed=7),
        )
        driver.load(data)
        result = driver.fit()
        trace = cluster.engine_trace
        stale = sum(1 for r in trace.retries if r.resolved == "stale")
        rows.append((
            policy,
            format_duration(result.avg_iteration_seconds()),
            "{:.4f}".format(result.final_loss()),
            str(len(trace.retries)),
            str(stale),
        ))
    return ascii_table(
        ["sync policy (SL5)", "per-iteration", "final loss",
         "retry events", "stale rounds"],
        rows,
    )


def test_fig9(benchmark, emit):
    emit("fig9_stragglers", fig9_table())
    emit("fig9_gantt", iteration_gantts())
    emit("fig9_sync_policies", sync_policy_table())

    data = load_profile("avazu").generate(seed=7, rows=3000)
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=500, iterations=1, eval_every=0, backup=1),
        straggler=StragglerModel(CLUSTER1.n_workers, level=5.0, seed=7),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
