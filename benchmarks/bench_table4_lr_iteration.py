"""Table IV: per-iteration time of training LR, 4 systems x 3 datasets.

Two views:
* *analytic @ paper scale* — the cost model evaluated at Table II's true
  dimensions (how the 930x/63x/6x headline numbers arise);
* *simulated @ laptop scale* — live runs on the scaled stand-ins
  (smaller models, hence smaller but same-ordered gaps).

Also prints Table III (the learning rates used).  Wall-clock benchmark:
one MLlib iteration (the heavyweight baseline path).
"""

from repro.baselines import MLlibTrainer, RowSGDConfig
from repro.core import ColumnSGDConfig, ColumnSGDDriver, predict_iteration_time
from repro.datasets import load_profile
from repro.experiments import ExperimentSpec, run_system
from repro.models import LogisticRegression
from repro.net import NetworkModel
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table

SYSTEMS = ("mllib", "petuum", "mxnet", "columnsgd")
PAPER_TABLE4 = {  # seconds, from the paper
    "avazu": {"mllib": 1.43, "petuum": 0.24, "mxnet": 0.02, "columnsgd": 0.06},
    "kddb": {"mllib": 16.33, "petuum": 1.96, "mxnet": 0.3, "columnsgd": 0.06},
    "kdd12": {"mllib": 55.81, "petuum": 3.81, "mxnet": 0.37, "columnsgd": 0.06},
}


def table3():
    rows = []
    for name in ("avazu", "kddb", "kdd12", "wx"):
        p = load_profile(name)
        rows.append((name, p.learning_rate("lr"), p.learning_rate("fm"),
                     p.learning_rate("svm")))
    return ascii_table(["dataset", "LR", "FM", "SVM"], rows)


def analytic_table():
    net = NetworkModel(bandwidth=CLUSTER1.bandwidth_bytes_per_s,
                       latency=CLUSTER1.latency_s)
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        p = load_profile(name)
        times = {
            s: predict_iteration_time(
                s, m=p.paper_features, batch_size=1000, n_workers=8,
                avg_nnz_per_row=p.avg_nnz_per_row, network=net,
            )
            for s in SYSTEMS
        }
        col = times["columnsgd"]
        for s in SYSTEMS:
            rows.append(
                (
                    name,
                    s,
                    "{:.3f}".format(times[s]),
                    "{:.1f}x".format(times[s] / col) if s != "columnsgd" else "-",
                    "{:.2f}".format(PAPER_TABLE4[name][s]),
                )
            )
    return ascii_table(
        ["dataset", "system", "analytic s/iter", "speedup vs ColumnSGD", "paper s/iter"],
        rows,
    )


def simulated_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        data = load_profile(name).generate(seed=5, rows=3000)
        spec = ExperimentSpec(
            dataset=name, model="lr", batch_size=500, iterations=6,
            eval_every=0, cluster=CLUSTER1, seed=5, explicit_data=data,
        )
        times = {s: run_system(spec, s, data).avg_iteration_seconds() for s in SYSTEMS}
        col = times["columnsgd"]
        for s in SYSTEMS:
            rows.append(
                (name, s, "{:.4f}".format(times[s]),
                 "{:.1f}x".format(times[s] / col) if s != "columnsgd" else "-")
            )
    return ascii_table(
        ["dataset", "system", "simulated s/iter (scaled)", "speedup"], rows
    )


def _columnsgd_avg_iteration(data, overlap: bool) -> float:
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=2000, iterations=6, eval_every=0,
                               overlap=overlap),
    )
    driver.load(data)
    return driver.fit().avg_iteration_seconds()


def overlap_table():
    """Round-time drop from the overlapped spec (prefetch under compute,
    streaming reduce under the gather) — same arithmetic, shorter
    critical path.  The saving per round is min(gather, reduce); at
    laptop scale the round is dominated by the 25 ms task overhead
    (as in the paper, where Spark task launch dominates ColumnSGD's
    0.06 s), so the drop is microseconds but strictly positive."""
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        data = load_profile(name).generate(seed=5, rows=3000)
        sequential = _columnsgd_avg_iteration(data, overlap=False)
        overlapped = _columnsgd_avg_iteration(data, overlap=True)
        assert overlapped < sequential
        rows.append(
            (name,
             "{:.3f}".format(sequential * 1e3),
             "{:.3f}".format(overlapped * 1e3),
             "{:.1f}".format((sequential - overlapped) * 1e6),
             "{:.3f}%".format(100.0 * (1.0 - overlapped / sequential)))
        )
    return ascii_table(
        ["dataset", "sequential ms/iter", "overlapped ms/iter",
         "saved us/iter", "drop"],
        rows,
    )


def test_table4(benchmark, emit):
    emit("table3_learning_rates", table3())
    emit("table4_analytic_paper_scale", analytic_table())
    emit("table4_simulated_scaled", simulated_table())
    emit("columnsgd_overlap_round_time", overlap_table())

    data = load_profile("kddb").generate(seed=5, rows=3000)
    cluster = SimulatedCluster(CLUSTER1)
    trainer = MLlibTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=1, eval_every=0),
    )
    trainer.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: trainer.run_round(next(counter)))
