"""Ablation: where does a ColumnSGD iteration spend its time?

Breaks the per-iteration duration into the five protocol phases
(computeStatistics / gather / reduce / broadcast / updateModel) across
batch sizes.  At the paper's default B=1000, the two Spark task
launches dominate — the scheduling-latency effect the paper blames for
losing to MXNet on avazu; by B=100k the statistics transfers take over,
matching Fig 4(b)'s knee.

Wall-clock benchmark: one iteration at B=10000.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration

BATCHES = (100, 1000, 10_000, 50_000)


def breakdown_rows(data):
    rows = []
    for batch in BATCHES:
        cluster = SimulatedCluster(CLUSTER1)
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(1.0), cluster,
            config=ColumnSGDConfig(batch_size=batch, iterations=1, eval_every=0,
                                   seed=17),
        )
        driver.load(data)
        driver.run_round(0)
        phases = driver.last_phase_seconds
        total = sum(phases.values())
        rows.append(
            (batch, format_duration(total))
            + tuple(
                "{:.1f}%".format(100 * phases[name] / total)
                for name in ("compute_statistics", "gather", "reduce",
                             "broadcast", "update_model")
            )
        )
    return rows


def test_ablation_time_breakdown(benchmark, emit):
    data = load_profile("kddb").generate(seed=17, rows=60_000, features=100_000)
    table = ascii_table(
        ["batch", "total/iter", "computeStats", "gather", "reduce",
         "broadcast", "updateModel"],
        breakdown_rows(data),
    )
    emit("ablation_time_breakdown", table)

    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=10_000, iterations=1, eval_every=0,
                               seed=17),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
