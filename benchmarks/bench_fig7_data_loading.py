"""Fig 7: time cost of data loading across four strategies x 3 datasets.

Expected shape (paper): Naive-ColumnSGD slowest (2.1-4.7x slower than
MLlib), MLlib-Repartition next, then MLlib, with block-based ColumnSGD
fastest (1.5-1.7x faster than MLlib).

Wall-clock benchmark: one block-based dispatch of the avazu stand-in.
"""

from repro.datasets import load_profile
from repro.partition import (
    dispatch_block_based,
    dispatch_naive,
    load_row_partitioned,
    make_assignment,
)
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration


def loading_times(data):
    asg = make_assignment("round_robin", data.n_features, CLUSTER1.n_workers)
    times = {}
    _, _, report = dispatch_naive(data, asg, SimulatedCluster(CLUSTER1), block_size=512)
    times["Naive-ColumnSGD"] = report.seconds
    _, _, report = dispatch_block_based(data, asg, SimulatedCluster(CLUSTER1), block_size=512)
    times["ColumnSGD"] = report.seconds
    _, report = load_row_partitioned(data, SimulatedCluster(CLUSTER1), repartition=False)
    times["MLlib"] = report.seconds
    _, report = load_row_partitioned(data, SimulatedCluster(CLUSTER1), repartition=True)
    times["MLlib-Repartition"] = report.seconds
    return times


def fig7_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        data = load_profile(name).generate(seed=3, rows=20_000)
        times = loading_times(data)
        mllib = times["MLlib"]
        for strategy in ("Naive-ColumnSGD", "ColumnSGD", "MLlib", "MLlib-Repartition"):
            rows.append(
                (
                    name,
                    strategy,
                    format_duration(times[strategy]),
                    "{:.2f}x".format(times[strategy] / mllib),
                )
            )
    return ascii_table(["dataset", "strategy", "sim time", "vs MLlib"], rows)


def test_fig7(benchmark, emit):
    emit("fig7_data_loading", fig7_table())

    data = load_profile("avazu").generate(seed=3, rows=20_000)
    asg = make_assignment("round_robin", data.n_features, CLUSTER1.n_workers)

    def dispatch():
        dispatch_block_based(data, asg, SimulatedCluster(CLUSTER1), block_size=512)

    benchmark(dispatch)
