"""Fig 13: fault tolerance — task failure vs worker failure (LR, kdd12).

Expected shape (paper): a task failure is invisible (data and model stay
cached); a worker failure pauses for a data reload (23 s at paper scale)
and the zeroed model partition bumps the loss before SGD re-converges.

Beyond the paper, this bench also exercises the chaos-grade pipeline:

* master restart from checkpoint (the paper aborts on MASTER failure;
  with ``RecoveryPolicy(master_restart=True)`` the job survives and the
  recovery cost is broken down into detect / reload / replay);
* a seeded chaos matrix — ChaosSchedule worker crashes on top of a
  1 %-drop :class:`~repro.net.FaultPlan`, protocol-checked every round.

Wall-clock benchmark: one worker-failure recovery.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver, RecoveryPolicy
from repro.datasets import load_profile
from repro.experiments import fault_timeline, loss_series, render_engine_trace
from repro.models import LogisticRegression
from repro.net import FaultPlan, LinkFaults
from repro.optim import SGD
from repro.sim import (
    CLUSTER1,
    ChaosSchedule,
    FailureInjector,
    SimulatedCluster,
)
from repro.utils import ascii_table, format_duration


def run(data, failures=None, recovery=None, fault_plan=None, check_protocol=False):
    cluster = SimulatedCluster(CLUSTER1, fault_plan=fault_plan)
    config = ColumnSGDConfig(
        batch_size=500, iterations=80, eval_every=4, seed=10,
        check_protocol=check_protocol,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config,
        failures=failures, recovery=recovery,
    )
    driver.load(data)
    return driver.fit(), driver


def fig13_report(data):
    clean, _ = run(data)
    task, _ = run(data, FailureInjector.task_failure(40, worker_id=3))
    worker, _ = run(data, FailureInjector.worker_failure(40, worker_id=3))
    table = ascii_table(
        ["scenario", "total sim time", "final loss", "loss right after failure"],
        [
            ("no failure", format_duration(clean.total_sim_time),
             "{:.4f}".format(clean.final_loss()), "-"),
            ("task failure @40", format_duration(task.total_sim_time),
             "{:.4f}".format(task.final_loss()), _loss_after(task, 40)),
            ("worker failure @40", format_duration(worker.total_sim_time),
             "{:.4f}".format(worker.final_loss()), _loss_after(worker, 40)),
        ],
    )
    curves = "\n".join(
        "{:>18}: {}".format(label, loss_series(result, max_points=10))
        for label, result in (
            ("no failure", clean),
            ("task failure", task),
            ("worker failure", worker),
        )
    )
    return table + "\n\nloss-vs-time:\n" + curves


def _loss_after(result, iteration):
    for it, _, loss in result.losses():
        if it >= iteration:
            return "{:.4f}".format(loss)
    return "-"


def ft_asymmetry_table(data):
    """Beyond the paper: the same worker failure hits RowSGD and
    ColumnSGD differently — RowSGD's centralised model survives worker
    crashes untouched (reload only), while ColumnSGD loses a model
    partition but its master never holds the model at all."""
    from repro.baselines import MLlibTrainer, RowSGDConfig

    cluster = SimulatedCluster(CLUSTER1)
    trainer = MLlibTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=80, eval_every=4, seed=10),
        failures=FailureInjector.worker_failure(40, worker_id=3),
    )
    trainer.load(data)
    mllib = trainer.fit()
    column, _ = run(data, FailureInjector.worker_failure(40, worker_id=3))
    return ascii_table(
        ["system", "worker failure @40 costs", "loss right after", "model state lost"],
        [
            ("MLlib", "shard reload only", _loss_after(mllib, 40),
             "none (model at master)"),
            ("ColumnSGD", "shard reload + partition re-init",
             _loss_after(column, 40), "1/K of the model (re-learned)"),
        ],
    )


def master_restart_report(data):
    """MASTER failure no longer aborts: restart from the latest
    checkpoint and replay the missed iterations deterministically."""
    recovery = RecoveryPolicy(
        checkpoint_every=10, heartbeat_interval_s=0.05, master_restart=True
    )
    result, driver = run(
        data,
        failures=FailureInjector.master_failure(44),
        recovery=recovery,
        check_protocol=True,
    )
    trace = driver.cluster.engine_trace
    clean, _ = run(data)
    table = ascii_table(
        ["scenario", "total sim time", "final loss"],
        [
            ("no failure", format_duration(clean.total_sim_time),
             "{:.4f}".format(clean.final_loss())),
            ("master failure @44, restart", format_duration(result.total_sim_time),
             "{:.4f}".format(result.final_loss())),
        ],
    )
    return "\n\n".join([
        table,
        "fault episodes (detect / reload / replay):\n" + fault_timeline(trace),
        "round 44 engine trace:\n" + render_engine_trace(trace, round_index=44),
    ])


# one worker crash roughly every CHAOS_MTBF_S of sim time
CHAOS_MTBF_S = 30.0


def chaos_matrix(data, seeds=(1, 2, 3)):
    """Seeded chaos runs: Poisson worker/task crashes + 1 % link drop,
    protocol-checked every round (raises on any Table-I violation)."""
    clean, _ = run(data)
    plan = FaultPlan(default=LinkFaults(drop=0.01), seed=0)
    rows = []
    for seed in seeds:
        chaos = ChaosSchedule(mtbf_s=CHAOS_MTBF_S, seed=seed)
        result, driver = run(
            data, failures=chaos, fault_plan=plan, check_protocol=True
        )
        net = driver.cluster.network
        trace = driver.cluster.engine_trace
        rows.append((
            str(seed),
            "{:.4f}".format(result.final_loss()),
            "{:+.4f}".format(result.final_loss() - clean.final_loss()),
            str(len(trace.recoveries)),
            str(net.dropped),
            str(net.retry_messages()),
            format_duration(result.total_sim_time),
        ))
    return ascii_table(
        ["chaos seed", "final loss", "vs clean", "recoveries",
         "drops", "retransmits", "total sim time"],
        rows,
    )


def test_fig13(benchmark, emit):
    data = load_profile("kdd12").generate(seed=10, rows=4000)
    emit("fig13_fault_tolerance", fig13_report(data))
    emit("fig13_ft_asymmetry", ft_asymmetry_table(data))
    emit("fig13_master_restart", master_restart_report(data))
    emit("fig13_chaos_matrix", chaos_matrix(data))

    cluster = SimulatedCluster(CLUSTER1)
    config = ColumnSGDConfig(batch_size=500, iterations=2, eval_every=0, seed=10)
    driver = ColumnSGDDriver(LogisticRegression(), SGD(1.0), cluster, config=config)
    driver.load(data)
    benchmark(lambda: driver._recover_worker(2))
