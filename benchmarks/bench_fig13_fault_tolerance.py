"""Fig 13: fault tolerance — task failure vs worker failure (LR, kdd12).

Expected shape (paper): a task failure is invisible (data and model stay
cached); a worker failure pauses for a data reload (23 s at paper scale)
and the zeroed model partition bumps the loss before SGD re-converges.

Wall-clock benchmark: one worker-failure recovery.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.experiments import loss_series
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, FailureInjector, SimulatedCluster
from repro.utils import ascii_table, format_duration


def run(data, failures=None):
    cluster = SimulatedCluster(CLUSTER1)
    config = ColumnSGDConfig(batch_size=500, iterations=80, eval_every=4, seed=10)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config, failures=failures
    )
    driver.load(data)
    return driver.fit()


def fig13_report(data):
    clean = run(data)
    task = run(data, FailureInjector.task_failure(40, worker_id=3))
    worker = run(data, FailureInjector.worker_failure(40, worker_id=3))
    table = ascii_table(
        ["scenario", "total sim time", "final loss", "loss right after failure"],
        [
            ("no failure", format_duration(clean.total_sim_time),
             "{:.4f}".format(clean.final_loss()), "-"),
            ("task failure @40", format_duration(task.total_sim_time),
             "{:.4f}".format(task.final_loss()), _loss_after(task, 40)),
            ("worker failure @40", format_duration(worker.total_sim_time),
             "{:.4f}".format(worker.final_loss()), _loss_after(worker, 40)),
        ],
    )
    curves = "\n".join(
        "{:>18}: {}".format(label, loss_series(result, max_points=10))
        for label, result in (
            ("no failure", clean),
            ("task failure", task),
            ("worker failure", worker),
        )
    )
    return table + "\n\nloss-vs-time:\n" + curves


def _loss_after(result, iteration):
    for it, _, loss in result.losses():
        if it >= iteration:
            return "{:.4f}".format(loss)
    return "-"


def ft_asymmetry_table(data):
    """Beyond the paper: the same worker failure hits RowSGD and
    ColumnSGD differently — RowSGD's centralised model survives worker
    crashes untouched (reload only), while ColumnSGD loses a model
    partition but its master never holds the model at all."""
    from repro.baselines import MLlibTrainer, RowSGDConfig

    cluster = SimulatedCluster(CLUSTER1)
    trainer = MLlibTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=80, eval_every=4, seed=10),
        failures=FailureInjector.worker_failure(40, worker_id=3),
    )
    trainer.load(data)
    mllib = trainer.fit()
    column = run(data, FailureInjector.worker_failure(40, worker_id=3))
    return ascii_table(
        ["system", "worker failure @40 costs", "loss right after", "model state lost"],
        [
            ("MLlib", "shard reload only", _loss_after(mllib, 40),
             "none (model at master)"),
            ("ColumnSGD", "shard reload + partition re-init",
             _loss_after(column, 40), "1/K of the model (re-learned)"),
        ],
    )


def test_fig13(benchmark, emit):
    data = load_profile("kdd12").generate(seed=10, rows=4000)
    emit("fig13_fault_tolerance", fig13_report(data))
    emit("fig13_ft_asymmetry", ft_asymmetry_table(data))

    cluster = SimulatedCluster(CLUSTER1)
    config = ColumnSGDConfig(batch_size=500, iterations=2, eval_every=0, seed=10)
    driver = ColumnSGDDriver(LogisticRegression(), SGD(1.0), cluster, config=config)
    driver.load(data)
    benchmark(lambda: driver._recover_worker(2))
