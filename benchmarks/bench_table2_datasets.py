"""Table II: dataset statistics — paper scale and our scaled stand-ins.

The wall-clock benchmark times synthetic generation of the kddb profile
stand-in (the data-creation cost every other experiment pays).
"""

from repro.datasets import PROFILES, load_profile
from repro.utils import ascii_table, format_bytes


def paper_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12", "criteo", "wx"):
        p = PROFILES[name]
        rows.append(
            (
                p.name,
                "{:,}".format(p.paper_instances),
                "{:,}".format(p.paper_features),
                format_bytes(p.paper_size_bytes),
                "{:.6f}".format(p.paper_sparsity),
            )
        )
    return ascii_table(
        ["dataset", "#instances (paper)", "#features (paper)", "size (paper)", "sparsity"],
        rows,
    )


def scaled_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12", "criteo", "wx"):
        data = load_profile(name).generate(seed=0, rows=2000)
        stats = data.stats()
        rows.append(stats.as_row())
    return ascii_table(
        ["dataset", "#instances", "#features", "nnz", "sparsity", "size"], rows
    )


def test_table2(benchmark, emit):
    emit("table2_paper", paper_table())
    emit("table2_scaled", scaled_table())

    profile = load_profile("kddb")
    benchmark(lambda: profile.generate(seed=1, rows=2000))
