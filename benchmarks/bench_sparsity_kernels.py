"""Sparse-kernel micro-benchmarks: axpy, dot, and the gradient kernel
at three nnz scales.

The R015-R017 static analysis and the ``check_cost`` audit both rest on
the axiom that these kernels are O(nnz); this benchmark records their
wall time (and measured element-ops) as nnz grows 10x per step, so a
kernel regressing to O(d) shows up as super-linear scaling in
``BENCH_sparsity.json`` long before it trips the runtime audit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg import CSRMatrix, OP_COUNTERS, SparseVector
from repro.linalg.ops import accumulate_rows
from repro.utils import ascii_table
from repro.utils.rng import rng_from_seed

#: Model dimension is fixed; only the stored entries grow.
DIM = 1_000_000

NNZ_SCALES = (1_000, 10_000, 100_000)


def _vector(nnz: int) -> SparseVector:
    rng = rng_from_seed(7)
    indices = np.sort(rng.choice(DIM, size=nnz, replace=False))
    values = rng.standard_normal(nnz)
    return SparseVector(indices, values, dim=DIM)


def _matrix(nnz: int, rows: int = 64) -> CSRMatrix:
    rng = rng_from_seed(13)
    per_row = max(nnz // rows, 1)
    row_vectors = []
    for _ in range(rows):
        indices = np.sort(rng.choice(DIM, size=per_row, replace=False))
        row_vectors.append(
            SparseVector(indices, rng.standard_normal(per_row), dim=DIM)
        )
    return CSRMatrix.from_rows(row_vectors, n_cols=DIM)


def _axpy(out: np.ndarray, alpha: float, v: SparseVector) -> None:
    out[v.indices] += alpha * v.values


@pytest.mark.parametrize("nnz", NNZ_SCALES)
def test_bench_axpy(benchmark, nnz):
    v = _vector(nnz)
    out = np.zeros(DIM)
    benchmark(_axpy, out, 0.5, v)


@pytest.mark.parametrize("nnz", NNZ_SCALES)
def test_bench_dot(benchmark, nnz):
    v = _vector(nnz)
    dense = np.ones(DIM)
    benchmark(v.dot, dense)


@pytest.mark.parametrize("nnz", NNZ_SCALES)
def test_bench_gradient(benchmark, nnz):
    matrix = _matrix(nnz)
    coefficients = np.ones(matrix.n_rows)
    benchmark(accumulate_rows, matrix, coefficients)


def test_measured_work_scales_with_nnz(emit):
    """The op counters see O(nnz) element-ops, not O(d): flops for dot
    must grow ~10x per scale step while dim stays fixed at 1e6."""
    rows = []
    flops_per_scale = []
    for nnz in NNZ_SCALES:
        v = _vector(nnz)
        dense = np.ones(DIM)
        OP_COUNTERS.reset()
        OP_COUNTERS.enable()
        v.dot(dense)
        snap = OP_COUNTERS.snapshot()
        OP_COUNTERS.disable()
        flops_per_scale.append(snap["flops"])
        rows.append((nnz, snap["flops"], snap["densify_events"]))
    emit(
        "sparsity_kernel_work",
        ascii_table(["nnz", "dot flops", "densify events"], rows),
    )
    for prev, cur in zip(flops_per_scale, flops_per_scale[1:]):
        ratio = cur / max(prev, 1)
        assert 8.0 <= ratio <= 12.0, flops_per_scale
