"""Table I: memory and communication overheads, RowSGD vs ColumnSGD.

Prints the analytic element counts at paper scale and validates the
communication entries against the simulator's measured bytes at small
scale (headers subtracted).  The wall-clock benchmark times one full
ColumnSGD iteration (statistics + reduce + update) on real data.
"""

from repro.core import (
    ColumnSGDConfig,
    ColumnSGDDriver,
    columnsgd_overheads,
    rowsgd_overheads,
)
from repro.datasets import load_profile, make_classification
from repro.models import LogisticRegression
from repro.net import MessageKind
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.storage.serialization import OBJECT_OVERHEAD_BYTES
from repro.utils import ascii_table


def paper_scale_table():
    rows = []
    for name in ("avazu", "kddb", "kdd12"):
        profile = load_profile(name)
        m = profile.paper_features
        data_elements = profile.paper_instances * (1 + profile.avg_nnz_per_row)
        for fn in (rowsgd_overheads, columnsgd_overheads):
            est = fn(m, 1000, 8, profile.paper_sparsity, data_elements)
            rows.append((name,) + est.as_row())
    return ascii_table(
        ["dataset", "system", "master mem", "worker mem", "master comm", "worker comm"],
        rows,
    )


def measured_vs_formula():
    """Small-scale validation: measured stats bytes == 2*K*B values."""
    K, B, m = 4, 50, 400
    data = make_classification(500, m, nnz_per_row=8, seed=0)
    cluster = SimulatedCluster(CLUSTER1.with_workers(K))
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster,
        config=ColumnSGDConfig(batch_size=B, iterations=1, eval_every=0, block_size=64),
    )
    driver.load(data)
    cluster.network.reset_counters()
    driver.fit()
    measured = (
        cluster.network.bytes_of_kind(MessageKind.STATISTICS_PUSH)
        + cluster.network.bytes_of_kind(MessageKind.STATISTICS_BCAST)
        - 2 * K * OBJECT_OVERHEAD_BYTES
    )
    formula = columnsgd_overheads(m, B, K, data.sparsity(), data.nnz).master_communication
    return ascii_table(
        ["quantity", "measured", "Table I formula"],
        [("master comm (elements)", measured // 8, int(formula))],
    )


def test_table1(benchmark, emit):
    emit("table1_paper_scale", paper_scale_table())
    emit("table1_validation", measured_vs_formula())

    # wall-clock: one full ColumnSGD iteration at laptop scale
    data = make_classification(5000, 10_000, nnz_per_row=15, seed=1)
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0),
    )
    driver.load(data)
    counter = iter(range(10**9))

    def one_iteration():
        driver.run_round(next(counter))

    benchmark(one_iteration)
