"""Fig 4: the batch-size study (SVM on the kddb stand-in).

(a) convergence (loss vs iteration) for batch sizes 10 ... 10k — small
batches thrash, large ones overlap;
(b) per-iteration simulated time for batch sizes 100 ... 10m — flat until
bandwidth takes over, then linear (paper: knee near 100k).

Wall-clock benchmark: one iteration at the paper's default B = 1000.
"""

import numpy as np

from repro.core import ColumnSGDConfig, ColumnSGDDriver, train_columnsgd
from repro.datasets import load_profile
from repro.experiments import render_curve
from repro.models import LinearSVM
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration

BATCHES_4A = (10, 100, 1000, 10_000)
BATCHES_4B = (100, 1000, 10_000, 100_000, 1_000_000, 10_000_000)


def fig4a(data):
    lines = []
    curves = {}
    for batch in BATCHES_4A:
        cluster = SimulatedCluster(CLUSTER1)
        result = train_columnsgd(
            data, LinearSVM(), SGD(0.5), cluster,
            batch_size=batch, iterations=100, eval_every=5, seed=1,
        )
        losses = [loss for _, _, loss in result.losses()]
        curves[batch] = losses
        thrash = float(np.mean(np.maximum(np.diff(losses), 0)))
        lines.append((batch, "{:.4f}".format(losses[-1]), "{:.4f}".format(thrash)))
    table = ascii_table(["batch size", "final loss", "thrash (mean loss increase)"], lines)
    chart = render_curve(curves[10], width=50, height=8, label="B=10 loss curve (thrashy)")
    chart2 = render_curve(curves[1000], width=50, height=8, label="B=1000 loss curve (smooth)")
    return table + "\n\n" + chart + "\n\n" + chart2


def fig4b(data):
    """Per-iteration time vs batch size: simulated where the data allows,
    analytic (same cost model) for batches beyond the dataset size."""
    from repro.core import predict_iteration_time
    from repro.net import NetworkModel

    rows = []
    profile = load_profile("kddb")
    net = NetworkModel(bandwidth=CLUSTER1.bandwidth_bytes_per_s, latency=CLUSTER1.latency_s)
    for batch in BATCHES_4B:
        if batch <= data.n_rows:
            cluster = SimulatedCluster(CLUSTER1)
            result = train_columnsgd(
                data, LinearSVM(), SGD(0.5), cluster,
                batch_size=batch, iterations=5, eval_every=0, seed=1,
            )
            seconds = result.avg_iteration_seconds()
            source = "simulated"
        else:
            seconds = predict_iteration_time(
                "columnsgd", m=profile.paper_features, batch_size=batch,
                n_workers=8, avg_nnz_per_row=profile.avg_nnz_per_row, network=net,
            )
            source = "analytic"
        rows.append((batch, format_duration(seconds), source))
    return ascii_table(["batch size", "per-iteration time", "source"], rows)


def test_fig4(benchmark, emit):
    data = load_profile("kddb").generate(seed=2, rows=8000, features=50_000)
    emit("fig4a_convergence_vs_batch", fig4a(data))
    emit("fig4b_time_vs_batch", fig4b(data))

    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LinearSVM(), SGD(0.5), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
