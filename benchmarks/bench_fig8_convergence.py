"""Fig 8: loss vs (simulated) time — 5 systems x {LR, SVM} x 3 datasets.

Expected shape (paper): on large models ColumnSGD reaches any target
loss far sooner than MLlib/MLlib*/Petuum; MXNet is competitive (and wins
on small-model avazu).

Wall-clock benchmark: one full ColumnSGD training run (LR, avazu
stand-in, 20 iterations).
"""

from repro.datasets import load_profile
from repro.experiments import ExperimentSpec, convergence_table, loss_series, run_comparison
from repro.sim import CLUSTER1

SYSTEMS = ["columnsgd", "mllib", "mllib*", "petuum", "mxnet"]
DATASETS = ["avazu", "kddb", "kdd12"]
MODELS = ["lr", "svm"]


def run_panel(dataset, model, rows):
    spec = ExperimentSpec(
        dataset=dataset,
        model=model,
        systems=SYSTEMS,
        batch_size=500,
        iterations=40,
        eval_every=4,
        cluster=CLUSTER1,
        seed=4,
        learning_rate=1.0 if model == "lr" else 0.5,
    )
    spec.explicit_data = load_profile(dataset).generate(seed=4, rows=rows)
    return run_comparison(spec)


def panel_report(results, threshold, dataset):
    report = convergence_table(results, threshold)
    series = "\n".join(
        "{:>10}: {}".format(r.system, loss_series(r, max_points=6))
        for r in results.values()
    )
    projected = paper_scale_projection(results, threshold, dataset)
    return (
        report
        + "\n\nloss-vs-time series (scaled models):\n"
        + series
        + "\n\npaper-scale projection (analytic per-iteration x iterations to target):\n"
        + projected
    )


def paper_scale_projection(results, threshold, dataset):
    """Reproject each curve onto the paper's true model dimensions.

    The *statistical* trajectory (loss per iteration) is scale-faithful;
    the *time axis* is not, because scaled models shrink RowSGD traffic.
    Replaying iterations at the analytic per-iteration cost of the
    paper-scale model recovers the paper's Fig 8 ordering (MLlib slowest
    by orders of magnitude, ColumnSGD ahead of PS systems).
    """
    from repro.core import predict_iteration_time
    from repro.net import NetworkModel
    from repro.utils import ascii_table, format_duration

    profile = load_profile(dataset)
    net = NetworkModel(bandwidth=CLUSTER1.bandwidth_bytes_per_s,
                       latency=CLUSTER1.latency_s)
    rows = []
    for key, result in results.items():
        per_iter = predict_iteration_time(
            key if key != "mllib*" else "mllib*",
            m=profile.paper_features, batch_size=result.batch_size,
            n_workers=8, avg_nnz_per_row=profile.avg_nnz_per_row, network=net,
        )
        iters_to_target = next(
            (it for it, _, loss in result.losses() if loss <= threshold), None
        )
        projected = (
            format_duration(per_iter * iters_to_target)
            if iters_to_target and iters_to_target > 0
            else "never"
        )
        rows.append((result.system, format_duration(per_iter), projected))
    return ascii_table(
        ["system", "paper-scale s/iter", "projected time to target"], rows
    )


def test_fig8(benchmark, emit):
    for dataset in DATASETS:
        for model in MODELS:
            results = run_panel(dataset, model, rows=4000)
            losses = [r.final_loss() for r in results.values() if r.final_loss()]
            threshold = min(l for l in losses) * 1.15
            emit(
                "fig8_{}_{}".format(dataset, model),
                panel_report(results, threshold, dataset),
            )

    spec = ExperimentSpec(
        dataset="avazu", model="lr", systems=["columnsgd"],
        batch_size=500, iterations=20, eval_every=0,
        cluster=CLUSTER1, seed=4, learning_rate=1.0,
    )
    data = spec.materialize_data()

    from repro.experiments import run_system

    benchmark(lambda: run_system(spec, "columnsgd", data))
