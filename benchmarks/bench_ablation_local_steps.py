"""Ablation: MLlib*'s local-steps knob (hardware vs statistical efficiency).

Model averaging amortises one O(m) AllReduce over H local mini-batch
steps.  The sweep shows the hardware-efficiency argument directly: the
local steps are nearly free next to the synchronisation (time/round
moves 54.6 -> 54.8 ms while H grows 16x), so each round buys H times
the data processed — which is why MLlib* reaches lower losses per
second than exact mini-batch SGD in Fig 8.  The statistical price
(local-model drift) appears at aggressive learning rates or very large
H; at the paper's tuned rates averaging is variance-reducing, matching
the paper's observation that MLlib* sometimes converges lower.

Wall-clock benchmark: one MLlib* round at H=8.
"""

from repro.baselines import MLlibStarTrainer, RowSGDConfig
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration

LOCAL_STEPS = (1, 2, 4, 8, 16)


def run(data, local_steps, rounds=30):
    cluster = SimulatedCluster(CLUSTER1)
    trainer = MLlibStarTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=rounds, eval_every=rounds,
                            seed=18),
        local_steps=local_steps,
    )
    trainer.load(data)
    return trainer.fit()


def ablation_table(data):
    rows = []
    for steps in LOCAL_STEPS:
        result = run(data, steps)
        rows.append(
            (
                steps,
                format_duration(result.avg_iteration_seconds()),
                "{:.4f}".format(result.final_loss()),
                format_duration(result.total_sim_time),
            )
        )
    return ascii_table(
        ["local steps per round", "time/round", "final loss (30 rounds)",
         "total sim time"],
        rows,
    )


def test_ablation_local_steps(benchmark, emit):
    data = load_profile("kddb").generate(seed=18, rows=6000)
    emit("ablation_local_steps", ablation_table(data))

    cluster = SimulatedCluster(CLUSTER1)
    trainer = MLlibStarTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=500, iterations=1, eval_every=0, seed=18),
        local_steps=8,
    )
    trainer.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: trainer.run_round(next(counter)))
