"""Ablation: fp32 statistics on the wire.

ColumnSGD's traffic is pure statistics, so halving the value width
halves per-iteration bytes.  At B=1000 the gather/broadcast is latency-
dominated, so the *time* gain is small on Cluster 1 — but the ablation
shows where compression starts paying (very large batches or wide
statistics like FM F=20), and that float32 rounding does not hurt
convergence on GLMs.

Wall-clock benchmark: one fp32 iteration.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import load_profile
from repro.models import FactorizationMachine, LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table


def run(data, model, lr, precision, batch):
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        model, SGD(lr), cluster,
        config=ColumnSGDConfig(batch_size=batch, iterations=12, eval_every=12,
                               seed=14, wire_precision=precision),
    )
    driver.load(data)
    result = driver.fit()
    return result


def ablation_table(data):
    rows = []
    cases = [
        ("LR B=1000", LogisticRegression, {}, 1.0, 1000),
        ("LR B=10000", LogisticRegression, {}, 1.0, 8000),
        ("FM F=20 B=1000", FactorizationMachine, {"n_factors": 20}, 0.05, 1000),
    ]
    for label, model_cls, kwargs, lr, batch in cases:
        for precision in ("fp64", "fp32"):
            result = run(data, model_cls(**kwargs), lr, precision, batch)
            rows.append(
                (
                    label,
                    precision,
                    "{:,}".format(result.records[-1].bytes_sent),
                    "{:.4f}s".format(result.avg_iteration_seconds()),
                    "{:.4f}".format(result.final_loss()),
                )
            )
    return ascii_table(
        ["workload", "wire", "bytes/iter", "per-iteration", "final loss"], rows
    )


def test_ablation_wire_precision(benchmark, emit):
    data = load_profile("avazu").generate(seed=14, rows=10_000)
    emit("ablation_wire_precision", ablation_table(data))

    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0,
                               wire_precision="fp32"),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
