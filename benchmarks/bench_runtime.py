"""Backend matrix: predicted (sim) vs measured (local) round time.

Runs the same fixed-seed job twice per system — once on the simulator
(per-round seconds come from the Table-I cost model) and once on the
local multiprocess backend with 2 worker processes (per-round seconds
are wall-clock around real pipes + codec traffic) — and checks the
cross-backend contract on the way: identical final model (1e-9) and
identical byte totals (real encoded lengths == the simulator's byte
model).

Writes ``BENCH_runtime.json`` into the current working directory with
both numbers per system; CI's backend-matrix job uploads it.  The two
numbers answer different questions and are *not* expected to agree: the
simulator predicts an 8-node Spark cluster (Table II hardware), the
local backend measures this machine's processes and pipes.
"""

import json
import pathlib

import numpy as np

from repro.baselines.registry import make_trainer
from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table

WORKERS = 4
LOCAL_PROCESSES = 2
ITERATIONS = 12
BATCH = 100
SEED = 5


def make_data():
    return make_classification(2000, 400, nnz_per_row=10, seed=SEED)


def run_columnsgd(data, backend):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    driver = ColumnSGDDriver(
        LogisticRegression(),
        SGD(0.5),
        cluster,
        config=ColumnSGDConfig(
            batch_size=BATCH,
            iterations=ITERATIONS,
            eval_every=ITERATIONS,
            seed=SEED,
            backend=backend,
            local_processes=LOCAL_PROCESSES,
            check_protocol=True,
        ),
    )
    driver.load(data)
    return driver.fit()


def run_mllib(data, backend):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    trainer = make_trainer(
        "mllib",
        LogisticRegression(),
        SGD(0.5),
        cluster,
        batch_size=BATCH,
        iterations=ITERATIONS,
        eval_every=ITERATIONS,
        seed=SEED,
        backend=backend,
        local_processes=LOCAL_PROCESSES,
        check_protocol=True,
    )
    trainer.load(data)
    return trainer.fit()


RUNNERS = {"columnsgd": run_columnsgd, "mllib": run_mllib}


def test_runtime_backend_matrix(emit):
    data = make_data()
    report = {
        "workers": WORKERS,
        "local_processes": LOCAL_PROCESSES,
        "iterations": ITERATIONS,
        "batch_size": BATCH,
        "seed": SEED,
        "systems": {},
    }
    rows = []
    for system, run in RUNNERS.items():
        predicted = run(data, "sim")
        measured = run(data, "local")
        # the cross-backend contract, checked where it is exercised
        diff = float(
            np.max(np.abs(measured.final_params - predicted.final_params))
        )
        assert diff <= 1e-9
        assert measured.total_bytes() == predicted.total_bytes()
        entry = {
            "predicted_round_s": predicted.avg_iteration_seconds(),
            "measured_round_s": measured.avg_iteration_seconds(),
            "bytes_per_round": predicted.total_bytes() // ITERATIONS,
            "final_loss": measured.final_loss(),
            "max_abs_param_diff": diff,
        }
        report["systems"][system] = entry
        rows.append(
            (
                system,
                "{:.4f}".format(entry["predicted_round_s"]),
                "{:.4f}".format(entry["measured_round_s"]),
                "{:,}".format(entry["bytes_per_round"]),
                "{:.2e}".format(diff),
            )
        )
    pathlib.Path("BENCH_runtime.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    emit(
        "runtime_backend_matrix",
        ascii_table(
            [
                "system",
                "predicted s/iter (sim)",
                "measured s/iter (local, 2 proc)",
                "bytes/iter",
                "max |param diff|",
            ],
            rows,
        ),
    )
