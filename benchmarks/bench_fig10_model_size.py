"""Fig 10: ColumnSGD per-iteration time vs model size (10 ... 1 billion).

The paper's criteo-derived synthetic sweep: nnz per row is held fixed
while the feature space grows.  ColumnSGD's per-iteration time stays
flat because only batch statistics move.  Simulated runs cover the
laptop-feasible sizes; the analytic path (same cost model) extends to
one billion dimensions.

Wall-clock benchmark: one iteration at m = 1,000,000.
"""

from repro.core import ColumnSGDConfig, ColumnSGDDriver, predict_iteration_time, train_columnsgd
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.net import NetworkModel
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration

SIMULATED_SIZES = (100, 10_000, 1_000_000)
ANALYTIC_SIZES = (10, 1000, 1_000_000, 1_000_000_000)


def criteo_like(m):
    return make_classification(
        3000, m, nnz_per_row=min(30, m), zipf_exponent=0.0, seed=8,
        name="criteo-synthetic-{}".format(m),
    )


def fig10_table():
    rows = []
    for m in SIMULATED_SIZES:
        cluster = SimulatedCluster(CLUSTER1)
        result = train_columnsgd(
            criteo_like(m), LogisticRegression(), SGD(1.0), cluster,
            batch_size=1000, iterations=6, eval_every=0, seed=8,
        )
        rows.append((
            "{:,}".format(m),
            format_duration(result.avg_iteration_seconds()),
            "simulated",
        ))
    net = NetworkModel(bandwidth=CLUSTER1.bandwidth_bytes_per_s,
                       latency=CLUSTER1.latency_s)
    for m in ANALYTIC_SIZES:
        seconds = predict_iteration_time(
            "columnsgd", m=m, batch_size=1000, n_workers=8,
            avg_nnz_per_row=min(30, m), network=net,
        )
        rows.append(("{:,}".format(m), format_duration(seconds), "analytic"))
    return ascii_table(["model dimension", "per-iteration time", "source"], rows)


def test_fig10(benchmark, emit):
    emit("fig10_model_size", fig10_table())

    data = criteo_like(1_000_000)
    cluster = SimulatedCluster(CLUSTER1)
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster,
        config=ColumnSGDConfig(batch_size=1000, iterations=1, eval_every=0),
    )
    driver.load(data)
    counter = iter(range(10**9))
    benchmark(lambda: driver.run_round(next(counter)))
