"""Ablation: dispatch block size (the knob of Algorithm 4).

Tiny blocks degenerate toward the naive row-by-row dispatcher (many
objects, overhead-bound); huge blocks reduce load-balancing granularity
and add nothing once serialization is amortised.  The paper fixes a
"predefined block size" without studying it — this ablation maps the
regime.

Wall-clock benchmark: dispatch at the sweet-spot block size.
"""

from repro.datasets import load_profile
from repro.partition import dispatch_block_based, make_assignment
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils import ascii_table, format_duration

BLOCK_SIZES = (16, 64, 256, 1024, 4096)


def ablation_table(data):
    asg = make_assignment("round_robin", data.n_features, CLUSTER1.n_workers)
    rows = []
    for block_size in BLOCK_SIZES:
        cluster = SimulatedCluster(CLUSTER1)
        _, _, report = dispatch_block_based(data, asg, cluster, block_size=block_size)
        rows.append(
            (
                block_size,
                format_duration(report.seconds),
                report.n_objects_shipped,
                "{:.2f} MB".format(report.bytes_shuffled / 1e6),
            )
        )
    return ascii_table(
        ["block size (rows)", "load time", "objects shipped", "bytes shuffled"], rows
    )


def test_ablation_block_size(benchmark, emit):
    data = load_profile("kddb").generate(seed=11, rows=12_000)
    emit("ablation_block_size", ablation_table(data))

    asg = make_assignment("round_robin", data.n_features, CLUSTER1.n_workers)
    benchmark(
        lambda: dispatch_block_based(
            data, asg, SimulatedCluster(CLUSTER1), block_size=1024
        )
    )
