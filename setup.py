"""Setup shim for environments whose pip cannot build PEP 517 editables."""
from setuptools import setup

setup()
