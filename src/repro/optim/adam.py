"""Adam (Kingma & Ba, 2014) — supported per the paper's Section III-A."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer
from repro.optim.schedules import Schedule
from repro.utils.validation import check_positive, check_probability


class Adam(Optimizer):
    """Bias-corrected first/second-moment adaptive steps."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        schedule: Schedule = None,
    ):
        super().__init__(learning_rate, schedule)
        check_probability(beta1, "beta1")
        check_probability(beta2, "beta2")
        check_positive(epsilon, "epsilon")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params, gradient, iteration):
        self._check_shapes(params, gradient)
        if self._m is None:
            # Lazy one-time state allocation, amortized O(1) per round.
            self._m = np.zeros_like(params)  # lint: noqa[R015,R016]
            self._v = np.zeros_like(params)  # lint: noqa[R015,R016]
        self._t += 1
        self._m *= self.beta1
        self._m += (1.0 - self.beta1) * gradient
        self._v *= self.beta2
        self._v += (1.0 - self.beta2) * gradient ** 2
        m_hat = self._m / (1.0 - self.beta1 ** self._t)
        v_hat = self._v / (1.0 - self.beta2 ** self._t)
        rate = self.effective_rate(iteration)
        params -= rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        return params

    def spawn(self):
        return Adam(
            self.learning_rate,
            beta1=self.beta1,
            beta2=self.beta2,
            epsilon=self.epsilon,
            schedule=self.schedule,
        )

    def reset(self):
        self._m = None
        self._v = None
        self._t = 0
