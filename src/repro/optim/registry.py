"""Name-based optimizer factory."""

from __future__ import annotations

from typing import Callable, Dict

from repro.optim.adagrad import AdaGrad
from repro.optim.adam import Adam
from repro.optim.base import Optimizer
from repro.optim.sgd import SGD

OPTIMIZER_REGISTRY: Dict[str, Callable[..., Optimizer]] = {
    "sgd": SGD,
    "adagrad": AdaGrad,
    "adam": Adam,
}


def make_optimizer(name: str, learning_rate: float, **kwargs) -> Optimizer:
    """Instantiate an optimizer by registry name."""
    key = name.lower()
    if key not in OPTIMIZER_REGISTRY:
        raise KeyError(
            "unknown optimizer {!r}; available: {}".format(name, sorted(OPTIMIZER_REGISTRY))
        )
    return OPTIMIZER_REGISTRY[key](learning_rate, **kwargs)
