"""Learning-rate schedules, pure functions of the iteration number.

Being stateless functions of ``t`` keeps distributed instances in sync
for free: every worker evaluates the same schedule at the same t.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive


class Schedule:
    """Interface: learning-rate multiplier at iteration ``t`` (0-based)."""

    def factor(self, iteration: int) -> float:
        """Multiplier applied to the base learning rate."""
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """Always 1.0 — the paper's setting (fixed grid-searched rates)."""

    def factor(self, iteration: int) -> float:
        return 1.0


class InverseScalingSchedule(Schedule):
    """``1 / (1 + decay * t) ** power`` — classic SGD decay."""

    def __init__(self, decay: float = 0.01, power: float = 0.5):
        check_non_negative(decay, "decay")
        check_non_negative(power, "power")
        self.decay = float(decay)
        self.power = float(power)

    def factor(self, iteration: int) -> float:
        return 1.0 / (1.0 + self.decay * iteration) ** self.power


class WarmupSchedule(Schedule):
    """Linear ramp from ``start_factor`` to 1.0 over ``warmup_iterations``,
    then delegate to ``after`` (constant by default).

    Useful for large-batch runs where the first steps at the full rate
    overshoot (the thrash regime of Fig 4(a) at small batches has the
    same cure).
    """

    def __init__(self, warmup_iterations: int, start_factor: float = 0.1,
                 after: "Schedule" = None):
        check_positive(warmup_iterations, "warmup_iterations")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError("start_factor must lie in (0, 1]")
        self.warmup_iterations = int(warmup_iterations)
        self.start_factor = float(start_factor)
        self.after = after if after is not None else ConstantSchedule()

    def factor(self, iteration: int) -> float:
        if iteration < self.warmup_iterations:
            progress = iteration / self.warmup_iterations
            return self.start_factor + (1.0 - self.start_factor) * progress
        return self.after.factor(iteration - self.warmup_iterations)


class StepDecaySchedule(Schedule):
    """Multiply by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, step_size: int, gamma: float = 0.5):
        check_positive(step_size, "step_size")
        check_positive(gamma, "gamma")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def factor(self, iteration: int) -> float:
        return self.gamma ** (iteration // self.step_size)
