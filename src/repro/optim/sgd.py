"""Plain SGD with optional classical momentum."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer
from repro.optim.schedules import Schedule
from repro.utils.validation import check_probability


class SGD(Optimizer):
    """``w <- w - eta_t * g`` (+ momentum buffer when ``momentum > 0``)."""

    name = "sgd"

    def __init__(self, learning_rate: float, momentum: float = 0.0, schedule: Schedule = None):
        super().__init__(learning_rate, schedule)
        check_probability(momentum, "momentum")
        self.momentum = float(momentum)
        self._velocity = None

    def step(self, params, gradient, iteration):
        self._check_shapes(params, gradient)
        rate = self.effective_rate(iteration)
        if self.momentum == 0.0:
            params -= rate * gradient
            return params
        if self._velocity is None:
            # Lazy one-time state allocation (amortized O(1) per round);
            # every SGD system keeps dense optimizer state of model size.
            self._velocity = np.zeros_like(params)  # lint: noqa[R015,R016]
        self._velocity *= self.momentum
        self._velocity += gradient
        params -= rate * self._velocity
        return params

    def spawn(self):
        return SGD(self.learning_rate, momentum=self.momentum, schedule=self.schedule)

    def reset(self):
        self._velocity = None
