"""AdaGrad (Duchi et al., 2011) — the paper cites it as a supported variant."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer
from repro.optim.schedules import Schedule
from repro.utils.validation import check_positive


class AdaGrad(Optimizer):
    """``w <- w - eta * g / (sqrt(sum g^2) + eps)`` per coordinate."""

    name = "adagrad"

    def __init__(self, learning_rate: float, epsilon: float = 1e-8, schedule: Schedule = None):
        super().__init__(learning_rate, schedule)
        check_positive(epsilon, "epsilon")
        self.epsilon = float(epsilon)
        self._accumulator = None

    def step(self, params, gradient, iteration):
        self._check_shapes(params, gradient)
        if self._accumulator is None:
            # Lazy one-time state allocation, amortized O(1) per round.
            self._accumulator = np.zeros_like(params)  # lint: noqa[R015,R016]
        self._accumulator += gradient ** 2
        rate = self.effective_rate(iteration)
        params -= rate * gradient / (np.sqrt(self._accumulator) + self.epsilon)
        return params

    def spawn(self):
        return AdaGrad(self.learning_rate, epsilon=self.epsilon, schedule=self.schedule)

    def reset(self):
        self._accumulator = None
