"""Optimizers and learning-rate schedules.

All updates are coordinate-wise, which is what lets ColumnSGD run an
independent optimizer instance per model partition and still reproduce
the single-machine trajectory exactly (the paper's Section III-A remark
that Adam/AdaGrad work "by tweaking the implementation of model update").
"""

from repro.optim.schedules import (
    Schedule,
    ConstantSchedule,
    InverseScalingSchedule,
    StepDecaySchedule,
    WarmupSchedule,
)
from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adagrad import AdaGrad
from repro.optim.adam import Adam
from repro.optim.registry import make_optimizer, OPTIMIZER_REGISTRY

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "InverseScalingSchedule",
    "StepDecaySchedule",
    "WarmupSchedule",
    "Optimizer",
    "SGD",
    "AdaGrad",
    "Adam",
    "make_optimizer",
    "OPTIMIZER_REGISTRY",
]
