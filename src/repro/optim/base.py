"""Optimizer interface.

An optimizer instance owns the state for exactly one parameter array (a
model partition in distributed runs, the full model on a single
machine).  ``spawn()`` creates a fresh instance with the same
hyper-parameters but blank state — one per worker partition.
"""

from __future__ import annotations

import numpy as np

from repro.optim.schedules import ConstantSchedule, Schedule
from repro.utils.validation import check_positive


class Optimizer:
    """Base class for coordinate-wise optimizers."""

    name = "abstract"

    def __init__(self, learning_rate: float, schedule: Schedule = None):
        check_positive(learning_rate, "learning_rate")
        self.learning_rate = float(learning_rate)
        self.schedule = schedule if schedule is not None else ConstantSchedule()

    def effective_rate(self, iteration: int) -> float:
        """Base rate times the schedule factor at ``iteration``."""
        return self.learning_rate * self.schedule.factor(iteration)

    def step(self, params: np.ndarray, gradient: np.ndarray, iteration: int) -> np.ndarray:
        """Apply one update **in place** and return ``params``.

        ``gradient`` must match ``params`` in shape.
        """
        raise NotImplementedError

    def spawn(self) -> "Optimizer":
        """A fresh same-hyper-parameter instance with empty state."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated state (moments, squared sums)."""
        raise NotImplementedError

    def _check_shapes(self, params: np.ndarray, gradient: np.ndarray) -> None:
        if params.shape != gradient.shape:
            raise ValueError(
                "gradient shape {} != params shape {}".format(gradient.shape, params.shape)
            )
