"""Sim-side cost model of loading from a column-shard store.

A store-backed ``driver.load`` must charge the cluster *exactly* what
the in-memory dispatcher charges — same WORKSET messages, same phase
seconds, same clock advance — or store-backed sim runs would diverge
from the golden trajectories and the ProtocolChecker's Table-I audit.
Everything :func:`~repro.partition.dispatch.dispatch_block_based`
charges is a function of per-(block, destination) ``(n_rows, nnz)``
pairs, all of which the shard footers record, so :class:`StoreModel`
replays the accounting loop term-for-term from metadata alone — no
record data is read, and the floating-point accumulation order is
identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.partition.dispatch import LoadCostModel, LoadReport
from repro.sim.cluster import SimulatedCluster
from repro.storage.serialization import csr_matrix_bytes, workset_bytes


class StoreModel:
    """Replays block-dispatch load accounting from shard footers.

    Parameters
    ----------
    block_rows:
        ``(n_blocks,)`` rows per block (the sidecar footer).
    nnz_by_worker:
        ``(K, n_blocks)`` stored non-zeros per (destination, block)
        (the shard footers).  Column sums recover each block's total
        nnz because the column assignment partitions all features.
    """

    def __init__(self, block_rows: np.ndarray, nnz_by_worker: np.ndarray):
        self.block_rows = block_rows
        self.nnz_by_worker = nnz_by_worker
        if nnz_by_worker.ndim != 2 or nnz_by_worker.shape[1] != block_rows.shape[0]:
            raise ConfigurationError(
                "nnz table shape {} does not match {} block(s)".format(
                    nnz_by_worker.shape, block_rows.shape[0]
                )
            )

    @property
    def n_blocks(self) -> int:
        return int(self.block_rows.shape[0])

    @property
    def n_workers(self) -> int:
        return int(self.nnz_by_worker.shape[0])

    def block_bytes(self, block_id: int) -> int:
        """Stored size of the source row block (labels included) — what
        :meth:`~repro.storage.hdfs.SimulatedHDFS.block_bytes` answers."""
        n_rows = int(self.block_rows[block_id])
        block_nnz = int(self.nnz_by_worker[:, block_id].sum())
        return csr_matrix_bytes(n_rows, block_nnz, with_labels=True)

    def charge_load(
        self,
        cluster: SimulatedCluster,
        costs: Optional[LoadCostModel] = None,
    ) -> LoadReport:
        """Charge the cluster one block-based dispatch, footer-driven.

        Term-for-term mirror of
        :func:`~repro.partition.dispatch.dispatch_block_based`: same
        read times (disk bandwidth over the reconstructed block bytes),
        same per-object serialize/deserialize charges in the same loop
        order, same WORKSET messages, same phase balance and clock
        advance — so a store-backed sim run is bit-identical to an
        in-memory one.
        """
        costs = costs or LoadCostModel()
        K = cluster.n_workers
        if K != self.n_workers:
            raise ConfigurationError(
                "store was sharded for {} worker(s) but the cluster has {}".format(
                    self.n_workers, K
                )
            )
        read_bandwidth = cluster.spec.disk_bandwidth_bytes_per_s

        dispatch_busy = [0.0] * K
        receive_busy = [0.0] * K
        send_bytes = [0] * K
        recv_bytes = [0] * K
        n_objects = 0

        for i in range(self.n_blocks):
            dispatcher = i % K
            n_rows = int(self.block_rows[i])
            block_nnz = sum(int(self.nnz_by_worker[w, i]) for w in range(K))
            dispatch_busy[dispatcher] += self.block_bytes(i) / read_bandwidth
            dispatch_busy[dispatcher] += block_nnz * costs.split_seconds_per_nnz
            for dest in range(K):
                dest_nnz = int(self.nnz_by_worker[dest, i])
                size = workset_bytes(n_rows, dest_nnz)
                n_objects += 1
                dispatch_busy[dispatcher] += costs.serialize_seconds_per_object
                receive_busy[dest] += (
                    costs.deserialize_seconds_per_object
                    + dest_nnz * costs.deserialize_seconds_per_nnz
                )
                if dest != dispatcher:
                    send_bytes[dispatcher] += size
                    recv_bytes[dest] += size
                    cluster.network.send(
                        Message(MessageKind.WORKSET, dispatcher, dest, size)
                    )

        bandwidth = cluster.network.bandwidth
        phases = {
            "dispatch": _slowest(dispatch_busy),
            "network": max(
                _slowest([b / bandwidth for b in send_bytes]),
                _slowest([b / bandwidth for b in recv_bytes]),
            ),
            "receive": _slowest(receive_busy),
        }
        seconds = cluster.cost.task_overhead + sum(phases.values())
        cluster.clock.advance(seconds)
        return LoadReport(
            strategy="ColumnSGD",
            seconds=seconds,
            bytes_shuffled=sum(send_bytes),
            n_objects_shipped=n_objects,
            phase_seconds=phases,
        )


def _slowest(per_worker: List[float]) -> float:
    """BSP phase duration — the slowest worker (dispatch's ``_balance``)."""
    return max(per_worker) if per_worker else 0.0
