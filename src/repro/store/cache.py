"""Budgeted LRU block cache and the store-wide read ledger.

The cache holds *decoded* worksets keyed by block id, weighted by their
byte-model size (``workset_bytes``), so the ``memory_budget_bytes`` knob
bounds the same quantity the simulator's memory accounting tracks.  The
module-level :data:`STORE_LEDGER` mirrors
:data:`repro.sim.cost.WORK_LEDGER`: every cache miss charges the bytes
actually fetched from disk, which tests reconcile against the per-store
counters and the footer arithmetic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils.validation import check_non_negative


@dataclass
class CacheCounters:
    """Hit/miss/eviction and traffic counters of one shard cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_read: int = 0      # file bytes fetched on misses
    bytes_evicted: int = 0   # cached weight dropped by evictions

    @property
    def reads(self) -> int:
        """Total ``get`` calls served (hits + misses)."""
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_read": self.bytes_read,
            "bytes_evicted": self.bytes_evicted,
        }


class LRUBlockCache:
    """LRU map ``block_id -> value`` bounded by a byte budget.

    ``budget_bytes == 0`` disables eviction (unbounded cache).  The most
    recently used entry always stays resident even when it alone exceeds
    the budget — evicting the block being read would thrash forever.
    """

    def __init__(self, budget_bytes: int = 0):
        check_non_negative(budget_bytes, "budget_bytes")
        self.budget_bytes = int(budget_bytes)
        self.counters = CacheCounters()
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        self._resident_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    @property
    def resident_bytes(self) -> int:
        """Sum of cached entry weights."""
        return self._resident_bytes

    def get(self, block_id: int):
        """Return the cached value (refreshing recency) or ``None``."""
        entry = self._entries.get(block_id)
        if entry is None:
            self.counters.misses += 1
            return None
        self._entries.move_to_end(block_id)
        self.counters.hits += 1
        return entry[0]

    def put(self, block_id: int, value, weight: int) -> None:
        """Insert a decoded block, evicting LRU entries over budget."""
        check_non_negative(weight, "weight")
        if block_id in self._entries:
            _, old_weight = self._entries.pop(block_id)
            self._resident_bytes -= old_weight
        self._entries[block_id] = (value, int(weight))
        self._resident_bytes += int(weight)
        if self.budget_bytes:
            while self._resident_bytes > self.budget_bytes and len(self._entries) > 1:
                _, (_, evicted_weight) = self._entries.popitem(last=False)
                self._resident_bytes -= evicted_weight
                self.counters.evictions += 1
                self.counters.bytes_evicted += evicted_weight

    def clear(self) -> None:
        """Drop every cached entry (counters are preserved)."""
        self._entries.clear()
        self._resident_bytes = 0


@dataclass
class StoreLedger:
    """Process-wide record of shard bytes fetched from disk.

    The store-side analogue of :data:`repro.sim.cost.WORK_LEDGER`:
    always on (a handful of integer adds per miss), reset per test.  The
    acceptance reconciliation reads it from the master side after a
    local-backend run — the per-store cache counters, this ledger, and
    the footer lengths must all tell the same byte story.
    """

    bytes_read: int = 0
    blocks_read: int = 0
    by_worker: Dict[int, int] = field(default_factory=dict)

    def charge_read(self, worker_id: int, n_bytes: int) -> None:
        check_non_negative(n_bytes, "n_bytes")
        self.bytes_read += int(n_bytes)
        self.blocks_read += 1
        self.by_worker[worker_id] = self.by_worker.get(worker_id, 0) + int(n_bytes)

    def reset(self) -> None:
        self.bytes_read = 0
        self.blocks_read = 0
        self.by_worker.clear()

    def snapshot(self) -> Dict[str, int]:
        return {"bytes_read": self.bytes_read, "blocks_read": self.blocks_read}


#: the process-wide ledger shard readers charge into.
STORE_LEDGER = StoreLedger()


def worker_ledger(store) -> Optional[int]:
    """Bytes this ledger attributes to ``store.worker_id`` (or ``None``)."""
    return STORE_LEDGER.by_worker.get(getattr(store, "worker_id", None))
