"""``repro.store`` — on-disk column-shard store for out-of-core ColumnSGD.

The paper's row→column transformation (Fig 5 / Algorithm 4) normally
runs in memory; this package runs it as a disk shuffle.  A store
directory holds one shard file per worker (that worker's column
sub-vectors, block by block) plus a shared label sidecar, all encoded
with the :mod:`repro.storage.serialization` wire codec so on-disk
record lengths equal the simulator's byte model by construction.

Pieces
------
:class:`ShuffleWriter`
    streams labelled rows through the transformation under a memory
    budget, producing the shard files out-of-core.
:class:`ShardReader` / :class:`ShardWorksetStore`
    mmap-backed zero-copy readers; the workset store is the lazy,
    LRU-cached drop-in the training loop reads from.
:class:`StoreModel`
    replays the block-dispatch load cost from footer metadata so
    store-backed sim runs stay bit-identical.
:class:`ColumnShardStore` / :func:`store_backed_dispatch`
    the facade the driver calls when ``config.store_dir`` is set.
"""

from repro.store.cache import CacheCounters, LRUBlockCache, STORE_LEDGER, StoreLedger
from repro.store.format import (
    HEADER_BYTES,
    KIND_SHARD,
    KIND_SIDECAR,
    MANIFEST_FILENAME,
    SIDECAR_FILENAME,
    StoreHeader,
    shard_filename,
    shard_record_bytes,
    sidecar_record_bytes,
)
from repro.store.model import StoreModel
from repro.store.reader import ShardIndex, ShardReader, ShardWorksetStore
from repro.store.store import (
    ColumnShardStore,
    StoreManifest,
    store_backed_dispatch,
)
from repro.store.writer import MemoryMeter, ShuffleWriter

__all__ = [
    "CacheCounters",
    "ColumnShardStore",
    "HEADER_BYTES",
    "KIND_SHARD",
    "KIND_SIDECAR",
    "LRUBlockCache",
    "MANIFEST_FILENAME",
    "MemoryMeter",
    "STORE_LEDGER",
    "SIDECAR_FILENAME",
    "ShardIndex",
    "ShardReader",
    "ShardWorksetStore",
    "ShuffleWriter",
    "StoreHeader",
    "StoreLedger",
    "StoreManifest",
    "StoreModel",
    "shard_filename",
    "shard_record_bytes",
    "sidecar_record_bytes",
    "store_backed_dispatch",
]
