"""Out-of-core shuffle writer: streaming row→column transformation.

:class:`ShuffleWriter` consumes one labelled sparse row at a time and
produces the K shard files plus the label sidecar, never holding more
than one block (plus one in-flight projection) in memory.  That is the
paper's Fig 5 pipeline run as a disk shuffle: rows buffer up to
``block_size``, the buffered block is CSR-compressed, projected onto
each worker's columns with
:meth:`~repro.linalg.CSRMatrix.select_columns`, and each projection is
codec-encoded and appended to that worker's shard before the next one
is built.

Memory is bounded by ``memory_budget_bytes``: buffered rows are tracked
through the same byte model the simulator charges
(:func:`~repro.storage.serialization.sparse_row_bytes` per row), and
when the buffer crosses a third of the budget the block is flushed
early.  An early flush produces a shorter block — still a valid store,
but a *different block layout* than the in-memory dispatcher, so runs
that must stay bit-identical with the simulator should grant a budget
of at least ``3 x`` the largest block's buffered bytes (the writer
never needs more than roughly two block footprints at once, so such a
budget also keeps the tracked peak under the knob).

:class:`MemoryMeter` is the tracked-bytes instrument: every buffered
row, assembled block, and in-flight projection is charged and released,
and ``meter.peak`` is what the out-of-core acceptance test asserts
against the budget.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, List, Optional, Union

import numpy as np

from repro.errors import DataError
from repro.linalg import CSRMatrix, SparseVector
from repro.partition.column import make_assignment
from repro.store.format import (
    HEADER_BYTES,
    KIND_SHARD,
    KIND_SIDECAR,
    SIDECAR_FILENAME,
    StoreHeader,
    shard_filename,
    shard_record_bytes,
    sidecar_record_bytes,
)
from repro.storage.serialization import (
    CSRBlockPayload,
    DenseVectorPayload,
    IntVectorPayload,
    csr_matrix_bytes,
    encode_payload,
    sparse_row_bytes,
)
from repro.utils.validation import check_non_negative, check_positive


class MemoryMeter:
    """Tracked buffer bytes: charge/release with a running peak.

    Tracks *model* bytes (the serialization size functions), the same
    currency :meth:`~repro.sim.cluster.SimulatedCluster.charge_memory`
    uses — so "peak under budget" means the same thing out-of-core as
    it does in the simulator's Table-I memory shape.
    """

    __slots__ = ("current", "peak")

    def __init__(self):
        self.current = 0
        self.peak = 0

    def charge(self, n_bytes: int) -> None:
        check_non_negative(n_bytes, "n_bytes")
        self.current += int(n_bytes)
        if self.current > self.peak:
            self.peak = self.current

    def release(self, n_bytes: int) -> None:
        check_non_negative(n_bytes, "n_bytes")
        if n_bytes > self.current:
            raise DataError(
                "releasing {} byte(s) but only {} charged".format(
                    n_bytes, self.current
                )
            )
        self.current -= int(n_bytes)


class ShuffleWriter:
    """Stream rows into a column-shard store, one block at a time."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        n_features: int,
        n_workers: int,
        scheme: str = "round_robin",
        block_size: int = 2048,
        memory_budget_bytes: int = 0,
        name: str = "dataset",
    ):
        check_positive(n_features, "n_features")
        check_positive(n_workers, "n_workers")
        check_positive(block_size, "block_size")
        check_non_negative(memory_budget_bytes, "memory_budget_bytes")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.n_features = int(n_features)
        self.n_workers = int(n_workers)
        self.scheme = scheme
        self.block_size = int(block_size)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.name = name
        self.meter = MemoryMeter()

        assignment = make_assignment(scheme, self.n_features, self.n_workers)
        self._columns = [assignment.columns_of(k) for k in range(self.n_workers)]

        self._shard_handles: List[IO[bytes]] = []
        self._shard_footers: List[List[int]] = [[] for _ in range(self.n_workers)]
        self._shard_offsets = [HEADER_BYTES] * self.n_workers
        for w in range(self.n_workers):
            handle = open(self._tmp_path(shard_filename(w)), "wb")
            handle.write(b"\x00" * HEADER_BYTES)
            self._shard_handles.append(handle)
        self._sidecar_handle: Optional[IO[bytes]] = open(
            self._tmp_path(SIDECAR_FILENAME), "wb"
        )
        self._sidecar_handle.write(b"\x00" * HEADER_BYTES)
        self._sidecar_footer: List[int] = []
        self._sidecar_offset = HEADER_BYTES

        self._rows: List[SparseVector] = []
        self._labels: List[float] = []
        self._buffered_bytes = 0
        # flush when the row buffer alone reaches a third of the budget:
        # the flush transiently holds buffer + assembled block + one
        # projection, each bounded by the buffer's footprint.
        self._flush_threshold = (
            self.memory_budget_bytes // 3 if self.memory_budget_bytes else 0
        )
        self.n_rows = 0
        self.total_nnz = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _tmp_path(self, filename: str) -> Path:
        return self.store_dir / (filename + ".tmp")

    @property
    def n_blocks(self) -> int:
        """Blocks flushed so far."""
        return len(self._sidecar_footer) // 3

    def add_row(self, label: float, indices, values) -> None:
        """Buffer one labelled sparse row, flushing a block when full."""
        if self._closed:
            raise DataError("writer is closed")
        vector = SparseVector(indices, values, self.n_features)
        row_bytes = sparse_row_bytes(vector.nnz)
        self.meter.charge(row_bytes)
        self._buffered_bytes += row_bytes
        self._rows.append(vector)
        self._labels.append(float(label))
        self.n_rows += 1
        self.total_nnz += vector.nnz
        if len(self._rows) >= self.block_size or (
            self._flush_threshold
            and self._buffered_bytes >= self._flush_threshold
        ):
            self._flush_block()

    def _flush_block(self) -> None:
        """Compress the buffered rows and append one record per shard."""
        if not self._rows:
            return
        block = CSRMatrix.from_rows(self._rows, n_cols=self.n_features)
        labels = np.array(self._labels, dtype=np.float64)
        block_bytes = csr_matrix_bytes(block.n_rows, block.nnz, with_labels=True)
        self.meter.charge(block_bytes)
        # the CSR block owns copies of the row data now; drop the buffer
        # before projecting so the flush peak stays ~2 block footprints.
        self._rows = []
        self._labels = []
        self.meter.release(self._buffered_bytes)
        self._buffered_bytes = 0

        record = encode_payload(DenseVectorPayload(labels, precision="fp64"))
        if len(record) != sidecar_record_bytes(block.n_rows):
            raise DataError("sidecar record does not match the byte model")
        self._sidecar_handle.write(record)
        self._sidecar_footer.extend(
            (self._sidecar_offset, len(record), block.n_rows)
        )
        self._sidecar_offset += len(record)

        for dest in range(self.n_workers):
            shard = block.select_columns(self._columns[dest])
            payload = CSRBlockPayload(
                indptr=shard.indptr, indices=shard.indices, data=shard.data
            )
            encoded = encode_payload(payload)
            if len(encoded) != shard_record_bytes(shard.n_rows, shard.nnz):
                raise DataError("shard record does not match the byte model")
            self.meter.charge(len(encoded))
            self._shard_handles[dest].write(encoded)
            self._shard_footers[dest].extend(
                (self._shard_offsets[dest], len(encoded), shard.n_rows, shard.nnz)
            )
            self._shard_offsets[dest] += len(encoded)
            self.meter.release(len(encoded))
        self.meter.release(block_bytes)

    # ------------------------------------------------------------------
    def _finalize_file(
        self,
        handle: IO[bytes],
        filename: str,
        kind: int,
        worker_id: int,
        footer: List[int],
        data_end: int,
    ) -> None:
        """Append the footer, rewrite the real header, publish atomically."""
        encoded_footer = encode_payload(
            IntVectorPayload(np.array(footer, dtype=np.int64))
        )
        handle.write(encoded_footer)
        fields = 4 if kind == KIND_SHARD else 3
        header = StoreHeader(
            kind=kind,
            worker_id=worker_id,
            n_blocks=len(footer) // fields,
            footer_offset=data_end,
            footer_length=len(encoded_footer),
            data_bytes=data_end - HEADER_BYTES,
        )
        handle.seek(0)
        handle.write(header.pack())
        handle.close()
        os.replace(self._tmp_path(filename), self.store_dir / filename)

    def close(self) -> None:
        """Flush the tail block and publish every file atomically."""
        if self._closed:
            return
        self._flush_block()
        for w, handle in enumerate(self._shard_handles):
            self._finalize_file(
                handle,
                shard_filename(w),
                KIND_SHARD,
                w,
                self._shard_footers[w],
                self._shard_offsets[w],
            )
        self._finalize_file(
            self._sidecar_handle,
            SIDECAR_FILENAME,
            KIND_SIDECAR,
            0,
            self._sidecar_footer,
            self._sidecar_offset,
        )
        self._sidecar_handle = None
        self._shard_handles = []
        self._closed = True

    def __enter__(self) -> "ShuffleWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
