"""The column-shard file format (header + records + footer).

One shard file holds one worker's column projection of every block, one
:class:`~repro.storage.serialization.CSRBlockPayload` record per block.
A shared *sidecar* file holds the per-block label vectors (one
:class:`~repro.storage.serialization.DenseVectorPayload` record per
block) so labels are written once, not K times.

Layout of every store file::

    [ 64-byte store header ]          offset 0
    [ record 0 ][ record 1 ] ...      codec payloads, block ids dense from 0
    [ footer ]                        one IntVectorPayload of per-record rows

The footer is a flat int64 table — ``(offset, length, n_rows, nnz)`` per
shard record, ``(offset, length, n_rows)`` per sidecar record — encoded
as a codec payload itself, so *every byte in the file is covered by the
byte model*: the file size equals

    HEADER_BYTES + sum(record lengths) + int_vector_bytes(table size)

by construction, and each record length equals the matching size
function (:func:`shard_record_bytes` / :func:`sidecar_record_bytes`).
:func:`check_sizes` asserts that identity when a file is opened, which
is what lets the sim-side :class:`~repro.store.model.StoreModel` charge
load costs from footers alone and stay bit-identical with the in-memory
dispatcher.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import DataError
from repro.storage.serialization import (
    OBJECT_OVERHEAD_BYTES,
    csr_matrix_bytes,
    dense_vector_bytes,
    int_vector_bytes,
)

#: store header size; deliberately equal to the codec's per-object
#: overhead so headers are charged like any other serialized object.
HEADER_BYTES = OBJECT_OVERHEAD_BYTES

#: header layout mirrors the codec's: magic, version, kind code, a
#: uint16 worker id, then four uint64 shape fields, zero-padded.
_STORE_HEADER_STRUCT = struct.Struct("<4sBBH4Q")
STORE_MAGIC = b"RSHD"
STORE_VERSION = 1
_HEADER_PAD = HEADER_BYTES - _STORE_HEADER_STRUCT.size

KIND_SHARD = 1
KIND_SIDECAR = 2

#: int64 fields per footer row.
SHARD_FOOTER_FIELDS = 4    # offset, length, n_rows, nnz
SIDECAR_FOOTER_FIELDS = 3  # offset, length, n_rows

SIDECAR_FILENAME = "labels.col"
MANIFEST_FILENAME = "manifest.json"


def shard_filename(worker_id: int) -> str:
    """File name of one worker's shard inside the store directory."""
    return "shard_{:04d}.col".format(worker_id)


def shard_record_bytes(n_rows: int, nnz: int) -> int:
    """On-disk length of one shard record (unlabelled CSR payload)."""
    return csr_matrix_bytes(n_rows, nnz, with_labels=False)


def sidecar_record_bytes(n_rows: int) -> int:
    """On-disk length of one sidecar record (fp64 label vector)."""
    return dense_vector_bytes(n_rows)


def footer_bytes(n_blocks: int, fields: int) -> int:
    """On-disk length of a footer table (an IntVectorPayload)."""
    return int_vector_bytes(n_blocks * fields)


@dataclass(frozen=True)
class StoreHeader:
    """The fixed 64-byte header at offset 0 of every store file."""

    kind: int
    worker_id: int
    n_blocks: int
    footer_offset: int
    footer_length: int
    data_bytes: int

    def pack(self) -> bytes:
        packed = _STORE_HEADER_STRUCT.pack(
            STORE_MAGIC,
            STORE_VERSION,
            self.kind,
            self.worker_id,
            self.n_blocks,
            self.footer_offset,
            self.footer_length,
            self.data_bytes,
        )
        return packed + b"\x00" * _HEADER_PAD

    @classmethod
    def unpack(cls, buffer: bytes) -> "StoreHeader":
        if len(buffer) < HEADER_BYTES:
            raise DataError(
                "truncated store header: {} byte(s)".format(len(buffer))
            )
        magic, version, kind, worker_id, a, b, c, d = (
            _STORE_HEADER_STRUCT.unpack_from(buffer, 0)
        )
        if magic != STORE_MAGIC:
            raise DataError("bad store magic {!r}".format(magic))
        if version != STORE_VERSION:
            raise DataError("unsupported store version {}".format(version))
        if kind not in (KIND_SHARD, KIND_SIDECAR):
            raise DataError("unknown store file kind {}".format(kind))
        return cls(
            kind=kind,
            worker_id=worker_id,
            n_blocks=a,
            footer_offset=b,
            footer_length=c,
            data_bytes=d,
        )

    @property
    def footer_fields(self) -> int:
        """int64 fields per footer row for this file kind."""
        return SHARD_FOOTER_FIELDS if self.kind == KIND_SHARD else SIDECAR_FOOTER_FIELDS

    def expected_file_bytes(self) -> int:
        """Total file size implied by the byte model."""
        return HEADER_BYTES + self.data_bytes + self.footer_length


def check_sizes(header: StoreHeader, file_size: int) -> None:
    """Assert the on-disk layout equals the byte model.

    Raises :class:`~repro.errors.DataError` when the file size or the
    footer length disagree with the size functions — a truncated write
    or a foreign file, either way unreadable.
    """
    if header.footer_length != footer_bytes(header.n_blocks, header.footer_fields):
        raise DataError(
            "footer length {} does not match model {} for {} block(s)".format(
                header.footer_length,
                footer_bytes(header.n_blocks, header.footer_fields),
                header.n_blocks,
            )
        )
    if file_size != header.expected_file_bytes():
        raise DataError(
            "store file is {} byte(s) but the byte model says {}".format(
                file_size, header.expected_file_bytes()
            )
        )
