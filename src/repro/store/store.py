"""The column-shard store facade: create, open, read, and dispatch.

A store directory holds::

    manifest.json     dataset + sharding metadata (human-readable)
    shard_0000.col    worker 0's column projections, one record/block
    ...
    labels.col        shared label sidecar, one record/block

:class:`ColumnShardStore` ties the pieces together: the classmethod
constructors shuffle a :class:`~repro.datasets.dataset.Dataset` or a
LIBSVM file (plain or gzipped) into shards out-of-core, ``open`` reads
back footers + manifest, :meth:`worker_store` hands each worker a lazy
:class:`~repro.store.reader.ShardWorksetStore`, and
:func:`store_backed_dispatch` is what
:meth:`~repro.core.driver.ColumnSGDDriver.load` calls when
``config.store_dir`` is set — identical stores, block layout, and
simulated cost as the in-memory dispatcher, with the data on disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.libsvm import iter_libsvm
from repro.errors import ConfigurationError, DataError
from repro.linalg import CSRMatrix
from repro.partition.column import ColumnAssignment, make_assignment
from repro.partition.dispatch import LoadCostModel, LoadReport
from repro.sim.cluster import SimulatedCluster
from repro.store.format import (
    MANIFEST_FILENAME,
    SIDECAR_FILENAME,
    shard_filename,
)
from repro.store.model import StoreModel
from repro.store.reader import ShardIndex, ShardReader, ShardWorksetStore
from repro.store.writer import ShuffleWriter

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class StoreManifest:
    """Sharding metadata; everything needed to reopen a store."""

    name: str
    n_rows: int
    n_features: int
    nnz: int
    n_workers: int
    scheme: str
    block_size: int
    n_blocks: int
    format_version: int = MANIFEST_VERSION

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StoreManifest":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != MANIFEST_VERSION:
            raise DataError(
                "unsupported store manifest version {!r}".format(version)
            )
        return cls(**payload)


class ColumnShardStore:
    """An on-disk column-shard store, opened read-only."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        manifest: StoreManifest,
        shard_indexes: List[ShardIndex],
        sidecar_index: ShardIndex,
    ):
        self.store_dir = Path(store_dir)
        self.manifest = manifest
        self.shard_indexes = shard_indexes
        self.sidecar_index = sidecar_index

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def exists(store_dir: Union[str, Path]) -> bool:
        """True when ``store_dir`` holds a finished store."""
        return (Path(store_dir) / MANIFEST_FILENAME).is_file()

    @classmethod
    def open(cls, store_dir: Union[str, Path]) -> "ColumnShardStore":
        """Open an existing store, validating every file's byte model."""
        store_dir = Path(store_dir)
        manifest_path = store_dir / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise DataError("no store manifest at {}".format(manifest_path))
        manifest = StoreManifest.from_json(manifest_path.read_text(encoding="utf-8"))
        shard_indexes = [
            ShardIndex.load(store_dir / shard_filename(w))
            for w in range(manifest.n_workers)
        ]
        sidecar_index = ShardIndex.load(store_dir / SIDECAR_FILENAME)
        for w, index in enumerate(shard_indexes):
            if index.n_blocks != manifest.n_blocks:
                raise DataError(
                    "shard {} has {} block(s); manifest says {}".format(
                        w, index.n_blocks, manifest.n_blocks
                    )
                )
        if sidecar_index.n_blocks != manifest.n_blocks:
            raise DataError(
                "sidecar has {} block(s); manifest says {}".format(
                    sidecar_index.n_blocks, manifest.n_blocks
                )
            )
        return cls(store_dir, manifest, shard_indexes, sidecar_index)

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        store_dir: Union[str, Path],
        n_workers: int,
        scheme: str = "round_robin",
        block_size: int = 2048,
        memory_budget_bytes: int = 0,
    ) -> "ColumnShardStore":
        """Shuffle an in-memory dataset into shards, block by block.

        Rows stream through the writer one sparse view at a time, so
        the extra footprint beyond the source dataset is bounded by the
        writer's budget.
        """
        writer = ShuffleWriter(
            store_dir,
            n_features=dataset.n_features,
            n_workers=n_workers,
            scheme=scheme,
            block_size=block_size,
            memory_budget_bytes=memory_budget_bytes,
            name=dataset.name,
        )
        for i in range(dataset.n_rows):
            row = dataset.features.row(i)
            writer.add_row(dataset.labels[i], row.indices, row.values)
        return cls.finish(writer)

    @classmethod
    def from_libsvm(
        cls,
        source: Union[str, Path],
        store_dir: Union[str, Path],
        n_workers: int,
        n_features: Optional[int] = None,
        zero_based: Optional[bool] = None,
        scheme: str = "round_robin",
        block_size: int = 2048,
        memory_budget_bytes: int = 0,
        name: Optional[str] = None,
    ) -> "ColumnShardStore":
        """Shuffle a LIBSVM file (``.gz`` transparent) into shards.

        Never materializes the dataset: when the dimension or index
        base is unknown a first streaming pass scans only the index
        range, then the second pass feeds rows straight to the writer.
        """
        source = Path(source)
        if n_features is None or zero_based is None:
            min_index: Optional[int] = None
            max_index = -1
            for _, indices, _ in iter_libsvm(source):
                if indices.size:
                    low = int(indices.min())
                    min_index = low if min_index is None else min(min_index, low)
                    max_index = max(max_index, int(indices.max()))
            if zero_based is None:
                zero_based = min_index == 0 if min_index is not None else True
            if n_features is None:
                n_features = max(max_index + 1 - (0 if zero_based else 1), 1)
        shift = 0 if zero_based else 1
        writer = ShuffleWriter(
            store_dir,
            n_features=n_features,
            n_workers=n_workers,
            scheme=scheme,
            block_size=block_size,
            memory_budget_bytes=memory_budget_bytes,
            name=name if name is not None else source.stem,
        )
        for label, indices, values in iter_libsvm(source):
            writer.add_row(label, indices - shift, values)
        return cls.finish(writer)

    @classmethod
    def finish(cls, writer: ShuffleWriter) -> "ColumnShardStore":
        """Close a writer, publish the manifest, and open the result."""
        writer.close()
        manifest = StoreManifest(
            name=writer.name,
            n_rows=writer.n_rows,
            n_features=writer.n_features,
            nnz=writer.total_nnz,
            n_workers=writer.n_workers,
            scheme=writer.scheme,
            block_size=writer.block_size,
            n_blocks=writer.n_blocks,
        )
        manifest_path = writer.store_dir / MANIFEST_FILENAME
        tmp_path = writer.store_dir / (MANIFEST_FILENAME + ".tmp")
        tmp_path.write_text(manifest.to_json(), encoding="utf-8")
        os.replace(tmp_path, manifest_path)
        return cls.open(writer.store_dir)

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def assignment(self) -> ColumnAssignment:
        return make_assignment(
            self.manifest.scheme, self.manifest.n_features, self.manifest.n_workers
        )

    def block_sizes(self) -> Dict[int, int]:
        """Rows per block — the two-phase index input."""
        return {
            b: self.sidecar_index.n_rows(b)
            for b in range(self.manifest.n_blocks)
        }

    def worker_store(
        self, worker_id: int, cache_budget_bytes: int = 0
    ) -> ShardWorksetStore:
        """A lazy shard-backed workset store for one worker."""
        if not 0 <= worker_id < self.manifest.n_workers:
            raise ConfigurationError(
                "worker {} out of range [0, {})".format(
                    worker_id, self.manifest.n_workers
                )
            )
        assignment = self.assignment()
        return ShardWorksetStore(
            worker_id,
            assignment.local_dim(worker_id),
            self.shard_indexes[worker_id],
            self.sidecar_index,
            cache_budget_bytes=cache_budget_bytes,
        )

    def store_model(self) -> StoreModel:
        """The footer-driven load-cost model for this store."""
        nnz_by_worker = np.stack(
            [index.table[:, 3] for index in self.shard_indexes]
        ) if self.manifest.n_blocks else np.zeros(
            (self.manifest.n_workers, 0), dtype=np.int64
        )
        return StoreModel(self.sidecar_index.table[:, 2], nnz_by_worker)

    def total_stored_bytes(self) -> int:
        """Record bytes across all shards + sidecar (headers/footers excluded)."""
        total = self.sidecar_index.header.data_bytes
        for index in self.shard_indexes:
            total += index.header.data_bytes
        return int(total)

    # ------------------------------------------------------------------
    # reassembly (evaluation / verification — not the training path)
    # ------------------------------------------------------------------
    def materialize_dataset(self) -> Dataset:
        """Reassemble the global dataset from shards, sparsely.

        Inverse of the shuffle: per block, every worker's local-id CSR
        piece maps back to global column ids; the concatenated COO
        triples are lexsorted into a global CSR.  Peak memory is one
        dataset — this is the evaluation/verification path, not the
        training path, which never assembles global rows.
        """
        manifest = self.manifest
        assignment = self.assignment()
        columns = [
            assignment.columns_of(w) for w in range(manifest.n_workers)
        ]
        block_rows = self.sidecar_index.table[:, 2]
        row_base = np.zeros(manifest.n_blocks + 1, dtype=np.int64)
        np.cumsum(block_rows, out=row_base[1:])

        readers = [ShardReader(index) for index in self.shard_indexes]
        sidecar = ShardReader(self.sidecar_index)
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        vals_parts: List[np.ndarray] = []
        labels_parts: List[np.ndarray] = []
        try:
            for b in range(manifest.n_blocks):
                labels_parts.append(sidecar.labels(b))
                for w, reader in enumerate(readers):
                    payload = reader.csr_block(b)
                    local_rows = np.repeat(
                        np.arange(payload.n_rows, dtype=np.int64),
                        np.diff(payload.indptr),
                    )
                    rows_parts.append(row_base[b] + local_rows)
                    cols_parts.append(columns[w][payload.indices])
                    vals_parts.append(payload.data)
        finally:
            for reader in readers:
                reader.close()
            sidecar.close()

        n_rows = int(row_base[-1])
        if rows_parts:
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
            vals = np.concatenate(vals_parts)
        else:
            rows = np.zeros(0, dtype=np.int64)
            cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
        order = np.lexsort((cols, rows))
        counts = np.bincount(rows, minlength=n_rows) if n_rows else np.zeros(0)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        features = CSRMatrix(
            indptr, cols[order], vals[order], manifest.n_features
        )
        labels = (
            np.concatenate(labels_parts)
            if labels_parts
            else np.zeros(0, dtype=np.float64)
        )
        return Dataset(features, labels, name=manifest.name)


def store_backed_dispatch(
    dataset: Optional[Dataset],
    cluster: SimulatedCluster,
    store_dir: Union[str, Path],
    scheme: str = "round_robin",
    block_size: int = 2048,
    memory_budget_bytes: int = 0,
    costs: Optional[LoadCostModel] = None,
) -> Tuple[ColumnShardStore, List[ShardWorksetStore], Dict[int, int], LoadReport]:
    """The store-backed twin of ``dispatch_block_based``.

    Writes the store out-of-core if the directory has none (requires
    ``dataset``), validates the manifest against the job otherwise,
    charges the identical simulated load cost via :class:`StoreModel`,
    and returns lazy shard-backed worker stores.
    """
    if ColumnShardStore.exists(store_dir):
        store = ColumnShardStore.open(store_dir)
        _check_manifest(store.manifest, dataset, cluster, scheme, block_size)
    else:
        if dataset is None:
            raise ConfigurationError(
                "no store at {} and no dataset to shuffle into one".format(store_dir)
            )
        store = ColumnShardStore.from_dataset(
            dataset,
            store_dir,
            n_workers=cluster.n_workers,
            scheme=scheme,
            block_size=block_size,
            memory_budget_bytes=memory_budget_bytes,
        )
    report = store.store_model().charge_load(cluster, costs=costs)
    stores = [
        store.worker_store(w, cache_budget_bytes=memory_budget_bytes)
        for w in range(cluster.n_workers)
    ]
    return store, stores, store.block_sizes(), report


def _check_manifest(
    manifest: StoreManifest,
    dataset: Optional[Dataset],
    cluster: SimulatedCluster,
    scheme: str,
    block_size: int,
) -> None:
    """An existing store must match the job it is loaded into."""
    if manifest.n_workers != cluster.n_workers:
        raise ConfigurationError(
            "store was sharded for {} worker(s); cluster has {}".format(
                manifest.n_workers, cluster.n_workers
            )
        )
    if manifest.scheme != scheme:
        raise ConfigurationError(
            "store uses scheme {!r}; config says {!r}".format(manifest.scheme, scheme)
        )
    if manifest.block_size != block_size:
        raise ConfigurationError(
            "store uses block_size {}; config says {}".format(
                manifest.block_size, block_size
            )
        )
    if dataset is not None and (
        manifest.n_rows != dataset.n_rows
        or manifest.n_features != dataset.n_features
        or manifest.nnz != dataset.nnz
    ):
        raise ConfigurationError(
            "store shape ({} rows, {} features, {} nnz) does not match the "
            "dataset ({} rows, {} features, {} nnz)".format(
                manifest.n_rows,
                manifest.n_features,
                manifest.nnz,
                dataset.n_rows,
                dataset.n_features,
                dataset.nnz,
            )
        )
