"""mmap-backed shard readers and the lazy shard-backed workset store.

Reads are zero-copy at the I/O boundary: a shard file is mapped once
(``mmap.ACCESS_READ``) and every record is a :class:`memoryview` slice
of the mapping, decoded straight off the page cache with
``np.frombuffer`` views — no ``read()`` into intermediate buffers, no
densification (lint rule R019 enforces both for this package).  The
only copies are the codec's documented index widenings (i4 on disk →
int64 in-memory CSR), paid once per cache miss.

:class:`ShardWorksetStore` is the out-of-core drop-in for
:class:`~repro.partition.workset.WorksetStore`: it answers every
metadata query (block sizes, nnz, stored bytes) from the footer tables
without touching record data, opens the mmap lazily on the first
workset fetch, and keeps decoded worksets in a budgeted
:class:`~repro.store.cache.LRUBlockCache`.  Laziness is the
local-backend integration contract — the driver process builds these
stores without mapping a single data byte, so forked/spawned workers
each open their *own* shard view instead of inheriting a parent copy.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import DataError, PartitionError
from repro.linalg import CSRMatrix
from repro.partition.workset import Workset, WorksetStore
from repro.store.cache import LRUBlockCache, STORE_LEDGER, StoreLedger
from repro.store.format import (
    HEADER_BYTES,
    KIND_SHARD,
    KIND_SIDECAR,
    StoreHeader,
    check_sizes,
)
from repro.storage.serialization import (
    CSRBlockPayload,
    DenseVectorPayload,
    decode_payload,
    workset_bytes,
)


class ShardIndex:
    """Parsed header + footer table of one store file (no data reads).

    Loading an index touches only the 64-byte header and the footer —
    a few hundred bytes — so the master can hold every shard's metadata
    without paging any record data.  The table is an int64 array of
    shape ``(n_blocks, fields)`` in footer row order (block ids dense
    from 0).
    """

    __slots__ = ("path", "header", "table")

    def __init__(self, path: Path, header: StoreHeader, table: np.ndarray):
        self.path = path
        self.header = header
        self.table = table

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardIndex":
        path = Path(path)
        with open(path, "rb") as handle:
            header = StoreHeader.unpack(handle.read(HEADER_BYTES))
            check_sizes(header, path.stat().st_size)
            handle.seek(header.footer_offset)
            footer = decode_payload(handle.read(header.footer_length))
        table = footer.values.reshape(header.n_blocks, header.footer_fields)
        return cls(path, header, table)

    @property
    def n_blocks(self) -> int:
        return self.header.n_blocks

    def offset(self, block_id: int) -> int:
        return int(self.table[block_id, 0])

    def length(self, block_id: int) -> int:
        return int(self.table[block_id, 1])

    def n_rows(self, block_id: int) -> int:
        return int(self.table[block_id, 2])

    def nnz(self, block_id: int) -> int:
        """Stored non-zeros of one record (shard files only)."""
        if self.header.kind != KIND_SHARD:
            raise DataError("sidecar footers carry no nnz column")
        return int(self.table[block_id, 3])


class ShardReader:
    """One mmap'ed store file with zero-copy record access."""

    def __init__(self, index: ShardIndex):
        self.index = index
        self._handle = open(index.path, "rb")
        self._mm = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._mm)

    @classmethod
    def open(cls, path: Union[str, Path]) -> "ShardReader":
        return cls(ShardIndex.load(path))

    def record(self, block_id: int) -> memoryview:
        """Zero-copy view of one record's bytes."""
        if not 0 <= block_id < self.index.n_blocks:
            raise DataError(
                "block {} out of range [0, {})".format(block_id, self.index.n_blocks)
            )
        start = self.index.offset(block_id)
        return self._view[start:start + self.index.length(block_id)]

    def csr_block(self, block_id: int) -> CSRBlockPayload:
        """Decode one shard record (shard files only)."""
        payload = decode_payload(self.record(block_id))
        if not isinstance(payload, CSRBlockPayload):
            raise DataError(
                "record {} is not a CSR block (sidecar file?)".format(block_id)
            )
        return payload

    def labels(self, block_id: int) -> np.ndarray:
        """Decode one sidecar record (sidecar files only)."""
        payload = decode_payload(self.record(block_id))
        if not isinstance(payload, DenseVectorPayload):
            raise DataError(
                "record {} is not a label vector (shard file?)".format(block_id)
            )
        return payload.values

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ShardWorksetStore(WorksetStore):
    """A :class:`WorksetStore` whose worksets live in a shard file.

    Construction takes only paths + footer indexes (cheap, picklable);
    the mmap opens on the first :meth:`get`.  Decoded worksets are
    cached under an LRU byte budget; every miss charges the fetched
    record bytes (shard + sidecar) to the cache counters and the
    process-wide :data:`~repro.store.cache.STORE_LEDGER`.
    """

    def __init__(
        self,
        worker_id: int,
        local_dim: int,
        shard_index: ShardIndex,
        sidecar_index: ShardIndex,
        cache_budget_bytes: int = 0,
        ledger: Optional[StoreLedger] = None,
    ):
        super().__init__(worker_id, local_dim)
        if shard_index.header.kind != KIND_SHARD:
            raise DataError("shard_index does not describe a shard file")
        if sidecar_index.header.kind != KIND_SIDECAR:
            raise DataError("sidecar_index does not describe a sidecar file")
        if shard_index.n_blocks != sidecar_index.n_blocks:
            raise DataError(
                "shard has {} block(s) but sidecar has {}".format(
                    shard_index.n_blocks, sidecar_index.n_blocks
                )
            )
        self._shard_index = shard_index
        self._sidecar_index = sidecar_index
        self._cache_budget_bytes = int(cache_budget_bytes)
        self._cache = LRUBlockCache(self._cache_budget_bytes)
        self._ledger = ledger if ledger is not None else STORE_LEDGER
        self._reader: Optional[ShardReader] = None
        self._sidecar_reader: Optional[ShardReader] = None

    # ------------------------------------------------------------------
    # the out-of-core fetch path
    # ------------------------------------------------------------------
    def _open_readers(self) -> None:
        if self._reader is None:
            self._reader = ShardReader(self._shard_index)
        if self._sidecar_reader is None:
            self._sidecar_reader = ShardReader(self._sidecar_index)

    def get(self, block_id: int) -> Workset:
        if not 0 <= block_id < self._shard_index.n_blocks:
            raise PartitionError(
                "worker {} has no workset for block {}".format(
                    self.worker_id, block_id
                )
            )
        cached = self._cache.get(block_id)
        if cached is not None:
            return cached
        self._open_readers()
        payload = self._reader.csr_block(block_id)
        labels = self._sidecar_reader.labels(block_id)
        workset = Workset(
            block_id,
            CSRMatrix(
                payload.indptr, payload.indices, payload.data, self.local_dim
            ),
            labels,
        )
        fetched = self._shard_index.length(block_id) + self._sidecar_index.length(
            block_id
        )
        self._cache.counters.bytes_read += fetched
        self._ledger.charge_read(self.worker_id, fetched)
        self._cache.put(block_id, workset, weight=workset.serialized_bytes())
        return workset

    # ------------------------------------------------------------------
    # metadata answered from footers, no data I/O
    # ------------------------------------------------------------------
    def put(self, workset: Workset) -> None:
        raise PartitionError(
            "shard-backed stores are read-only; write through ShuffleWriter"
        )

    def block_ids(self) -> list:
        return list(range(self._shard_index.n_blocks))

    def block_sizes(self) -> Dict[int, int]:
        return {
            b: self._shard_index.n_rows(b)
            for b in range(self._shard_index.n_blocks)
        }

    @property
    def n_rows(self) -> int:
        return int(self._shard_index.table[:, 2].sum())

    @property
    def nnz(self) -> int:
        return int(self._shard_index.table[:, 3].sum())

    def stored_bytes(self) -> int:
        """Byte-model footprint of the full shard, as if resident.

        Matches the in-memory store's answer exactly (``workset_bytes``
        per block), so the driver's Table-I memory shape is unchanged
        by where the shard physically lives.
        """
        return sum(
            workset_bytes(self._shard_index.n_rows(b), self._shard_index.nnz(b))
            for b in range(self._shard_index.n_blocks)
        )

    def cache_stats(self) -> Dict[str, int]:
        stats = self._cache.counters.as_dict()
        stats["resident_bytes"] = self._cache.resident_bytes
        return stats

    def clear(self) -> None:
        """Drop the cache and close the file views."""
        self._cache.clear()
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sidecar_reader is not None:
            self._sidecar_reader.close()
            self._sidecar_reader = None

    # ------------------------------------------------------------------
    # spawn/fork safety: file views never cross process boundaries
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_reader"] = None
        state["_sidecar_reader"] = None
        state["_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache = LRUBlockCache(self._cache_budget_bytes)
