"""Exception hierarchy for the ColumnSGD reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
data handling, partitioning, the cluster simulator, and training.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DataError(ReproError):
    """Raised for malformed datasets or inconsistent dataset arguments."""


class LibsvmFormatError(DataError):
    """Raised when a LIBSVM text line cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        self.line_number = line_number
        self.line = line
        self.reason = reason
        super().__init__(
            "bad LIBSVM record at line {}: {} ({!r})".format(line_number, reason, line[:80])
        )


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid user-facing configuration (bad ids, ranges,
    mutually inconsistent knobs).

    Subclasses :class:`ValueError` so call sites that predate the typed
    hierarchy keep working.
    """


class PartitionError(ReproError):
    """Raised for invalid partitioning requests (bad worker counts, ...)."""


class DimensionMismatchError(ReproError):
    """Raised when vector/matrix shapes disagree."""

    def __init__(self, expected, actual, what: str = "dimension"):
        self.expected = expected
        self.actual = actual
        super().__init__("{} mismatch: expected {}, got {}".format(what, expected, actual))


class SimulationError(ReproError):
    """Raised by the cluster simulator for protocol violations."""


class WorkerFailedError(SimulationError):
    """Raised when an operation targets a worker that has failed."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        super().__init__("worker {} has failed".format(worker_id))


class MasterFailedError(SimulationError):
    """Raised when the master fails; the whole job must restart."""


class WorkerUnresponsiveError(SimulationError):
    """Raised by the local backend when worker processes died or stayed
    silent past every retry deadline of an exchange.

    ``dead`` lists workers whose host process was gone (EOF/SIGKILL),
    ``silent`` those that simply never answered in time.  Executors
    running the recovery pipeline catch structured
    ``Exchange.failures`` instead; this error is the loud path for
    callers (``barrier``, plain ``run_all``) without one.
    """

    def __init__(self, op: str, dead=(), silent=()):
        self.op = op
        self.dead = tuple(dead)
        self.silent = tuple(silent)
        parts = []
        if self.dead:
            parts.append("dead worker(s) {}".format(list(self.dead)))
        if self.silent:
            parts.append("silent worker(s) {}".format(list(self.silent)))
        super().__init__(
            "op {!r} lost contact with {}".format(
                op, "; ".join(parts) or "workers"
            )
        )


class OutOfMemoryError(SimulationError):
    """Raised when a simulated node exceeds its memory budget.

    Mirrors the MXNet OOM observed in the paper's Table V at FM F=50.
    """

    def __init__(self, node: str, required_bytes: int, capacity_bytes: int):
        self.node = node
        self.required_bytes = required_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            "{} out of memory: needs {:.2f} GB but has {:.2f} GB".format(
                node, required_bytes / 1e9, capacity_bytes / 1e9
            )
        )


class ProtocolViolationError(SimulationError):
    """Raised by :class:`repro.net.protocol.ProtocolChecker` when a run
    breaks a BSP invariant (unanswered push, message crossing a barrier,
    clock regression, or bytes diverging from the cost model)."""

    def __init__(self, iteration, problems):
        self.iteration = iteration
        self.problems = tuple(problems)
        super().__init__(
            "BSP protocol violated at iteration {}: {}".format(
                iteration, "; ".join(self.problems)
            )
        )


class EffectRaceError(SimulationError):
    """Raised by the engine's ``check_effects`` vector-clock checker
    when two phases the spec's ``after=`` DAG leaves unordered touched
    conflicting state in the same round (write/read or write/write on
    the same attribute atom) — the dynamic twin of lint rule R012."""

    def __init__(self, iteration, problems):
        self.iteration = iteration
        self.problems = tuple(problems)
        super().__init__(
            "phase effect race at iteration {}: {}".format(
                iteration, "; ".join(self.problems)
            )
        )


class CostDriftError(SimulationError):
    """Raised by the engine's ``check_cost`` kernel audit when the work
    the linalg kernels actually performed in a round (op counters:
    flops + allocated elements) exceeds the work volume the round
    *charged* through ``sparse_work``/``dense_work`` by more than a
    constant factor — the dynamic twin of lint rule R016.  A trainer
    that densifies a gradient or loops over ``dim`` instead of ``nnz``
    trips this long before it shows up in reproduced figures."""

    def __init__(self, iteration, problems):
        self.iteration = iteration
        self.problems = tuple(problems)
        super().__init__(
            "kernel cost drift at iteration {}: {}".format(
                iteration, "; ".join(self.problems)
            )
        )


class StatisticsRecoveryError(SimulationError):
    """Raised when backup computation cannot recover complete statistics.

    Happens when every worker in some backup group straggled or failed, so
    at least one group contributed no statistics at all.
    """

    def __init__(self, missing_groups):
        self.missing_groups = tuple(missing_groups)
        super().__init__(
            "cannot recover statistics: no survivor in backup group(s) {}".format(
                list(self.missing_groups)
            )
        )


class TrainingError(ReproError):
    """Raised for invalid training configurations or diverged runs."""


class ConvergenceError(TrainingError):
    """Raised when the optimizer produced non-finite loss or parameters."""

    def __init__(self, iteration: int, loss: float):
        self.iteration = iteration
        self.loss = loss
        super().__init__(
            "training diverged at iteration {} (loss={!r}); lower the learning rate".format(
                iteration, loss
            )
        )
