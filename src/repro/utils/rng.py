"""Seeded random-number-generator helpers.

All stochastic components of the library (samplers, synthetic data,
stragglers, failure injection) take either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise between the two
and derive independent child generators deterministically, so a whole
simulated cluster run is reproducible from one seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def rng_from_seed(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an ``int``, or an existing
    generator (returned unchanged, so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent and stable across runs.  When ``seed`` is an
    existing generator, children are seeded from draws of that generator
    (still deterministic given the generator's state).
    """
    if count < 0:
        raise ValueError("count must be >= 0, got {}".format(count))
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iteration_seed(base_seed: int, iteration: int) -> int:
    """Deterministic per-iteration seed shared by master and all workers.

    ColumnSGD's two-phase sampling requires every worker to draw the *same*
    (block id, offset) pairs in an iteration without communicating.  The
    paper uses "the same random seed (e.g., the current iteration number)";
    we mix the iteration into the base seed with SplitMix64 so nearby
    iterations do not produce correlated streams.
    """
    x = (base_seed + 0x9E3779B97F4A7C15 * (iteration + 1)) % 2**64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 % 2**64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB % 2**64
    x = x ^ (x >> 31)
    return int(x % 2**63)
