"""Shared utilities: seeded RNG helpers, validation, and formatting."""

from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
)
from repro.utils.format import format_bytes, format_duration, ascii_table

__all__ = [
    "rng_from_seed",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "format_bytes",
    "format_duration",
    "ascii_table",
]
