"""Human-readable formatting for benchmark and experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary-ish unit ladder (``1.5 GB``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return "{:.0f} {}".format(value, unit)
            return "{:.2f} {}".format(value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Format a duration adaptively: ``120 us``, ``35.0 ms``, ``2.50 s``, ``3m12s``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return "{:.0f} us".format(seconds * 1e6)
    if seconds < 1.0:
        return "{:.1f} ms".format(seconds * 1e3)
    if seconds < 180.0:
        return "{:.2f} s".format(seconds)
    minutes, secs = divmod(int(round(seconds)), 60)
    return "{}m{:02d}s".format(minutes, secs)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a simple aligned ASCII table used by all bench reports."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                "row has {} cells but table has {} headers".format(len(row), len(str_headers))
            )
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    divider = "-+-".join("-" * w for w in widths)
    lines = [render(str_headers), divider]
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)
