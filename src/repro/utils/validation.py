"""Small argument-validation helpers used across the library.

They raise ``ValueError`` with consistent messages, keeping call sites to a
single readable line (``check_positive(batch_size, "batch_size")``).
"""

from __future__ import annotations

import math
from typing import Iterable


def check_positive(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    if not _is_finite_number(value) or value <= 0:
        raise ValueError("{} must be a positive number, got {!r}".format(name, value))


def check_non_negative(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    if not _is_finite_number(value) or value < 0:
        raise ValueError("{} must be a non-negative number, got {!r}".format(name, value))


def check_probability(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not _is_finite_number(value) or not 0.0 <= value <= 1.0:
        raise ValueError("{} must lie in [0, 1], got {!r}".format(name, value))


def check_in(value, allowed: Iterable, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError("{} must be one of {}, got {!r}".format(name, list(allowed), value))


def _is_finite_number(value) -> bool:
    if isinstance(value, bool):
        return False
    if not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)
