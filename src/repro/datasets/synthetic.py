"""Synthetic sparse dataset generators with planted ground truth.

Each generator draws a ground-truth model ``w*`` and sparse feature rows,
then labels examples from the model (with configurable label noise), so
SGD runs on these datasets show genuine convergence — the property the
paper's Figures 4, 8 and 13 depend on.

Feature sparsity follows the power-law popularity typical of the paper's
CTR datasets (avazu/kddb/kdd12): a small set of hot features appears in
most rows while the long tail is rare.  A Zipf exponent of 0 recovers
uniform feature sampling.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.linalg import CSRMatrix
from repro.linalg.ops import row_dots
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive, check_probability


def _feature_distribution(n_features: int, zipf_exponent: float, rng) -> np.ndarray:
    """Popularity distribution over features (descending, shuffled)."""
    if zipf_exponent <= 0.0:
        return np.full(n_features, 1.0 / n_features)
    ranks = np.arange(1, n_features + 1, dtype=np.float64)
    weights = ranks ** (-zipf_exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _sample_rows(
    n_rows: int,
    n_features: int,
    nnz_per_row: int,
    zipf_exponent: float,
    binary_features: bool,
    rng,
) -> CSRMatrix:
    """Draw a sparse design matrix with ~``nnz_per_row`` entries per row."""
    probs = _feature_distribution(n_features, zipf_exponent, rng)
    # Precompute the CDF once; per-draw sampling is then one searchsorted,
    # which keeps the per-row duplicate-retry loop cheap even for skewed
    # (Zipf) popularity where collisions are common.
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0

    def draw(count):
        return np.searchsorted(cdf, rng.random(count), side="right")

    lengths = np.maximum(1, rng.poisson(nnz_per_row, size=n_rows))
    lengths = np.minimum(lengths, n_features)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    total = int(indptr[-1])
    all_indices = np.empty(total, dtype=np.int64)
    # Draw in one bulk pass, then dedupe per row (rows are short).
    draws = draw(total)
    cursor = 0
    for i in range(n_rows):
        want = int(lengths[i])
        row = np.unique(draws[cursor:cursor + want])
        cursor += want
        while row.size < want:
            extra = draw(2 * (want - row.size))
            row = np.unique(np.concatenate([row, extra]))
        all_indices[indptr[i]:indptr[i] + want] = row[:want]
    if binary_features:
        data = np.ones(total, dtype=np.float64)
    else:
        data = rng.normal(0.0, 1.0, size=total)
        data[data == 0.0] = 1.0
    return CSRMatrix(indptr, all_indices, data, n_features)


def _planted_model(n_features: int, model_scale: float, rng) -> np.ndarray:
    return rng.normal(0.0, model_scale, size=n_features)


def make_classification(
    n_rows: int,
    n_features: int,
    nnz_per_row: int = 20,
    zipf_exponent: float = 1.1,
    binary_features: bool = True,
    label_noise: float = 0.05,
    model_scale: float = 1.0,
    seed=None,
    name: str = "synthetic-binary",
) -> Dataset:
    """Sparse binary classification with labels in {-1, +1}.

    Labels are ``sign(x . w*)`` flipped with probability ``label_noise``.
    ``binary_features=True`` mimics one-hot CTR data (avazu/kddb/kdd12);
    ``False`` draws Gaussian feature values.
    """
    check_positive(n_rows, "n_rows")
    check_positive(n_features, "n_features")
    check_positive(nnz_per_row, "nnz_per_row")
    check_probability(label_noise, "label_noise")
    rng = rng_from_seed(seed)
    features = _sample_rows(n_rows, n_features, nnz_per_row, zipf_exponent, binary_features, rng)
    truth = _planted_model(n_features, model_scale, rng)
    margins = row_dots(features, truth)
    labels = np.where(margins >= 0.0, 1.0, -1.0)
    flips = rng.random(n_rows) < label_noise
    labels[flips] *= -1.0
    return Dataset(features, labels, name=name)


def make_regression(
    n_rows: int,
    n_features: int,
    nnz_per_row: int = 20,
    zipf_exponent: float = 1.1,
    noise_std: float = 0.1,
    model_scale: float = 1.0,
    seed=None,
    name: str = "synthetic-regression",
) -> Dataset:
    """Sparse regression: ``y = x . w* + N(0, noise_std)``."""
    check_positive(n_rows, "n_rows")
    check_positive(n_features, "n_features")
    check_positive(nnz_per_row, "nnz_per_row")
    rng = rng_from_seed(seed)
    features = _sample_rows(n_rows, n_features, nnz_per_row, zipf_exponent, False, rng)
    truth = _planted_model(n_features, model_scale, rng)
    labels = row_dots(features, truth) + rng.normal(0.0, noise_std, size=n_rows)
    return Dataset(features, labels, name=name)


def make_multiclass(
    n_rows: int,
    n_features: int,
    n_classes: int,
    nnz_per_row: int = 20,
    zipf_exponent: float = 1.1,
    label_noise: float = 0.05,
    seed=None,
    name: str = "synthetic-multiclass",
) -> Dataset:
    """Sparse multiclass data with labels in {0, ..., n_classes-1}.

    Labels are argmax over per-class planted models, with a
    ``label_noise`` chance of resampling uniformly.
    """
    check_positive(n_rows, "n_rows")
    check_positive(n_features, "n_features")
    check_positive(n_classes, "n_classes")
    check_probability(label_noise, "label_noise")
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2, got {}".format(n_classes))
    rng = rng_from_seed(seed)
    features = _sample_rows(n_rows, n_features, nnz_per_row, zipf_exponent, True, rng)
    truth = rng.normal(0.0, 1.0, size=(n_features, n_classes))
    scores = np.column_stack([row_dots(features, truth[:, k]) for k in range(n_classes)])
    labels = scores.argmax(axis=1).astype(np.float64)
    flips = rng.random(n_rows) < label_noise
    labels[flips] = rng.integers(0, n_classes, size=int(flips.sum()))
    return Dataset(features, labels, name=name)
