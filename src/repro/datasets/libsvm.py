"""LIBSVM text format reader/writer.

The format the paper's public datasets ship in: one example per line,

    <label> <index>:<value> <index>:<value> ...

with 1-based or 0-based indices (auto-detected on read; LIBSVM upstream is
1-based).  Comments after ``#`` are ignored, as in the reference tools.

Paths ending in ``.gz`` are read and written through gzip transparently —
the public datasets distribute compressed, and streaming consumers
(:func:`iter_libsvm`, the store's out-of-core shuffle) decompress on the
fly without an intermediate plain-text copy.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import LibsvmFormatError
from repro.linalg import CSRMatrix, SparseVector

PathOrStream = Union[str, Path, io.TextIOBase]


def _open_text(path: Union[str, Path], mode: str):
    """Open a LIBSVM path for text I/O, decompressing ``.gz`` on the fly."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_libsvm(source: PathOrStream) -> Iterator[Tuple[float, np.ndarray, np.ndarray]]:
    """Yield ``(label, indices, values)`` per line, indices as given in the file.

    Raises :class:`LibsvmFormatError` on malformed records.  Blank lines
    are skipped.
    """
    close = False
    if isinstance(source, (str, Path)):
        stream = _open_text(source, "r")
        close = True
    else:
        stream = source
    try:
        for line_no, raw in enumerate(stream, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                label = float(parts[0])
            except ValueError:
                raise LibsvmFormatError(line_no, raw, "label is not a number") from None
            indices = np.empty(len(parts) - 1, dtype=np.int64)
            values = np.empty(len(parts) - 1, dtype=np.float64)
            for j, token in enumerate(parts[1:]):
                idx_str, sep, val_str = token.partition(":")
                if not sep:
                    raise LibsvmFormatError(line_no, raw, "feature token missing ':'")
                try:
                    indices[j] = int(idx_str)
                    values[j] = float(val_str)
                except ValueError:
                    raise LibsvmFormatError(
                        line_no, raw, "bad feature token {!r}".format(token)
                    ) from None
            if indices.size and np.any(indices < 0):
                raise LibsvmFormatError(line_no, raw, "negative feature index")
            yield label, indices, values
    finally:
        if close:
            stream.close()


def read_libsvm(
    source: PathOrStream,
    n_features: Optional[int] = None,
    zero_based: bool = None,
    name: str = "libsvm",
) -> Dataset:
    """Read a whole LIBSVM file into a :class:`Dataset`.

    Parameters
    ----------
    n_features:
        Model dimension; inferred as ``max index + 1`` when omitted.
    zero_based:
        Index convention.  When ``None`` it is auto-detected: a file whose
        minimum index is 0 is treated as zero-based, otherwise indices are
        shifted down by one (LIBSVM's 1-based convention).
    """
    labels = []
    rows = []
    min_index = None
    max_index = -1
    for label, indices, values in iter_libsvm(source):
        labels.append(label)
        rows.append((indices, values))
        if indices.size:
            low = int(indices.min())
            min_index = low if min_index is None else min(min_index, low)
            max_index = max(max_index, int(indices.max()))

    if zero_based is None:
        zero_based = min_index == 0 if min_index is not None else True
    shift = 0 if zero_based else 1
    inferred_dim = max_index + 1 - shift if max_index >= 0 else 0
    dim = n_features if n_features is not None else max(inferred_dim, 0)
    if dim < inferred_dim:
        raise ValueError(
            "n_features={} is smaller than max index {} in file".format(dim, inferred_dim - 1)
        )

    vectors = [SparseVector(idx - shift, val, dim) for idx, val in rows]
    features = (
        CSRMatrix.from_rows(vectors, n_cols=dim)
        if vectors
        else CSRMatrix.empty(0, dim)
    )
    return Dataset(features, np.asarray(labels, dtype=np.float64), name=name)


def write_libsvm(dataset: Dataset, target: PathOrStream, zero_based: bool = False) -> None:
    """Write a dataset in LIBSVM text format (1-based indices by default)."""
    close = False
    if isinstance(target, (str, Path)):
        stream = _open_text(target, "w")
        close = True
    else:
        stream = target
    shift = 0 if zero_based else 1
    try:
        for i in range(dataset.n_rows):
            row = dataset.features.row(i)
            tokens = ["{:g}".format(dataset.labels[i])]
            tokens.extend(
                "{}:{:g}".format(int(idx) + shift, val) for idx, val in row.items()
            )
            stream.write(" ".join(tokens))
            stream.write("\n")
    finally:
        if close:
            stream.close()
