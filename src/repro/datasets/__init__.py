"""Datasets: container type, LIBSVM text IO, synthetic generators, profiles.

The paper evaluates on avazu, kddb, kdd12, criteo and the proprietary WX
dataset (Table II).  We ship scaled-down synthetic *profiles* of each —
generators that match the dataset's dimensionality ratios and sparsity and
plant a ground-truth model so losses genuinely decrease — plus a real
LIBSVM reader for users who have the original files.
"""

from repro.datasets.dataset import Dataset, DatasetStats
from repro.datasets.libsvm import read_libsvm, write_libsvm, iter_libsvm
from repro.datasets.synthetic import (
    make_classification,
    make_regression,
    make_multiclass,
)
from repro.datasets.profiles import DatasetProfile, PROFILES, load_profile
from repro.datasets.analysis import describe, DatasetReport

__all__ = [
    "Dataset",
    "DatasetStats",
    "read_libsvm",
    "write_libsvm",
    "iter_libsvm",
    "make_classification",
    "make_regression",
    "make_multiclass",
    "DatasetProfile",
    "PROFILES",
    "load_profile",
    "describe",
    "DatasetReport",
]
