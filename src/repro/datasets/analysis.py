"""Dataset inspection utilities.

Quick structural summaries a practitioner checks before training:
feature popularity (the Zipf skew driving partition balance), row
length distribution (batch compute variance), and label balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.datasets.dataset import Dataset
from repro.utils.format import ascii_table


def feature_frequencies(dataset: Dataset) -> np.ndarray:
    """Occurrences of each feature across rows (length ``n_features``)."""
    return np.bincount(dataset.features.indices, minlength=dataset.n_features)


def label_distribution(dataset: Dataset) -> Dict[float, int]:
    """Counts per distinct label value."""
    values, counts = np.unique(dataset.labels, return_counts=True)
    return {float(v): int(c) for v, c in zip(values, counts)}


def row_length_stats(dataset: Dataset) -> Dict[str, float]:
    """min/mean/median/max of non-zeros per row."""
    lengths = dataset.features.row_nnz()
    if lengths.size == 0:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "min": float(lengths.min()),
        "mean": float(lengths.mean()),
        "median": float(np.median(lengths)),
        "max": float(lengths.max()),
    }


def popularity_skew(dataset: Dataset, head_fraction: float = 0.01) -> float:
    """Share of all non-zeros held by the hottest ``head_fraction`` of
    features — near ``head_fraction`` for uniform data, near 1.0 for
    heavily skewed CTR data."""
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError("head_fraction must lie in (0, 1]")
    freq = np.sort(feature_frequencies(dataset))[::-1]
    head = max(1, int(round(freq.size * head_fraction)))
    total = freq.sum()
    return float(freq[:head].sum() / total) if total else 0.0


@dataclass(frozen=True)
class DatasetReport:
    """Bundle of the summaries above."""

    name: str
    n_rows: int
    n_features: int
    nnz: int
    sparsity: float
    labels: Dict[float, int]
    row_lengths: Dict[str, float]
    head1pct_share: float

    def render(self) -> str:
        """Multi-line ASCII report."""
        rows = [
            ("rows", "{:,}".format(self.n_rows)),
            ("features", "{:,}".format(self.n_features)),
            ("nnz", "{:,}".format(self.nnz)),
            ("sparsity", "{:.6f}".format(self.sparsity)),
            ("labels", ", ".join(
                "{:g}: {:,}".format(v, c) for v, c in sorted(self.labels.items())
            )),
            ("nnz/row", "min {min:.0f} / mean {mean:.1f} / median {median:.0f} "
                        "/ max {max:.0f}".format(**self.row_lengths)),
            ("hottest 1% of features hold", "{:.1%} of non-zeros".format(
                self.head1pct_share)),
        ]
        return "dataset {!r}\n{}".format(self.name, ascii_table(["property", "value"], rows))


def describe(dataset: Dataset) -> DatasetReport:
    """Compute the full report for a dataset."""
    return DatasetReport(
        name=dataset.name,
        n_rows=dataset.n_rows,
        n_features=dataset.n_features,
        nnz=dataset.nnz,
        sparsity=dataset.sparsity(),
        labels=label_distribution(dataset),
        row_lengths=row_length_stats(dataset),
        head1pct_share=popularity_skew(dataset, 0.01),
    )
