"""The :class:`Dataset` container: labels + CSR features + statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.linalg import CSRMatrix
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics in the shape of the paper's Table II."""

    name: str
    n_instances: int
    n_features: int
    nnz: int
    sparsity: float  # fraction of *zero* cells, the paper's rho
    size_bytes: int  # LIBSVM-text footprint estimate

    def as_row(self) -> tuple:
        """Row for a Table II style report."""
        return (
            self.name,
            "{:,}".format(self.n_instances),
            "{:,}".format(self.n_features),
            "{:,}".format(self.nnz),
            "{:.6f}".format(self.sparsity),
            "{:.1f} MB".format(self.size_bytes / 1e6),
        )


class Dataset:
    """Labelled sparse dataset: ``features`` is CSR, ``labels`` is float64.

    Binary classification uses labels in {-1, +1}; multiclass uses
    {0, ..., K-1}; regression uses arbitrary floats.  The class is
    deliberately dumb storage — all distribution logic lives in
    :mod:`repro.partition` and :mod:`repro.storage`.
    """

    def __init__(self, features: CSRMatrix, labels, name: str = "dataset"):
        labels = np.asarray(labels, dtype=np.float64)
        if labels.ndim != 1:
            raise DataError("labels must be 1-D")
        if labels.size != features.n_rows:
            raise DataError(
                "got {} labels for {} rows".format(labels.size, features.n_rows)
            )
        self.features = features
        self.labels = labels
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of examples."""
        return self.features.n_rows

    @property
    def n_features(self) -> int:
        """Number of feature columns (the model dimension ``m``)."""
        return self.features.n_cols

    @property
    def nnz(self) -> int:
        """Stored non-zeros in the feature matrix."""
        return self.features.nnz

    def sparsity(self) -> float:
        """Fraction of zero cells — the paper's ``rho``."""
        return 1.0 - self.features.density()

    def stats(self) -> DatasetStats:
        """Table II style statistics (size estimated as LIBSVM text)."""
        # label (~3 bytes) + per-nnz "index:value " (~12 bytes) + newline
        size = self.n_rows * 4 + self.nnz * 12
        return DatasetStats(
            name=self.name,
            n_instances=self.n_rows,
            n_features=self.n_features,
            nnz=self.nnz,
            sparsity=self.sparsity(),
            size_bytes=size,
        )

    # ------------------------------------------------------------------
    def take(self, row_ids) -> "Dataset":
        """Sub-dataset of the given rows (repetition allowed)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        return Dataset(self.features.take_rows(row_ids), self.labels[row_ids], self.name)

    def slice(self, start: int, stop: int) -> "Dataset":
        """Contiguous row range ``[start, stop)``."""
        return Dataset(self.features.slice_rows(start, stop), self.labels[start:stop], self.name)

    def shuffled(self, seed=None) -> "Dataset":
        """A row-permuted copy (global shuffle)."""
        rng = rng_from_seed(seed)
        order = rng.permutation(self.n_rows)
        return self.take(order)

    def classes(self) -> np.ndarray:
        """Sorted distinct label values."""
        return np.unique(self.labels)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return "Dataset(name={!r}, rows={}, features={}, nnz={})".format(
            self.name, self.n_rows, self.n_features, self.nnz
        )
