"""Scaled-down profiles of the paper's evaluation datasets.

Table II of the paper lists five datasets.  We cannot ship them (size, and
WX is proprietary), so each profile carries two things:

* the *paper-scale* statistics (instances, features, bytes) — used by the
  analytic cost model so per-iteration time predictions are evaluated at
  the paper's true scale, and printed in Table II reports;
* *generator parameters* for a laptop-scale synthetic stand-in with the
  same sparsity structure (features-per-row, power-law feature popularity,
  one-hot values for the CTR datasets) — used wherever real gradients and
  convergence curves are needed.

Learning rates follow the paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import make_classification


@dataclass(frozen=True)
class DatasetProfile:
    """One evaluation dataset: paper-scale stats + scaled generator knobs."""

    name: str
    # --- paper scale (Table II) ---
    paper_instances: int
    paper_features: int
    paper_size_bytes: int
    avg_nnz_per_row: float
    # --- scaled-down generator parameters ---
    scaled_rows: int
    scaled_features: int
    scaled_nnz_per_row: int
    zipf_exponent: float = 1.1
    binary_features: bool = True
    label_noise: float = 0.05
    # --- Table III learning rates, keyed by model name ---
    learning_rates: Dict[str, float] = field(default_factory=dict)

    @property
    def paper_sparsity(self) -> float:
        """Paper-scale fraction of zero cells (rho in the analysis)."""
        return 1.0 - self.avg_nnz_per_row / self.paper_features

    def generate(self, seed=0, rows: Optional[int] = None, features: Optional[int] = None) -> Dataset:
        """Materialise the scaled synthetic stand-in (deterministic per seed)."""
        return make_classification(
            n_rows=rows if rows is not None else self.scaled_rows,
            n_features=features if features is not None else self.scaled_features,
            nnz_per_row=self.scaled_nnz_per_row,
            zipf_exponent=self.zipf_exponent,
            binary_features=self.binary_features,
            label_noise=self.label_noise,
            seed=seed,
            name=self.name,
        )

    def learning_rate(self, model: str) -> float:
        """Table III learning rate for ``model`` ('lr', 'svm', 'fm')."""
        key = model.lower()
        if key not in self.learning_rates:
            raise KeyError(
                "no Table III learning rate for model {!r} on {}".format(model, self.name)
            )
        return self.learning_rates[key]


PROFILES: Dict[str, DatasetProfile] = {
    "avazu": DatasetProfile(
        name="avazu",
        paper_instances=40_428_967,
        paper_features=1_000_000,
        paper_size_bytes=int(7.4e9),
        avg_nnz_per_row=15.0,
        scaled_rows=20_000,
        scaled_features=10_000,
        scaled_nnz_per_row=15,
        learning_rates={"lr": 10.0, "fm": 10.0, "svm": 1.0},
    ),
    "kddb": DatasetProfile(
        name="kddb",
        paper_instances=19_264_097,
        paper_features=29_890_095,
        paper_size_bytes=int(4.8e9),
        avg_nnz_per_row=29.0,
        scaled_rows=10_000,
        scaled_features=200_000,
        scaled_nnz_per_row=29,
        learning_rates={"lr": 10.0, "fm": 10.0, "svm": 1.0},
    ),
    "kdd12": DatasetProfile(
        name="kdd12",
        paper_instances=149_639_105,
        paper_features=54_686_452,
        paper_size_bytes=int(21e9),
        avg_nnz_per_row=11.0,
        scaled_rows=30_000,
        scaled_features=400_000,
        scaled_nnz_per_row=11,
        learning_rates={"lr": 100.0, "fm": 100.0, "svm": 1.0},
    ),
    "criteo": DatasetProfile(
        name="criteo",
        paper_instances=45_840_617,
        paper_features=39,
        paper_size_bytes=int(11e9),
        avg_nnz_per_row=39.0,
        scaled_rows=20_000,
        scaled_features=39,
        scaled_nnz_per_row=39,
        zipf_exponent=0.0,
        binary_features=False,
        learning_rates={"lr": 1.0, "fm": 1.0, "svm": 0.1},
    ),
    "wx": DatasetProfile(
        name="wx",
        paper_instances=69_581_214,
        paper_features=51_121_518,
        paper_size_bytes=int(130e9),
        avg_nnz_per_row=100.0,
        scaled_rows=20_000,
        scaled_features=300_000,
        scaled_nnz_per_row=100,
        learning_rates={"lr": 0.1, "fm": 0.1, "svm": 0.01},
    ),
}


def load_profile(name: str) -> DatasetProfile:
    """Look up a profile by (case-insensitive) dataset name."""
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(
            "unknown dataset profile {!r}; available: {}".format(name, sorted(PROFILES))
        )
    return PROFILES[key]
