"""Binary-classification metrics for labels in {-1, +1}.

Predictions are probabilities of the positive class (what
``LogisticRegression.predict`` and the FM return); threshold-based
metrics cut at 0.5 unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import DataError


def _check_pair(labels, scores) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise DataError(
            "labels {} and predictions {} must be matching 1-D arrays".format(
                labels.shape, scores.shape
            )
        )
    if labels.size == 0:
        raise DataError("cannot score an empty batch")
    if not set(np.unique(labels)) <= {-1.0, 1.0}:
        raise DataError("binary metrics expect labels in {-1, +1}")
    return labels, scores


def accuracy(labels, probabilities, threshold: float = 0.5) -> float:
    """Fraction of correct hard decisions at ``threshold``."""
    labels, probs = _check_pair(labels, probabilities)
    predicted = np.where(probs >= threshold, 1.0, -1.0)
    return float(np.mean(predicted == labels))


def log_loss(labels, probabilities, eps: float = 1e-12) -> float:
    """Mean negative log likelihood of the true labels."""
    labels, probs = _check_pair(labels, probabilities)
    probs = np.clip(probs, eps, 1.0 - eps)
    positive = (labels + 1.0) / 2.0
    return float(-np.mean(positive * np.log(probs) + (1 - positive) * np.log(1 - probs)))


def roc_auc(labels, scores) -> float:
    """Area under the ROC curve via the rank statistic.

    Equivalent to the Mann-Whitney U normalisation; ties get midranks.
    Raises when only one class is present (AUC undefined).
    """
    labels, scores = _check_pair(labels, scores)
    positives = labels > 0
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("roc_auc needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    rank_position = 1.0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (rank_position + (rank_position + (j - i))) / 2.0
        ranks[order[i:j + 1]] = midrank
        rank_position += j - i + 1
        i = j + 1
    rank_sum_pos = float(ranks[positives].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def confusion_counts(labels, probabilities, threshold: float = 0.5) -> Dict[str, int]:
    """``{tp, fp, tn, fn}`` at the given threshold."""
    labels, probs = _check_pair(labels, probabilities)
    predicted = np.where(probs >= threshold, 1.0, -1.0)
    return {
        "tp": int(np.sum((predicted == 1.0) & (labels == 1.0))),
        "fp": int(np.sum((predicted == 1.0) & (labels == -1.0))),
        "tn": int(np.sum((predicted == -1.0) & (labels == -1.0))),
        "fn": int(np.sum((predicted == -1.0) & (labels == 1.0))),
    }


def precision_recall_f1(labels, probabilities, threshold: float = 0.5) -> Dict[str, float]:
    """Precision, recall and F1 of the positive class (0.0 when undefined)."""
    counts = confusion_counts(labels, probabilities, threshold)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
