"""Evaluation metrics and data-splitting utilities.

The paper reports training loss only; a usable library also needs
held-out evaluation.  Metrics are plain functions over (labels,
predictions); :func:`train_test_split` partitions a Dataset; and
:func:`evaluate_classifier` / :func:`evaluate_regressor` bundle the
common report for a trained model.
"""

from repro.metrics.classification import (
    accuracy,
    log_loss,
    roc_auc,
    confusion_counts,
    precision_recall_f1,
)
from repro.metrics.regression import mean_squared_error, rmse, mean_absolute_error, r2_score
from repro.metrics.split import train_test_split, k_fold
from repro.metrics.evaluate import evaluate_classifier, evaluate_regressor
from repro.metrics.cross_validate import cross_validate

__all__ = [
    "accuracy",
    "log_loss",
    "roc_auc",
    "confusion_counts",
    "precision_recall_f1",
    "mean_squared_error",
    "rmse",
    "mean_absolute_error",
    "r2_score",
    "train_test_split",
    "k_fold",
    "evaluate_classifier",
    "evaluate_regressor",
    "cross_validate",
]
