"""K-fold cross-validation over the uniform trainer interface."""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.datasets.dataset import Dataset
from repro.metrics.split import k_fold
from repro.models.base import StatisticsModel


def cross_validate(
    dataset: Dataset,
    train_fn: Callable[[Dataset], np.ndarray],
    model: StatisticsModel,
    score_fn: Callable[[StatisticsModel, np.ndarray, Dataset], Dict[str, float]],
    k: int = 5,
    seed=0,
) -> Dict[str, Dict[str, float]]:
    """Run K-fold CV and aggregate per-metric mean and std.

    Parameters
    ----------
    train_fn:
        ``train_fn(train_split) -> trained params`` — typically a lambda
        closing over a trainer factory, so any of the five systems works.
    model:
        The (stateless) model used for scoring with the trained params.
    score_fn:
        ``score_fn(model, params, validation_split) -> {metric: value}``,
        e.g. :func:`repro.metrics.evaluate_classifier`.

    Returns
    -------
    ``{metric: {"mean": ..., "std": ..., "folds": [...]}}``
    """
    per_metric: Dict[str, List[float]] = {}
    for train_split, validation_split in k_fold(dataset, k=k, seed=seed):
        params = train_fn(train_split)
        scores = score_fn(model, params, validation_split)
        for metric, value in scores.items():
            per_metric.setdefault(metric, []).append(float(value))
    return {
        metric: {
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "folds": values,
        }
        for metric, values in per_metric.items()
    }
