"""Bundled evaluation reports for trained models."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.datasets.dataset import Dataset
from repro.metrics.classification import accuracy, log_loss, roc_auc
from repro.metrics.regression import mean_absolute_error, r2_score, rmse
from repro.models.base import StatisticsModel


def evaluate_classifier(
    model: StatisticsModel, params: np.ndarray, dataset: Dataset
) -> Dict[str, float]:
    """Accuracy / AUC / log-loss of a binary classifier on a dataset.

    ``model.predict`` must return positive-class probabilities (true for
    LR and FM; for SVM use margins with :func:`roc_auc` directly).
    """
    probabilities = model.predict(dataset.features, params)
    return {
        "accuracy": accuracy(dataset.labels, probabilities),
        "auc": roc_auc(dataset.labels, probabilities),
        "log_loss": log_loss(dataset.labels, probabilities),
    }


def evaluate_regressor(
    model: StatisticsModel, params: np.ndarray, dataset: Dataset
) -> Dict[str, float]:
    """RMSE / MAE / R^2 of a regressor on a dataset."""
    predictions = model.predict(dataset.features, params)
    return {
        "rmse": rmse(dataset.labels, predictions),
        "mae": mean_absolute_error(dataset.labels, predictions),
        "r2": r2_score(dataset.labels, predictions),
    }
