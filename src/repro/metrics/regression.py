"""Regression metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _check_pair(labels, predictions):
    labels = np.asarray(labels, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if labels.shape != predictions.shape or labels.ndim != 1:
        raise DataError(
            "labels {} and predictions {} must be matching 1-D arrays".format(
                labels.shape, predictions.shape
            )
        )
    if labels.size == 0:
        raise DataError("cannot score an empty batch")
    return labels, predictions


def mean_squared_error(labels, predictions) -> float:
    """Mean of squared residuals."""
    labels, predictions = _check_pair(labels, predictions)
    return float(np.mean((labels - predictions) ** 2))


def rmse(labels, predictions) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(labels, predictions)))


def mean_absolute_error(labels, predictions) -> float:
    """Mean of absolute residuals."""
    labels, predictions = _check_pair(labels, predictions)
    return float(np.mean(np.abs(labels - predictions)))


def r2_score(labels, predictions) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean
    predictor, negative is worse than the mean predictor."""
    labels, predictions = _check_pair(labels, predictions)
    total = float(np.sum((labels - labels.mean()) ** 2))
    residual = float(np.sum((labels - predictions) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total
