"""Dataset splitting."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.dataset import Dataset
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_probability


def k_fold(dataset: Dataset, k: int = 5, seed=None, shuffle: bool = True):
    """Yield ``k`` ``(train, validation)`` splits covering every row once.

    Folds differ in size by at most one row.  With ``shuffle=True`` the
    assignment is a seeded permutation.
    """
    if k < 2:
        raise ValueError("k must be >= 2, got {}".format(k))
    if dataset.n_rows < k:
        raise ValueError(
            "cannot make {} folds from {} rows".format(k, dataset.n_rows)
        )
    if shuffle:
        order = rng_from_seed(seed).permutation(dataset.n_rows)
    else:
        order = np.arange(dataset.n_rows)
    bounds = np.linspace(0, dataset.n_rows, k + 1).astype(np.int64)
    for fold in range(k):
        val_rows = order[bounds[fold]:bounds[fold + 1]]
        train_rows = np.concatenate(
            [order[: bounds[fold]], order[bounds[fold + 1]:]]
        )
        yield dataset.take(train_rows), dataset.take(val_rows)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed=None, shuffle: bool = True
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into (train, test).

    With ``shuffle=True`` (default) rows are permuted first; both splits
    are guaranteed non-empty as long as the dataset has >= 2 rows.
    """
    check_probability(test_fraction, "test_fraction")
    if dataset.n_rows < 2:
        raise ValueError("need at least 2 rows to split, got {}".format(dataset.n_rows))
    n_test = int(round(dataset.n_rows * test_fraction))
    n_test = min(max(n_test, 1), dataset.n_rows - 1)
    if shuffle:
        order = rng_from_seed(seed).permutation(dataset.n_rows)
    else:
        order = np.arange(dataset.n_rows)
    test_rows = order[:n_test]
    train_rows = order[n_test:]
    return dataset.take(train_rows), dataset.take(test_rows)
