"""Deeper column-partitioned networks: one partitioned embedding layer,
an arbitrary replicated tail.

Generalises :mod:`repro.extensions.mlp` the way production sparse
models are actually built: the *first* layer (m x H1, the only tensor
that scales with the feature dimension) is column-partitioned and
synchronised through one ``B x H1`` statistics round, while the deeper
layers (H1 x H2 x ... x 1, all small) are replicated on every worker
and updated identically from the broadcast pre-activations — zero extra
communication, exactly the paper's Section III-C argument that "the
width of each individual layer in DNN is usually not large in
practice".

Architecture: ``score = tail(tanh(W1^T x + b1))`` where ``tail`` is a
stack of tanh layers ending in a scalar logistic output; labels in
{-1, +1}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.linalg import CSRMatrix, row_dots
from repro.linalg.ops import accumulate_rows
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class DeepColumnMLP:
    """Model math for the deep column-partitioned network.

    ``hidden_sizes = [H1, H2, ...]``: H1 is the partitioned embedding
    width (the statistics width); the rest are replicated tail layers.
    """

    def __init__(self, hidden_sizes: List[int], init_std: float = 0.5):
        if not hidden_sizes:
            raise ValueError("need at least one hidden layer")
        for h in hidden_sizes:
            check_positive(h, "hidden size")
        check_positive(init_std, "init_std")
        self.hidden_sizes = [int(h) for h in hidden_sizes]
        self.init_std = float(init_std)

    @property
    def statistics_width(self) -> int:
        """Values synchronised per example: the first hidden width."""
        return self.hidden_sizes[0]

    # -- initialisation ---------------------------------------------------
    def init_w1(self, n_features: int, seed=None) -> np.ndarray:
        rng = rng_from_seed(seed)
        return rng.normal(0.0, self.init_std, size=(n_features, self.hidden_sizes[0]))

    def init_tail(self, seed=None) -> Dict[str, np.ndarray]:
        """Replicated parameters: per tail layer a weight matrix and
        bias, plus the scalar output head."""
        rng = rng_from_seed(None if seed is None else seed + 1)
        tail: Dict[str, np.ndarray] = {"b1": np.zeros(self.hidden_sizes[0])}
        widths = self.hidden_sizes
        for layer in range(1, len(widths)):
            fan_in = widths[layer - 1]
            tail["W{}".format(layer + 1)] = rng.normal(
                0.0, self.init_std / np.sqrt(fan_in), size=(fan_in, widths[layer])
            )
            tail["b{}".format(layer + 1)] = np.zeros(widths[layer])
        fan_in = widths[-1]
        tail["w_out"] = rng.normal(0.0, self.init_std / np.sqrt(fan_in), size=fan_in)
        tail["b_out"] = np.zeros(1)
        return tail

    # -- forward / backward -------------------------------------------------
    def partial_statistics(self, shard: CSRMatrix, w1_part: np.ndarray) -> np.ndarray:
        """Shard's contribution to ``Z = X W1`` (additive)."""
        return np.column_stack(
            [row_dots(shard, w1_part[:, h]) for h in range(self.hidden_sizes[0])]
        )

    def forward(self, z: np.ndarray, tail: Dict[str, np.ndarray]):
        """Activations per layer and scalar scores, from complete Z."""
        activations = [np.tanh(np.asarray(z) + tail["b1"])]
        for layer in range(2, len(self.hidden_sizes) + 1):
            pre = activations[-1] @ tail["W{}".format(layer)] + tail["b{}".format(layer)]
            activations.append(np.tanh(pre))
        scores = activations[-1] @ tail["w_out"] + tail["b_out"][0]
        return activations, scores

    def loss_from_statistics(self, z, labels, tail) -> float:
        _, scores = self.forward(z, tail)
        margins = np.asarray(labels) * scores
        stable = np.where(
            margins > 0,
            np.log1p(np.exp(-np.abs(margins))),
            -margins + np.log1p(np.exp(-np.abs(margins))),
        )
        return float(np.mean(stable)) if stable.size else 0.0

    def backward(
        self, z: np.ndarray, labels: np.ndarray, tail: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Gradients of the replicated tail and the delta feeding W1.

        Returns ``(tail_grads, delta1)`` where ``delta1`` (B x H1) is
        d(loss)/d(Z): every worker computes the identical values from
        the broadcast Z, then its own ``dW1_k = X_k^T delta1 / B``.
        """
        labels = np.asarray(labels, dtype=np.float64)
        batch = max(labels.size, 1)
        activations, scores = self.forward(z, tail)
        c = -labels * _sigmoid(-labels * scores)  # dl/dscore, logistic

        grads: Dict[str, np.ndarray] = {
            "w_out": activations[-1].T @ c / batch,
            "b_out": np.array([c.sum() / batch]),
        }
        # delta at the top tail activation
        delta = (c[:, None] * tail["w_out"][None, :]) * (1.0 - activations[-1] ** 2)
        for layer in range(len(self.hidden_sizes), 1, -1):
            w_key = "W{}".format(layer)
            grads[w_key] = activations[layer - 2].T @ delta / batch
            grads["b{}".format(layer)] = delta.sum(axis=0) / batch
            delta = (delta @ tail[w_key].T) * (1.0 - activations[layer - 2] ** 2)
        grads["b1"] = delta.sum(axis=0) / batch
        return grads, delta

    def w1_gradient(self, shard: CSRMatrix, delta1: np.ndarray, batch: int) -> np.ndarray:
        """Local embedding gradient ``X_k^T delta1 / B``."""
        b = max(batch, 1)
        return np.column_stack(
            [accumulate_rows(shard, delta1[:, h]) for h in range(self.hidden_sizes[0])]
        ) / b


class SequentialDeepMLP:
    """Single-machine reference used by the exactness tests."""

    def __init__(self, model: DeepColumnMLP, optimizer, n_features: int, seed=0):
        self.model = model
        self.w1 = model.init_w1(n_features, seed=seed)
        self.tail = model.init_tail(seed=seed)
        self._opt_w1 = optimizer.spawn()
        self._opt_tail = {k: optimizer.spawn() for k in self.tail}

    def loss(self, features: CSRMatrix, labels) -> float:
        z = self.model.partial_statistics(features, self.w1)
        return self.model.loss_from_statistics(z, labels, self.tail)

    def step(self, features: CSRMatrix, labels, iteration: int) -> None:
        z = self.model.partial_statistics(features, self.w1)
        tail_grads, delta1 = self.model.backward(z, labels, self.tail)
        grad_w1 = self.model.w1_gradient(features, delta1, features.n_rows)
        self._opt_w1.step(self.w1, grad_w1, iteration)
        for key, grad in tail_grads.items():
            self._opt_tail[key].step(self.tail[key], grad, iteration)

    def predict_proba(self, features: CSRMatrix) -> np.ndarray:
        z = self.model.partial_statistics(features, self.w1)
        _, scores = self.model.forward(z, self.tail)
        return _sigmoid(scores)


class DeepMLPColumnTrainer:
    """Distributed training of :class:`DeepColumnMLP` on the simulator.

    One ``B x H1`` statistics round per iteration; the replicated tail
    is updated identically on every worker from the broadcast Z (a
    single logical copy stands in for the replicas, as in
    :class:`~repro.extensions.mlp.MLPColumnTrainer`).
    """

    def __init__(
        self,
        model: DeepColumnMLP,
        optimizer,
        cluster,
        batch_size: int = 1000,
        iterations: int = 100,
        eval_every: int = 10,
        seed: int = 0,
        block_size: int = 2048,
    ):
        check_positive(batch_size, "batch_size")
        check_positive(iterations, "iterations")
        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.batch_size = int(batch_size)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.seed = int(seed)
        self.block_size = int(block_size)
        self._dataset = None
        self._assignment = None
        self._stores = None
        self._index = None
        self._w1_parts: List[np.ndarray] = []
        self._w1_optimizers = []
        self._tail: Dict[str, np.ndarray] = {}
        self._tail_optimizers: Dict[str, object] = {}
        self._engine = None

    def load(self, dataset):
        """Column-partition the data and W1; replicate the tail."""
        from repro.partition.column import make_assignment
        from repro.partition.dispatch import dispatch_block_based
        from repro.partition.indexing import TwoPhaseIndex

        K = self.cluster.n_workers
        self._dataset = dataset
        self._assignment = make_assignment("round_robin", dataset.n_features, K)
        self._stores, block_sizes, report = dispatch_block_based(
            dataset, self._assignment, self.cluster, block_size=self.block_size
        )
        self._index = TwoPhaseIndex(block_sizes, base_seed=self.seed)
        full_w1 = self.model.init_w1(dataset.n_features, seed=self.seed)
        self._w1_parts = [
            np.array(full_w1[self._assignment.columns_of(k)], copy=True)
            for k in range(K)
        ]
        self._w1_optimizers = [self.optimizer.spawn() for _ in range(K)]
        self._tail = self.model.init_tail(seed=self.seed)
        self._tail_optimizers = {k: self.optimizer.spawn() for k in self._tail}
        return report

    def fit(self, dataset=None):
        """Train; returns the usual loss/time trace."""
        from repro.core.results import IterationRecord, TrainingResult
        from repro.errors import TrainingError

        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="ColumnSGD-DeepMLP",
            model="mlp-{}".format("x".join(map(str, self.model.hidden_sizes))),
            dataset=self._dataset.name,
            batch_size=self.batch_size,
            n_workers=self.cluster.n_workers,
        )

        def record(iteration, duration, bytes_sent, evaluate):
            loss = self.evaluate_loss() if evaluate else None
            if loss is not None and not np.isfinite(loss):
                raise TrainingError(
                    "training diverged at iteration {}".format(iteration)
                )
            result.add(IterationRecord(iteration, self.cluster.clock.now(),
                                       duration, loss, bytes_sent))

        if self.eval_every:
            record(-1, 0.0, 0, True)

        from repro.engine import RoundEngine, run_training_loop

        self._engine = RoundEngine(self, self.cluster)
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=self.iterations,
            eval_every=self.eval_every,
            record=record,
        )
        return result

    def run_round(self, t: int):
        """One engine round (used by fit(), benchmarks and tests)."""
        if self._engine is None:
            from repro.engine import RoundEngine

            self._engine = RoundEngine(self, self.cluster)
        return self._engine.run_round(t)

    # ------------------------------------------------------------------
    def round_spec(self):
        """One ``B x H1`` statistics round; the replicated tail updates
        identically on every worker from the broadcast Z."""
        from repro.engine import (
            BarrierSync,
            CommPhase,
            ComputePhase,
            MasterPhase,
            RoundSpec,
        )
        from repro.net.message import MessageKind

        return RoundSpec(
            system="ColumnSGD-DeepMLP",
            sync=BarrierSync(),
            phases=(
                ComputePhase(
                    "partial_statistics",
                    run="_phase_partial_statistics",
                    synchronized=True,
                ),
                CommPhase(
                    "gather",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_statistics_push_sizes",
                ),
                MasterPhase("reduce", run="_phase_reduce"),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.STATISTICS_BCAST,
                    pattern="broadcast",
                    sizes="_statistics_size",
                ),
                ComputePhase("update_model", run="_phase_update_model"),
                MasterPhase("update_tail", run="_phase_update_tail"),
            ),
        )

    def _phase_partial_statistics(self, ctx) -> Dict[int, float]:
        cost = self.cluster.cost
        width = self.model.statistics_width
        draws = self._index.sample(ctx.t, self.batch_size)
        shards = []
        labels = None
        z_total = None
        per_worker: Dict[int, float] = {}
        for k in range(self.cluster.n_workers):
            shard, shard_labels = self._stores[k].assemble_batch(draws)
            shards.append(shard)
            labels = shard_labels
            part = self.model.partial_statistics(shard, self._w1_parts[k])
            z_total = part if z_total is None else z_total + part
            per_worker[k] = cost.task_overhead + cost.sparse_work(
                shard.nnz, passes=width
            )
        ctx.scratch["shards"] = shards
        ctx.scratch["labels"] = labels
        ctx.scratch["z_total"] = z_total
        return per_worker

    def _statistics_size(self, ctx) -> int:
        from repro.storage.serialization import dense_vector_bytes

        return dense_vector_bytes(self.batch_size * self.model.statistics_width)

    def _statistics_push_sizes(self, ctx) -> List[int]:
        return [self._statistics_size(ctx)] * self.cluster.n_workers

    def _phase_reduce(self, ctx) -> float:
        return self.cluster.cost.dense_work(
            self.cluster.n_workers * self.batch_size * self.model.statistics_width
        )

    def _phase_update_model(self, ctx) -> Dict[int, float]:
        cost = self.cluster.cost
        width = self.model.statistics_width
        shards = ctx.scratch["shards"]
        tail_grads, delta1 = self.model.backward(
            ctx.scratch["z_total"], ctx.scratch["labels"], self._tail
        )
        ctx.scratch["tail_grads"] = tail_grads
        per_worker: Dict[int, float] = {}
        for k in range(self.cluster.n_workers):
            grad = self.model.w1_gradient(shards[k], delta1, self.batch_size)
            self._w1_optimizers[k].step(self._w1_parts[k], grad, ctx.t)
            per_worker[k] = cost.task_overhead + cost.sparse_work(
                shards[k].nnz, passes=width
            )
        return per_worker

    def _phase_update_tail(self, ctx) -> float:
        for key, grad in ctx.scratch["tail_grads"].items():
            self._tail_optimizers[key].step(self._tail[key], grad, ctx.t)
        tail_elements = sum(v.size for v in self._tail.values())
        return self.cluster.cost.dense_work(tail_elements)

    def current_w1(self) -> np.ndarray:
        """Reassemble the full embedding matrix."""
        full = np.zeros((self._dataset.n_features, self.model.hidden_sizes[0]))
        for k in range(self.cluster.n_workers):
            full[self._assignment.columns_of(k)] = self._w1_parts[k]
        return full

    def tail(self) -> Dict[str, np.ndarray]:
        """The replicated tail parameters."""
        return {k: v.copy() for k, v in self._tail.items()}

    def evaluate_loss(self, dataset=None) -> float:
        """Full-train loss (not charged to simulated time)."""
        data = dataset if dataset is not None else self._dataset
        z = self.model.partial_statistics(data.features, self.current_w1())
        return self.model.loss_from_statistics(z, data.labels, self._tail)
