"""Deeper column-partitioned networks: one partitioned embedding layer,
an arbitrary replicated tail.

Generalises :mod:`repro.extensions.mlp` the way production sparse
models are actually built: the *first* layer (m x H1, the only tensor
that scales with the feature dimension) is column-partitioned and
synchronised through one ``B x H1`` statistics round, while the deeper
layers (H1 x H2 x ... x 1, all small) are replicated on every worker
and updated identically from the broadcast pre-activations — zero extra
communication, exactly the paper's Section III-C argument that "the
width of each individual layer in DNN is usually not large in
practice".

Architecture: ``score = tail(tanh(W1^T x + b1))`` where ``tail`` is a
stack of tanh layers ending in a scalar logistic output; labels in
{-1, +1}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.linalg import CSRMatrix, row_dots
from repro.linalg.ops import accumulate_rows
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class DeepColumnMLP:
    """Model math for the deep column-partitioned network.

    ``hidden_sizes = [H1, H2, ...]``: H1 is the partitioned embedding
    width (the statistics width); the rest are replicated tail layers.
    """

    def __init__(self, hidden_sizes: List[int], init_std: float = 0.5):
        if not hidden_sizes:
            raise ValueError("need at least one hidden layer")
        for h in hidden_sizes:
            check_positive(h, "hidden size")
        check_positive(init_std, "init_std")
        self.hidden_sizes = [int(h) for h in hidden_sizes]
        self.init_std = float(init_std)

    @property
    def statistics_width(self) -> int:
        """Values synchronised per example: the first hidden width."""
        return self.hidden_sizes[0]

    # -- initialisation ---------------------------------------------------
    def init_w1(self, n_features: int, seed=None) -> np.ndarray:
        rng = rng_from_seed(seed)
        return rng.normal(0.0, self.init_std, size=(n_features, self.hidden_sizes[0]))

    def init_tail(self, seed=None) -> Dict[str, np.ndarray]:
        """Replicated parameters: per tail layer a weight matrix and
        bias, plus the scalar output head."""
        rng = rng_from_seed(None if seed is None else seed + 1)
        tail: Dict[str, np.ndarray] = {"b1": np.zeros(self.hidden_sizes[0])}
        widths = self.hidden_sizes
        for layer in range(1, len(widths)):
            fan_in = widths[layer - 1]
            tail["W{}".format(layer + 1)] = rng.normal(
                0.0, self.init_std / np.sqrt(fan_in), size=(fan_in, widths[layer])
            )
            tail["b{}".format(layer + 1)] = np.zeros(widths[layer])
        fan_in = widths[-1]
        tail["w_out"] = rng.normal(0.0, self.init_std / np.sqrt(fan_in), size=fan_in)
        tail["b_out"] = np.zeros(1)
        return tail

    # -- forward / backward -------------------------------------------------
    def partial_statistics(self, shard: CSRMatrix, w1_part: np.ndarray) -> np.ndarray:
        """Shard's contribution to ``Z = X W1`` (additive)."""
        return np.column_stack(
            [row_dots(shard, w1_part[:, h]) for h in range(self.hidden_sizes[0])]
        )

    def forward(self, z: np.ndarray, tail: Dict[str, np.ndarray]):
        """Activations per layer and scalar scores, from complete Z."""
        activations = [np.tanh(np.asarray(z) + tail["b1"])]
        for layer in range(2, len(self.hidden_sizes) + 1):
            pre = activations[-1] @ tail["W{}".format(layer)] + tail["b{}".format(layer)]
            activations.append(np.tanh(pre))
        scores = activations[-1] @ tail["w_out"] + tail["b_out"][0]
        return activations, scores

    def loss_from_statistics(self, z, labels, tail) -> float:
        _, scores = self.forward(z, tail)
        margins = np.asarray(labels) * scores
        stable = np.where(
            margins > 0,
            np.log1p(np.exp(-np.abs(margins))),
            -margins + np.log1p(np.exp(-np.abs(margins))),
        )
        return float(np.mean(stable)) if stable.size else 0.0

    def backward(
        self, z: np.ndarray, labels: np.ndarray, tail: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Gradients of the replicated tail and the delta feeding W1.

        Returns ``(tail_grads, delta1)`` where ``delta1`` (B x H1) is
        d(loss)/d(Z): every worker computes the identical values from
        the broadcast Z, then its own ``dW1_k = X_k^T delta1 / B``.
        """
        labels = np.asarray(labels, dtype=np.float64)
        batch = max(labels.size, 1)
        activations, scores = self.forward(z, tail)
        c = -labels * _sigmoid(-labels * scores)  # dl/dscore, logistic

        grads: Dict[str, np.ndarray] = {
            "w_out": activations[-1].T @ c / batch,
            "b_out": np.array([c.sum() / batch]),
        }
        # delta at the top tail activation
        delta = (c[:, None] * tail["w_out"][None, :]) * (1.0 - activations[-1] ** 2)
        for layer in range(len(self.hidden_sizes), 1, -1):
            w_key = "W{}".format(layer)
            grads[w_key] = activations[layer - 2].T @ delta / batch
            grads["b{}".format(layer)] = delta.sum(axis=0) / batch
            delta = (delta @ tail[w_key].T) * (1.0 - activations[layer - 2] ** 2)
        grads["b1"] = delta.sum(axis=0) / batch
        return grads, delta

    def w1_gradient(self, shard: CSRMatrix, delta1: np.ndarray, batch: int) -> np.ndarray:
        """Local embedding gradient ``X_k^T delta1 / B``."""
        b = max(batch, 1)
        return np.column_stack(
            [accumulate_rows(shard, delta1[:, h]) for h in range(self.hidden_sizes[0])]
        ) / b


class SequentialDeepMLP:
    """Single-machine reference used by the exactness tests."""

    def __init__(self, model: DeepColumnMLP, optimizer, n_features: int, seed=0):
        self.model = model
        self.w1 = model.init_w1(n_features, seed=seed)
        self.tail = model.init_tail(seed=seed)
        self._opt_w1 = optimizer.spawn()
        self._opt_tail = {k: optimizer.spawn() for k in self.tail}

    def loss(self, features: CSRMatrix, labels) -> float:
        z = self.model.partial_statistics(features, self.w1)
        return self.model.loss_from_statistics(z, labels, self.tail)

    def step(self, features: CSRMatrix, labels, iteration: int) -> None:
        z = self.model.partial_statistics(features, self.w1)
        tail_grads, delta1 = self.model.backward(z, labels, self.tail)
        grad_w1 = self.model.w1_gradient(features, delta1, features.n_rows)
        self._opt_w1.step(self.w1, grad_w1, iteration)
        for key, grad in tail_grads.items():
            self._opt_tail[key].step(self.tail[key], grad, iteration)

    def predict_proba(self, features: CSRMatrix) -> np.ndarray:
        z = self.model.partial_statistics(features, self.w1)
        _, scores = self.model.forward(z, self.tail)
        return _sigmoid(scores)


class DeepMLPColumnTrainer:
    """Distributed training of :class:`DeepColumnMLP` on the simulator.

    One ``B x H1`` statistics round per iteration; the replicated tail
    is updated identically on every worker from the broadcast Z (a
    single logical copy stands in for the replicas, as in
    :class:`~repro.extensions.mlp.MLPColumnTrainer`).
    """

    def __init__(
        self,
        model: DeepColumnMLP,
        optimizer,
        cluster,
        batch_size: int = 1000,
        iterations: int = 100,
        eval_every: int = 10,
        seed: int = 0,
        block_size: int = 2048,
    ):
        check_positive(batch_size, "batch_size")
        check_positive(iterations, "iterations")
        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.batch_size = int(batch_size)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.seed = int(seed)
        self.block_size = int(block_size)
        self._dataset = None
        self._assignment = None
        self._stores = None
        self._index = None
        self._w1_parts: List[np.ndarray] = []
        self._w1_optimizers = []
        self._tail: Dict[str, np.ndarray] = {}
        self._tail_optimizers: Dict[str, object] = {}

    def load(self, dataset):
        """Column-partition the data and W1; replicate the tail."""
        from repro.partition.column import make_assignment
        from repro.partition.dispatch import dispatch_block_based
        from repro.partition.indexing import TwoPhaseIndex

        K = self.cluster.n_workers
        self._dataset = dataset
        self._assignment = make_assignment("round_robin", dataset.n_features, K)
        self._stores, block_sizes, report = dispatch_block_based(
            dataset, self._assignment, self.cluster, block_size=self.block_size
        )
        self._index = TwoPhaseIndex(block_sizes, base_seed=self.seed)
        full_w1 = self.model.init_w1(dataset.n_features, seed=self.seed)
        self._w1_parts = [
            np.array(full_w1[self._assignment.columns_of(k)], copy=True)
            for k in range(K)
        ]
        self._w1_optimizers = [self.optimizer.spawn() for _ in range(K)]
        self._tail = self.model.init_tail(seed=self.seed)
        self._tail_optimizers = {k: self.optimizer.spawn() for k in self._tail}
        return report

    def fit(self, dataset=None):
        """Train; returns the usual loss/time trace."""
        from repro.core.results import IterationRecord, TrainingResult
        from repro.errors import TrainingError

        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="ColumnSGD-DeepMLP",
            model="mlp-{}".format("x".join(map(str, self.model.hidden_sizes))),
            dataset=self._dataset.name,
            batch_size=self.batch_size,
            n_workers=self.cluster.n_workers,
        )

        def record(iteration, duration, bytes_sent, evaluate):
            loss = self.evaluate_loss() if evaluate else None
            if loss is not None and not np.isfinite(loss):
                raise TrainingError(
                    "training diverged at iteration {}".format(iteration)
                )
            result.add(IterationRecord(iteration, self.cluster.clock.now(),
                                       duration, loss, bytes_sent))

        if self.eval_every:
            record(-1, 0.0, 0, True)
        for t in range(self.iterations):
            bytes_before = self.cluster.network.total_bytes()
            duration = self._run_iteration(t)
            self.cluster.clock.advance(duration)
            evaluate = bool(self.eval_every) and (
                (t + 1) % self.eval_every == 0 or t == self.iterations - 1
            )
            record(t, duration, self.cluster.network.total_bytes() - bytes_before,
                   evaluate)
        return result

    def _run_iteration(self, t: int) -> float:
        from repro.net.message import MessageKind
        from repro.storage.serialization import dense_vector_bytes

        K = self.cluster.n_workers
        cost = self.cluster.cost
        width = self.model.statistics_width
        draws = self._index.sample(t, self.batch_size)

        shards = []
        labels = None
        z_total = None
        compute = []
        for k in range(K):
            shard, shard_labels = self._stores[k].assemble_batch(draws)
            shards.append(shard)
            labels = shard_labels
            part = self.model.partial_statistics(shard, self._w1_parts[k])
            z_total = part if z_total is None else z_total + part
            compute.append(cost.task_overhead + cost.sparse_work(shard.nnz, passes=width))
        phase1 = max(compute)

        stats_size = dense_vector_bytes(self.batch_size * width)
        gather = self.cluster.topology.gather(
            MessageKind.STATISTICS_PUSH, [stats_size] * K
        )
        reduce_time = cost.dense_work(K * self.batch_size * width)
        bcast = self.cluster.topology.broadcast(
            MessageKind.STATISTICS_BCAST, stats_size
        )

        tail_grads, delta1 = self.model.backward(z_total, labels, self._tail)
        update = []
        for k in range(K):
            grad = self.model.w1_gradient(shards[k], delta1, self.batch_size)
            self._w1_optimizers[k].step(self._w1_parts[k], grad, t)
            update.append(cost.task_overhead + cost.sparse_work(shards[k].nnz, passes=width))
        for key, grad in tail_grads.items():
            self._tail_optimizers[key].step(self._tail[key], grad, t)
        tail_elements = sum(v.size for v in self._tail.values())
        phase2 = max(update) + cost.dense_work(tail_elements)
        return phase1 + gather + reduce_time + bcast + phase2

    def current_w1(self) -> np.ndarray:
        """Reassemble the full embedding matrix."""
        full = np.zeros((self._dataset.n_features, self.model.hidden_sizes[0]))
        for k in range(self.cluster.n_workers):
            full[self._assignment.columns_of(k)] = self._w1_parts[k]
        return full

    def tail(self) -> Dict[str, np.ndarray]:
        """The replicated tail parameters."""
        return {k: v.copy() for k, v in self._tail.items()}

    def evaluate_loss(self, dataset=None) -> float:
        """Full-train loss (not charged to simulated time)."""
        data = dataset if dataset is not None else self._dataset
        z = self.model.partial_statistics(data.features, self.current_w1())
        return self.model.loss_from_statistics(z, data.labels, self._tail)
