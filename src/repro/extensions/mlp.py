"""Column-partitioned multi-layer perceptron (Section III-C sketch).

Architecture: one hidden layer of width ``H`` with tanh activation and a
scalar logistic head — ``score(x) = w2 . tanh(W1^T x + b1) + b2`` with
labels in {-1, +1}.

Distribution strategy, following the paper's FC-layer discussion:

* ``W1`` (m x H) is the large tensor — partitioned by *input feature*
  (rows of W1), collocated with the column-partitioned data, exactly
  like a GLM model;
* the per-example hidden pre-activations ``Z = X W1`` are additive over
  column shards, so they are the *statistics* — ``B * H`` values per
  iteration, independent of m;
* the head ``(w2, b1, b2)`` is tiny (2H + 1 scalars) and *replicated* on
  every worker.  Given the broadcast ``Z``, every worker computes the
  identical head gradient locally, so the replicas stay bit-identical
  with no extra communication — the reason the paper deems FC layers
  supportable but conv/pool layers not.

Backward pass, all local given complete ``Z``::

    A      = tanh(Z + b1)
    s_i    = A_i . w2 + b2
    c_i    = -y_i / (1 + exp(y_i s_i))         # logistic, as LR
    delta  = (c  outer w2) * (1 - A^2)          # B x H
    dW1_k  = X_k^T delta / B                    # local shard gradient
    dw2    = A^T c / B ;  db1 = sum(delta)/B ;  db2 = sum(c)/B

:class:`MLPColumnTrainer` runs this on the simulated cluster with the
same loading, indexing, timing, and straggler machinery as the GLM
driver; :class:`SequentialMLP` is the single-machine reference the
exactness tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.results import IterationRecord, TrainingResult
from repro.datasets.dataset import Dataset
from repro.engine import (
    BarrierSync,
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    run_training_loop,
)
from repro.errors import TrainingError
from repro.linalg import CSRMatrix, row_dots
from repro.linalg.ops import accumulate_rows
from repro.net.message import MessageKind
from repro.optim.base import Optimizer
from repro.partition.column import make_assignment
from repro.partition.dispatch import dispatch_block_based
from repro.partition.indexing import TwoPhaseIndex
from repro.sim.cluster import SimulatedCluster
from repro.storage.serialization import dense_vector_bytes
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


@dataclass
class ColumnMLP:
    """Model hyper-parameters and the shared math of the column MLP."""

    hidden: int
    init_std: float = 0.5

    def __post_init__(self):
        check_positive(self.hidden, "hidden")
        check_positive(self.init_std, "init_std")

    # -- initialisation -------------------------------------------------
    def init_w1(self, n_features: int, seed=None) -> np.ndarray:
        rng = rng_from_seed(seed)
        return rng.normal(0.0, self.init_std, size=(n_features, self.hidden))

    def init_head(self, seed=None) -> Dict[str, np.ndarray]:
        rng = rng_from_seed(None if seed is None else seed + 1)
        return {
            "w2": rng.normal(0.0, self.init_std, size=self.hidden),
            "b1": np.zeros(self.hidden),
            "b2": np.zeros(1),
        }

    # -- forward/backward given complete statistics ----------------------
    def partial_statistics(self, shard: CSRMatrix, w1_part: np.ndarray) -> np.ndarray:
        """Shard's contribution to Z = X W1 (additive across shards)."""
        return np.column_stack(
            [row_dots(shard, w1_part[:, h]) for h in range(self.hidden)]
        )

    def forward(self, z: np.ndarray, head: Dict[str, np.ndarray]):
        """Hidden activations and scalar scores from complete Z."""
        a = np.tanh(z + head["b1"])
        scores = a @ head["w2"] + head["b2"][0]
        return a, scores

    def loss_from_statistics(self, z, labels, head) -> float:
        _, scores = self.forward(np.asarray(z), head)
        margins = np.asarray(labels) * scores
        stable = np.where(
            margins > 0,
            np.log1p(np.exp(-np.abs(margins))),
            -margins + np.log1p(np.exp(-np.abs(margins))),
        )
        return float(np.mean(stable)) if stable.size else 0.0

    def backward(self, z, labels, head):
        """Per-example coefficients and hidden deltas (identical on all
        workers given the broadcast Z)."""
        labels = np.asarray(labels)
        a, scores = self.forward(np.asarray(z), head)
        margins = labels * scores
        c = -labels * _sigmoid(-margins)
        delta = (c[:, None] * head["w2"][None, :]) * (1.0 - a ** 2)
        return a, c, delta

    def head_gradients(self, a, c, delta, batch_size):
        """Gradients of the replicated head — no communication needed."""
        b = max(batch_size, 1)
        return {
            "w2": a.T @ c / b,
            "b1": delta.sum(axis=0) / b,
            "b2": np.array([c.sum() / b]),
        }

    def w1_gradient(self, shard: CSRMatrix, delta: np.ndarray, batch_size: int):
        """Local W1-partition gradient: X_k^T delta / B."""
        b = max(batch_size, 1)
        return np.column_stack(
            [accumulate_rows(shard, delta[:, h]) for h in range(self.hidden)]
        ) / b


class SequentialMLP:
    """Single-machine reference implementation (exactness baseline)."""

    def __init__(self, model: ColumnMLP, optimizer: Optimizer, n_features: int, seed=0):
        self.model = model
        self.w1 = model.init_w1(n_features, seed=seed)
        self.head = model.init_head(seed=seed)
        self._opt_w1 = optimizer.spawn()
        self._opt_head = {k: optimizer.spawn() for k in self.head}

    def loss(self, features: CSRMatrix, labels) -> float:
        z = self.model.partial_statistics(features, self.w1)
        return self.model.loss_from_statistics(z, labels, self.head)

    def step(self, features: CSRMatrix, labels, iteration: int) -> None:
        z = self.model.partial_statistics(features, self.w1)
        a, c, delta = self.model.backward(z, labels, self.head)
        grad_w1 = self.model.w1_gradient(features, delta, features.n_rows)
        head_grads = self.model.head_gradients(a, c, delta, features.n_rows)
        self._opt_w1.step(self.w1, grad_w1, iteration)
        for key, grad in head_grads.items():
            self._opt_head[key].step(self.head[key], grad, iteration)

    def predict_proba(self, features: CSRMatrix) -> np.ndarray:
        z = self.model.partial_statistics(features, self.w1)
        _, scores = self.model.forward(z, self.head)
        return _sigmoid(scores)


class MLPColumnTrainer:
    """ColumnSGD-style distributed training of :class:`ColumnMLP`.

    Statistics per iteration: ``B * hidden`` values gathered and
    broadcast once (one synchronisation per layer, as Section III-C
    prescribes for FC layers).  The head is replicated; every worker
    applies the identical head update, so replicas never diverge.
    """

    def __init__(
        self,
        model: ColumnMLP,
        optimizer: Optimizer,
        cluster: SimulatedCluster,
        batch_size: int = 1000,
        iterations: int = 100,
        eval_every: int = 10,
        seed: int = 0,
        block_size: int = 2048,
    ):
        check_positive(batch_size, "batch_size")
        check_positive(iterations, "iterations")
        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.batch_size = int(batch_size)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.seed = int(seed)
        self.block_size = int(block_size)

        self._dataset: Optional[Dataset] = None
        self._assignment = None
        self._stores = None
        self._index: Optional[TwoPhaseIndex] = None
        self._w1_parts: List[np.ndarray] = []
        self._w1_optimizers: List[Optimizer] = []
        self._head: Dict[str, np.ndarray] = {}
        self._head_optimizers: Dict[str, Optimizer] = {}
        self._engine: Optional[RoundEngine] = None

    # ------------------------------------------------------------------
    def load(self, dataset: Dataset):
        """Column-partition the data and W1; replicate the head."""
        K = self.cluster.n_workers
        self._dataset = dataset
        self._assignment = make_assignment("round_robin", dataset.n_features, K)
        self._stores, block_sizes, report = dispatch_block_based(
            dataset, self._assignment, self.cluster, block_size=self.block_size
        )
        self._index = TwoPhaseIndex(block_sizes, base_seed=self.seed)
        full_w1 = self.model.init_w1(dataset.n_features, seed=self.seed)
        self._w1_parts = [
            np.array(full_w1[self._assignment.columns_of(k)], copy=True)
            for k in range(K)
        ]
        self._w1_optimizers = [self.optimizer.spawn() for _ in range(K)]
        # One logical head; replicas would stay identical, so a single
        # array stands in for all of them (same trick as model replicas
        # in backup computation).
        self._head = self.model.init_head(seed=self.seed)
        self._head_optimizers = {k: self.optimizer.spawn() for k in self._head}
        return report

    # ------------------------------------------------------------------
    def fit(self, dataset: Optional[Dataset] = None) -> TrainingResult:
        """Train; returns the usual loss/time trace."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="ColumnSGD-MLP",
            model="mlp{}".format(self.model.hidden),
            dataset=self._dataset.name,
            batch_size=self.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.eval_every:
            self._record(result, -1, 0.0, 0)

        self._engine = RoundEngine(self, self.cluster)
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=self.iterations,
            eval_every=self.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate=evaluate
            ),
        )
        return result

    def run_round(self, t: int):
        """One engine round (used by fit(), benchmarks and tests)."""
        if self._engine is None:
            self._engine = RoundEngine(self, self.cluster)
        return self._engine.run_round(t)

    # ------------------------------------------------------------------
    def round_spec(self) -> RoundSpec:
        """One statistics round per iteration (Section III-C, FC layer):
        gather/broadcast the ``B x H`` pre-activations, then local
        backward on each W1 partition plus the replicated head."""
        return RoundSpec(
            system="ColumnSGD-MLP",
            sync=BarrierSync(),
            phases=(
                ComputePhase(
                    "partial_statistics",
                    run="_phase_partial_statistics",
                    synchronized=True,
                ),
                CommPhase(
                    "gather",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_statistics_push_sizes",
                ),
                MasterPhase("reduce", run="_phase_reduce"),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.STATISTICS_BCAST,
                    pattern="broadcast",
                    sizes="_statistics_size",
                ),
                ComputePhase("update_model", run="_phase_update_model"),
                MasterPhase("update_head", run="_phase_update_head"),
            ),
        )

    def _phase_partial_statistics(self, ctx) -> Dict[int, float]:
        """Each worker's partial Z over its shard."""
        cost = self.cluster.cost
        draws = self._index.sample(ctx.t, self.batch_size)
        H = self.model.hidden
        shards = []
        labels = None
        z_total = None
        per_worker: Dict[int, float] = {}
        for k in range(self.cluster.n_workers):
            shard, shard_labels = self._stores[k].assemble_batch(draws)
            shards.append(shard)
            labels = shard_labels
            part = self.model.partial_statistics(shard, self._w1_parts[k])
            z_total = part if z_total is None else z_total + part
            per_worker[k] = cost.task_overhead + cost.sparse_work(shard.nnz, passes=H)
        ctx.scratch["shards"] = shards
        ctx.scratch["labels"] = labels
        ctx.scratch["z_total"] = z_total
        return per_worker

    def _statistics_size(self, ctx) -> int:
        return dense_vector_bytes(self.batch_size * self.model.hidden)

    def _statistics_push_sizes(self, ctx) -> List[int]:
        return [self._statistics_size(ctx)] * self.cluster.n_workers

    def _phase_reduce(self, ctx) -> float:
        return self.cluster.cost.dense_work(
            self.cluster.n_workers * self.batch_size * self.model.hidden
        )

    def _phase_update_model(self, ctx) -> Dict[int, float]:
        """Local backward; W1 partitions step their optimizers."""
        cost = self.cluster.cost
        H = self.model.hidden
        shards = ctx.scratch["shards"]
        a, c, delta = self.model.backward(
            ctx.scratch["z_total"], ctx.scratch["labels"], self._head
        )
        ctx.scratch["backward"] = (a, c, delta)
        per_worker: Dict[int, float] = {}
        for k in range(self.cluster.n_workers):
            grad = self.model.w1_gradient(shards[k], delta, self.batch_size)
            self._w1_optimizers[k].step(self._w1_parts[k], grad, ctx.t)
            per_worker[k] = cost.task_overhead + cost.sparse_work(
                shards[k].nnz, passes=H
            )
        return per_worker

    def _phase_update_head(self, ctx) -> float:
        """The replicated head's identical update (no communication)."""
        a, c, delta = ctx.scratch["backward"]
        head_grads = self.model.head_gradients(a, c, delta, self.batch_size)
        for key, grad in head_grads.items():
            self._head_optimizers[key].step(self._head[key], grad, ctx.t)
        return self.cluster.cost.dense_work(2 * self.model.hidden + 1)

    # ------------------------------------------------------------------
    def current_w1(self) -> np.ndarray:
        """Reassemble the full W1 from the partitions."""
        full = np.zeros((self._dataset.n_features, self.model.hidden))
        for k in range(self.cluster.n_workers):
            full[self._assignment.columns_of(k)] = self._w1_parts[k]
        return full

    def head(self) -> Dict[str, np.ndarray]:
        """The replicated head parameters."""
        return {k: v.copy() for k, v in self._head.items()}

    def evaluate_loss(self, dataset: Optional[Dataset] = None) -> float:
        """Full-train loss (not charged to simulated time)."""
        data = dataset if dataset is not None else self._dataset
        z = self.model.partial_statistics(data.features, self.current_w1())
        return self.model.loss_from_statistics(z, data.labels, self._head)

    def _record(self, result, iteration, duration, bytes_sent, evaluate=True):
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "training diverged at iteration {} (loss={})".format(iteration, loss)
            )
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now(),
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
            )
        )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
