"""Column-partitioned multi-layer perceptron (Section III-C sketch).

Architecture: one hidden layer of width ``H`` with tanh activation and a
scalar logistic head — ``score(x) = w2 . tanh(W1^T x + b1) + b2`` with
labels in {-1, +1}.

Distribution strategy, following the paper's FC-layer discussion:

* ``W1`` (m x H) is the large tensor — partitioned by *input feature*
  (rows of W1), collocated with the column-partitioned data, exactly
  like a GLM model;
* the per-example hidden pre-activations ``Z = X W1`` are additive over
  column shards, so they are the *statistics* — ``B * H`` values per
  iteration, independent of m;
* the head ``(w2, b1, b2)`` is tiny (2H + 1 scalars) and *replicated* on
  every worker.  Given the broadcast ``Z``, every worker computes the
  identical head gradient locally, so the replicas stay bit-identical
  with no extra communication — the reason the paper deems FC layers
  supportable but conv/pool layers not.

Backward pass, all local given complete ``Z``::

    A      = tanh(Z + b1)
    s_i    = A_i . w2 + b2
    c_i    = -y_i / (1 + exp(y_i s_i))         # logistic, as LR
    delta  = (c  outer w2) * (1 - A^2)          # B x H
    dW1_k  = X_k^T delta / B                    # local shard gradient
    dw2    = A^T c / B ;  db1 = sum(delta)/B ;  db2 = sum(c)/B

:class:`MLPColumnTrainer` runs this on the simulated cluster with the
same loading, indexing, timing, and straggler machinery as the GLM
driver; :class:`SequentialMLP` is the single-machine reference the
exactness tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.results import IterationRecord, TrainingResult
from repro.datasets.dataset import Dataset
from repro.errors import TrainingError
from repro.linalg import CSRMatrix, row_dots
from repro.linalg.ops import accumulate_rows
from repro.net.message import MessageKind
from repro.optim.base import Optimizer
from repro.partition.column import make_assignment
from repro.partition.dispatch import dispatch_block_based
from repro.partition.indexing import TwoPhaseIndex
from repro.sim.cluster import SimulatedCluster
from repro.storage.serialization import dense_vector_bytes
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


@dataclass
class ColumnMLP:
    """Model hyper-parameters and the shared math of the column MLP."""

    hidden: int
    init_std: float = 0.5

    def __post_init__(self):
        check_positive(self.hidden, "hidden")
        check_positive(self.init_std, "init_std")

    # -- initialisation -------------------------------------------------
    def init_w1(self, n_features: int, seed=None) -> np.ndarray:
        rng = rng_from_seed(seed)
        return rng.normal(0.0, self.init_std, size=(n_features, self.hidden))

    def init_head(self, seed=None) -> Dict[str, np.ndarray]:
        rng = rng_from_seed(None if seed is None else seed + 1)
        return {
            "w2": rng.normal(0.0, self.init_std, size=self.hidden),
            "b1": np.zeros(self.hidden),
            "b2": np.zeros(1),
        }

    # -- forward/backward given complete statistics ----------------------
    def partial_statistics(self, shard: CSRMatrix, w1_part: np.ndarray) -> np.ndarray:
        """Shard's contribution to Z = X W1 (additive across shards)."""
        return np.column_stack(
            [row_dots(shard, w1_part[:, h]) for h in range(self.hidden)]
        )

    def forward(self, z: np.ndarray, head: Dict[str, np.ndarray]):
        """Hidden activations and scalar scores from complete Z."""
        a = np.tanh(z + head["b1"])
        scores = a @ head["w2"] + head["b2"][0]
        return a, scores

    def loss_from_statistics(self, z, labels, head) -> float:
        _, scores = self.forward(np.asarray(z), head)
        margins = np.asarray(labels) * scores
        stable = np.where(
            margins > 0,
            np.log1p(np.exp(-np.abs(margins))),
            -margins + np.log1p(np.exp(-np.abs(margins))),
        )
        return float(np.mean(stable)) if stable.size else 0.0

    def backward(self, z, labels, head):
        """Per-example coefficients and hidden deltas (identical on all
        workers given the broadcast Z)."""
        labels = np.asarray(labels)
        a, scores = self.forward(np.asarray(z), head)
        margins = labels * scores
        c = -labels * _sigmoid(-margins)
        delta = (c[:, None] * head["w2"][None, :]) * (1.0 - a ** 2)
        return a, c, delta

    def head_gradients(self, a, c, delta, batch_size):
        """Gradients of the replicated head — no communication needed."""
        b = max(batch_size, 1)
        return {
            "w2": a.T @ c / b,
            "b1": delta.sum(axis=0) / b,
            "b2": np.array([c.sum() / b]),
        }

    def w1_gradient(self, shard: CSRMatrix, delta: np.ndarray, batch_size: int):
        """Local W1-partition gradient: X_k^T delta / B."""
        b = max(batch_size, 1)
        return np.column_stack(
            [accumulate_rows(shard, delta[:, h]) for h in range(self.hidden)]
        ) / b


class SequentialMLP:
    """Single-machine reference implementation (exactness baseline)."""

    def __init__(self, model: ColumnMLP, optimizer: Optimizer, n_features: int, seed=0):
        self.model = model
        self.w1 = model.init_w1(n_features, seed=seed)
        self.head = model.init_head(seed=seed)
        self._opt_w1 = optimizer.spawn()
        self._opt_head = {k: optimizer.spawn() for k in self.head}

    def loss(self, features: CSRMatrix, labels) -> float:
        z = self.model.partial_statistics(features, self.w1)
        return self.model.loss_from_statistics(z, labels, self.head)

    def step(self, features: CSRMatrix, labels, iteration: int) -> None:
        z = self.model.partial_statistics(features, self.w1)
        a, c, delta = self.model.backward(z, labels, self.head)
        grad_w1 = self.model.w1_gradient(features, delta, features.n_rows)
        head_grads = self.model.head_gradients(a, c, delta, features.n_rows)
        self._opt_w1.step(self.w1, grad_w1, iteration)
        for key, grad in head_grads.items():
            self._opt_head[key].step(self.head[key], grad, iteration)

    def predict_proba(self, features: CSRMatrix) -> np.ndarray:
        z = self.model.partial_statistics(features, self.w1)
        _, scores = self.model.forward(z, self.head)
        return _sigmoid(scores)


class MLPColumnTrainer:
    """ColumnSGD-style distributed training of :class:`ColumnMLP`.

    Statistics per iteration: ``B * hidden`` values gathered and
    broadcast once (one synchronisation per layer, as Section III-C
    prescribes for FC layers).  The head is replicated; every worker
    applies the identical head update, so replicas never diverge.
    """

    def __init__(
        self,
        model: ColumnMLP,
        optimizer: Optimizer,
        cluster: SimulatedCluster,
        batch_size: int = 1000,
        iterations: int = 100,
        eval_every: int = 10,
        seed: int = 0,
        block_size: int = 2048,
    ):
        check_positive(batch_size, "batch_size")
        check_positive(iterations, "iterations")
        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.batch_size = int(batch_size)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.seed = int(seed)
        self.block_size = int(block_size)

        self._dataset: Optional[Dataset] = None
        self._assignment = None
        self._stores = None
        self._index: Optional[TwoPhaseIndex] = None
        self._w1_parts: List[np.ndarray] = []
        self._w1_optimizers: List[Optimizer] = []
        self._head: Dict[str, np.ndarray] = {}
        self._head_optimizers: Dict[str, Optimizer] = {}

    # ------------------------------------------------------------------
    def load(self, dataset: Dataset):
        """Column-partition the data and W1; replicate the head."""
        K = self.cluster.n_workers
        self._dataset = dataset
        self._assignment = make_assignment("round_robin", dataset.n_features, K)
        self._stores, block_sizes, report = dispatch_block_based(
            dataset, self._assignment, self.cluster, block_size=self.block_size
        )
        self._index = TwoPhaseIndex(block_sizes, base_seed=self.seed)
        full_w1 = self.model.init_w1(dataset.n_features, seed=self.seed)
        self._w1_parts = [
            np.array(full_w1[self._assignment.columns_of(k)], copy=True)
            for k in range(K)
        ]
        self._w1_optimizers = [self.optimizer.spawn() for _ in range(K)]
        # One logical head; replicas would stay identical, so a single
        # array stands in for all of them (same trick as model replicas
        # in backup computation).
        self._head = self.model.init_head(seed=self.seed)
        self._head_optimizers = {k: self.optimizer.spawn() for k in self._head}
        return report

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset = None) -> TrainingResult:
        """Train; returns the usual loss/time trace."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="ColumnSGD-MLP",
            model="mlp{}".format(self.model.hidden),
            dataset=self._dataset.name,
            batch_size=self.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.eval_every:
            self._record(result, -1, 0.0, 0)

        for t in range(self.iterations):
            bytes_before = self.cluster.network.total_bytes()
            duration = self._run_iteration(t)
            self.cluster.clock.advance(duration)
            evaluate = bool(self.eval_every) and (
                (t + 1) % self.eval_every == 0 or t == self.iterations - 1
            )
            self._record(
                result, t, duration,
                self.cluster.network.total_bytes() - bytes_before,
                evaluate=evaluate,
            )
        return result

    def _run_iteration(self, t: int) -> float:
        K = self.cluster.n_workers
        cost = self.cluster.cost
        draws = self._index.sample(t, self.batch_size)
        H = self.model.hidden

        # Phase 1: each worker's partial Z over its shard.
        shards = []
        labels = None
        z_total = None
        compute = []
        for k in range(K):
            shard, shard_labels = self._stores[k].assemble_batch(draws)
            shards.append(shard)
            labels = shard_labels
            part = self.model.partial_statistics(shard, self._w1_parts[k])
            z_total = part if z_total is None else z_total + part
            compute.append(cost.task_overhead + cost.sparse_work(shard.nnz, passes=H))
        phase1 = max(compute)

        stats_size = dense_vector_bytes(self.batch_size * H)
        gather = self.cluster.topology.gather(
            MessageKind.STATISTICS_PUSH, [stats_size] * K
        )
        reduce_time = cost.dense_work(K * self.batch_size * H)
        bcast = self.cluster.topology.broadcast(MessageKind.STATISTICS_BCAST, stats_size)

        # Phase 2: local backward; W1 partitions and the replicated head.
        a, c, delta = self.model.backward(z_total, labels, self._head)
        update = []
        for k in range(K):
            grad = self.model.w1_gradient(shards[k], delta, self.batch_size)
            self._w1_optimizers[k].step(self._w1_parts[k], grad, t)
            update.append(cost.task_overhead + cost.sparse_work(shards[k].nnz, passes=H))
        head_grads = self.model.head_gradients(a, c, delta, self.batch_size)
        for key, grad in head_grads.items():
            self._head_optimizers[key].step(self._head[key], grad, t)
        phase2 = max(update) + cost.dense_work(2 * H + 1)

        return phase1 + gather + reduce_time + bcast + phase2

    # ------------------------------------------------------------------
    def current_w1(self) -> np.ndarray:
        """Reassemble the full W1 from the partitions."""
        full = np.zeros((self._dataset.n_features, self.model.hidden))
        for k in range(self.cluster.n_workers):
            full[self._assignment.columns_of(k)] = self._w1_parts[k]
        return full

    def head(self) -> Dict[str, np.ndarray]:
        """The replicated head parameters."""
        return {k: v.copy() for k, v in self._head.items()}

    def evaluate_loss(self, dataset: Dataset = None) -> float:
        """Full-train loss (not charged to simulated time)."""
        data = dataset if dataset is not None else self._dataset
        z = self.model.partial_statistics(data.features, self.current_w1())
        return self.model.loss_from_statistics(z, data.labels, self._head)

    def _record(self, result, iteration, duration, bytes_sent, evaluate=True):
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "training diverged at iteration {} (loss={})".format(iteration, loss)
            )
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now(),
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
            )
        )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
