"""CoCoA-style distributed dual coordinate ascent (SDCA local solvers).

The last of the paper's Section VI optimizer families: CoCoA (Jaggi et
al., NIPS 2014) *row*-partitions the data, gives each worker a dual
variable per local example, runs a local SDCA solver between syncs, and
combines the resulting primal updates — "accelerates local computation
in a primal-dual setting, and then combines partial results".  Its
communication is ``O(m)`` model deltas per round, the opposite trade
from ColumnSGD's ``O(B)`` statistics.

Implemented here for L2-regularised least squares (ridge), whose SDCA
coordinate step is closed-form.  Primal/dual relationship::

    w = (1/(lam * n)) X^T alpha
    primal P(w) = 1/(2n) ||X w - y||^2 + lam/2 ||w||^2
    dual   D(a) = -1/(2n) sum_i (a_i^2 / 2 ... )   (not materialised;
                  convergence is asserted against the closed-form optimum)

Per local step on example i (squared loss)::

    delta_i = (y_i - x_i.w - a_i) / (1 + ||x_i||^2 / (lam * n))
    a_i    += delta_i
    w      += delta_i * x_i / (lam * n)      (locally, between syncs)

Per round each worker performs ``local_steps`` such updates on its own
shard, accumulates its primal delta, and the master averages the K
deltas (the safe ``1/K`` combiner of the CoCoA paper) and broadcasts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.results import IterationRecord, TrainingResult
from repro.datasets.dataset import Dataset
from repro.engine import (
    BarrierSync,
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    run_training_loop,
)
from repro.errors import TrainingError
from repro.linalg.ops import row_dots
from repro.net.message import MessageKind
from repro.partition.row import RowPartitioner
from repro.sim.cluster import SimulatedCluster
from repro.storage.serialization import dense_vector_bytes
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


class CoCoATrainer:
    """Distributed ridge regression via CoCoA with SDCA local solvers.

    Parameters
    ----------
    lam:
        Ridge strength; must be > 0 (the dual needs strong convexity).
    local_steps:
        SDCA coordinate updates per worker per round; more local work
        means fewer (expensive, O(m)) synchronisations.
    aggregation:
        ``'safe'`` (default) — CoCoA+'s sigma' = K subproblem scaling:
        each local quadratic term is inflated K-fold, making the summed
        updates provably safe however strongly the row shards couple
        through shared features; ``'naive'`` — sigma' = 1 adding, stable
        only on nearly-decoupled data (kept to demonstrate *why* the
        scaling exists).
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        lam: float = 0.1,
        local_steps: int = 50,
        iterations: int = 50,
        eval_every: int = 5,
        aggregation: str = "safe",
        seed: int = 0,
    ):
        check_positive(lam, "lam")
        check_positive(local_steps, "local_steps")
        check_positive(iterations, "iterations")
        if aggregation not in ("safe", "naive"):
            raise ValueError("aggregation must be 'safe' or 'naive'")
        self.cluster = cluster
        self.lam = float(lam)
        self.local_steps = int(local_steps)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.aggregation = aggregation
        self.seed = int(seed)

        self._dataset: Optional[Dataset] = None
        self._partitioner: Optional[RowPartitioner] = None
        self._w: Optional[np.ndarray] = None
        self._alphas: List[np.ndarray] = []
        self._shard_sq_norms: List[np.ndarray] = []
        self._rngs = None
        self._engine: Optional[RoundEngine] = None

    # ------------------------------------------------------------------
    def load(self, dataset: Dataset):
        """Row-partition the data; w = 0, all duals = 0."""
        K = self.cluster.n_workers
        self._dataset = dataset
        self._partitioner = RowPartitioner(dataset, K, seed=self.seed)
        self._w = np.zeros(dataset.n_features)
        self._alphas = []
        self._shard_sq_norms = []
        for k in range(K):
            shard = self._partitioner.shard(k)
            self._alphas.append(np.zeros(shard.n_rows))
            norms = np.zeros(shard.n_rows)
            rows_of = np.repeat(
                np.arange(shard.n_rows), shard.features.row_nnz()
            )
            np.add.at(norms, rows_of, shard.features.data ** 2)
            self._shard_sq_norms.append(norms)
        self._rngs = [rng_from_seed(self.seed * 31 + k) for k in range(K)]
        return None

    # ------------------------------------------------------------------
    def fit(self, dataset: Optional[Dataset] = None) -> TrainingResult:
        """Run CoCoA rounds; returns the usual loss/time trace."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="CoCoA+" if self.aggregation == "safe" else "CoCoA-naive",
            model="ridge_sdca",
            dataset=self._dataset.name,
            batch_size=self.local_steps,
            n_workers=self.cluster.n_workers,
        )
        if self.eval_every:
            self._record(result, -1, 0.0, 0)

        self._engine = RoundEngine(self, self.cluster)
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=self.iterations,
            eval_every=self.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate=evaluate
            ),
        )
        return result

    def run_round(self, t: int):
        """One engine round (used by fit(), benchmarks and tests)."""
        if self._engine is None:
            self._engine = RoundEngine(self, self.cluster)
        return self._engine.run_round(t)

    # ------------------------------------------------------------------
    def round_spec(self) -> RoundSpec:
        """One CoCoA round: local SDCA passes, then the O(m) combine —
        workers push primal deltas, the master averages and broadcasts."""
        return RoundSpec(
            system="CoCoA+" if self.aggregation == "safe" else "CoCoA-naive",
            sync=BarrierSync(),
            phases=(
                ComputePhase(
                    "local_sdca", run="_phase_local_sdca", synchronized=True
                ),
                CommPhase(
                    "push",
                    kind=MessageKind.GRADIENT_PUSH,
                    pattern="gather",
                    sizes="_model_delta_sizes",
                ),
                MasterPhase("combine", run="_phase_combine"),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.MODEL_PULL,
                    pattern="broadcast",
                    sizes="_model_delta_size",
                ),
            ),
        )

    def _phase_local_sdca(self, ctx):
        K = self.cluster.n_workers
        n = self._dataset.n_rows
        lam_n = self.lam * n
        cost = self.cluster.cost
        # CoCoA+'s safe subproblem scaling: inflate each local quadratic
        # term sigma-fold so the K summed updates cannot overshoot.
        sigma = float(K) if self.aggregation == "safe" else 1.0

        # CoCoA workers keep dense local model replicas by design; the
        # O(d) maintenance is charged in _phase_combine's dense_work
        # (K * w.size), not in the per-row SDCA kernel charged below.
        total_delta_w = np.zeros_like(self._w)  # lint: noqa[R015,R016]
        per_worker = {}
        for k in range(K):
            shard = self._partitioner.shard(k)
            alphas = self._alphas[k]
            sq_norms = self._shard_sq_norms[k]
            local_w = self._w.copy()
            delta_w = np.zeros_like(self._w)  # lint: noqa[R015,R016] — dense replica, charged in _phase_combine
            picks = self._rngs[k].integers(0, shard.n_rows, size=self.local_steps)
            nnz_touched = 0
            for i in picks:
                row = shard.features.row(int(i))
                nnz_touched += row.nnz
                margin = row.dot(local_w)
                delta = (shard.labels[i] - margin - alphas[i]) / (
                    1.0 + sigma * sq_norms[i] / lam_n
                )
                alphas[i] += delta
                step = delta / lam_n
                # The local view advances sigma-fold (anticipating the
                # other K-1 workers' coupled moves); the global delta is
                # the unscaled step so w == X^T alpha / (lam n) holds.
                for idx, val in zip(row.indices, row.values):
                    local_w[idx] += sigma * step * val
                    delta_w[idx] += step * val
            total_delta_w += delta_w
            per_worker[k] = cost.task_overhead + cost.sparse_work(
                nnz_touched, passes=2
            )

        self._w += total_delta_w
        return per_worker

    def _model_delta_size(self, ctx) -> int:
        return dense_vector_bytes(self._w.size)

    def _model_delta_sizes(self, ctx) -> List[int]:
        return [self._model_delta_size(ctx)] * self.cluster.n_workers

    def _phase_combine(self, ctx) -> float:
        return self.cluster.cost.dense_work(self.cluster.n_workers * self._w.size)

    # ------------------------------------------------------------------
    def current_params(self) -> np.ndarray:
        """The shared primal model."""
        if self._w is None:
            raise TrainingError("call load() first")
        return self._w.copy()

    def primal_dual_consistency(self) -> float:
        """Max abs deviation of ``w`` from ``X^T alpha / (lam n)``.

        Exact (to float) under both modes: the global delta always uses
        the unscaled step, sigma only inflates the worker's *local view*.
        """
        n = self._dataset.n_rows
        reconstructed = np.zeros_like(self._w)
        for k in range(self.cluster.n_workers):
            shard = self._partitioner.shard(k)
            from repro.linalg.ops import accumulate_rows

            reconstructed += accumulate_rows(shard.features, self._alphas[k])
        reconstructed /= self.lam * n
        return float(np.max(np.abs(reconstructed - self._w)))

    def evaluate_loss(self, dataset: Optional[Dataset] = None) -> float:
        """Primal objective P(w)."""
        data = dataset if dataset is not None else self._dataset
        residual = row_dots(data.features, self._w) - data.labels
        return float(
            0.5 * np.mean(residual ** 2) + 0.5 * self.lam * np.dot(self._w, self._w)
        )

    def _record(self, result, iteration, duration, bytes_sent, evaluate=True):
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "CoCoA diverged at round {} (loss={}); use 'average' "
                "aggregation".format(iteration, loss)
            )
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now(),
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
            )
        )
