"""Extensions beyond the paper's core evaluation.

The paper's Section III-C sketches how ColumnSGD can support neural
networks whose first layer is fully connected: partition the FC weight
matrix by input columns and synchronise per-layer statistics.
:mod:`repro.extensions.mlp` implements that sketch for a one-hidden-
layer binary classifier.
"""

from repro.extensions.mlp import ColumnMLP, MLPColumnTrainer, SequentialMLP
from repro.extensions.coordinate_descent import RidgeCDTrainer
from repro.extensions.cocoa import CoCoATrainer
from repro.extensions.deep_mlp import (
    DeepColumnMLP,
    DeepMLPColumnTrainer,
    SequentialDeepMLP,
)

__all__ = [
    "ColumnMLP",
    "MLPColumnTrainer",
    "SequentialMLP",
    "RidgeCDTrainer",
    "CoCoATrainer",
    "DeepColumnMLP",
    "DeepMLPColumnTrainer",
    "SequentialDeepMLP",
]
