"""Distributed coordinate descent on column partitions (Hydra-style).

The paper's related work contrasts ColumnSGD with coordinate-descent
systems (Hydra, CoCoA) that access data column-wise *natively*.  This
module implements that family for ridge regression so the repository can
run the comparison:

    minimise  (1/2N) ||X w - y||^2  +  (lam/2) ||w||^2

Each worker owns a column shard (the same worksets ColumnSGD loads) and
keeps a full residual copy ``r = X w - y``.  Per round, every worker
exactly minimises a sample of *its own* coordinates against its local
residual, then the master sums the residual deltas and broadcasts the
total — communication is ``O(N)`` per round versus ColumnSGD's
``O(B)``, which is precisely the trade the paper's discussion points at.

Because the residual is linear in ``w``, the synchronized residual stays
*exactly* ``X w - y`` regardless of cross-worker staleness inside a
round (tests assert this); staleness only affects update quality, which
``step_scale`` can damp on dense data.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.results import IterationRecord, TrainingResult
from repro.datasets.dataset import Dataset
from repro.engine import (
    BarrierSync,
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    run_training_loop,
)
from repro.errors import TrainingError
from repro.linalg import CSRMatrix
from repro.net.message import MessageKind
from repro.partition.column import make_assignment
from repro.partition.dispatch import dispatch_block_based
from repro.sim.cluster import SimulatedCluster
from repro.storage.serialization import dense_vector_bytes
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_non_negative, check_positive


class _ColumnShard:
    """One worker's shard in column-major form (CD needs column access)."""

    def __init__(self, features: CSRMatrix):
        self.n_rows = features.n_rows
        self.local_dim = features.n_cols
        order = np.argsort(features.indices, kind="stable")
        rows_of_entries = np.repeat(np.arange(features.n_rows), features.row_nnz())
        cols_sorted = features.indices[order]
        self._rows = rows_of_entries[order]
        self._vals = features.data[order]
        counts = np.bincount(cols_sorted, minlength=self.local_dim)
        self._colptr = np.zeros(self.local_dim + 1, dtype=np.int64)
        np.cumsum(counts, out=self._colptr[1:])
        self.col_sq_norms = np.zeros(self.local_dim)
        np.add.at(self.col_sq_norms, cols_sorted, self._vals ** 2)
        self.nnz = int(self._vals.size)

    def column(self, j: int):
        """(row ids, values) of local column ``j``."""
        lo, hi = self._colptr[j], self._colptr[j + 1]
        return self._rows[lo:hi], self._vals[lo:hi]


class RidgeCDTrainer:
    """Distributed ridge regression via parallel coordinate descent.

    Parameters
    ----------
    lam:
        L2 regularisation strength (0 = plain least squares).
    coords_per_round:
        Coordinates each worker updates per round; defaults to 1/4 of
        its local dimension.  More coordinates = more progress per sync
        but more cross-worker staleness.
    step_scale:
        Damping on each coordinate step (Hydra's safe step size); 1.0 is
        fine for sparse data where cross-worker columns rarely collide.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        lam: float = 0.0,
        coords_per_round: Optional[int] = None,
        step_scale: float = 1.0,
        iterations: int = 100,
        eval_every: int = 10,
        seed: int = 0,
        block_size: int = 2048,
    ):
        check_non_negative(lam, "lam")
        check_positive(step_scale, "step_scale")
        check_positive(iterations, "iterations")
        self.cluster = cluster
        self.lam = float(lam)
        self.coords_per_round = coords_per_round
        self.step_scale = float(step_scale)
        self.iterations = int(iterations)
        self.eval_every = int(eval_every)
        self.seed = int(seed)
        self.block_size = int(block_size)

        self._dataset: Optional[Dataset] = None
        self._assignment = None
        self._shards: List[_ColumnShard] = []
        self._weights: List[np.ndarray] = []
        self._residual: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._rngs = None
        self._engine: Optional[RoundEngine] = None

    # ------------------------------------------------------------------
    def load(self, dataset: Dataset):
        """Column-partition the data; initialise w = 0, r = -y."""
        K = self.cluster.n_workers
        self._dataset = dataset
        self._assignment = make_assignment("round_robin", dataset.n_features, K)
        stores, _, report = dispatch_block_based(
            dataset, self._assignment, self.cluster, block_size=self.block_size
        )
        shard_matrices = []
        labels = None
        for store in stores:
            parts = [store.get(b).features for b in store.block_ids()]
            shard_matrices.append(CSRMatrix.vstack(parts))
            labels = np.concatenate(
                [store.get(b).labels for b in store.block_ids()]
            )
        self._labels = labels
        self._shards = [_ColumnShard(matrix) for matrix in shard_matrices]
        self._weights = [np.zeros(shard.local_dim) for shard in self._shards]
        self._residual = -labels.copy()
        self._rngs = [
            rng_from_seed(self.seed * 1000003 + k + 1) for k in range(K)
        ]
        return report

    # ------------------------------------------------------------------
    def fit(self, dataset: Optional[Dataset] = None) -> TrainingResult:
        """Run CD rounds; returns the usual loss/time trace."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        result = TrainingResult(
            system="RidgeCD",
            model="ridge_cd",
            dataset=self._dataset.name,
            batch_size=0,
            n_workers=self.cluster.n_workers,
        )
        if self.eval_every:
            self._record(result, -1, 0.0, 0)

        self._engine = RoundEngine(self, self.cluster)
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=self.iterations,
            eval_every=self.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate=evaluate
            ),
        )
        return result

    def run_round(self, t: int):
        """One engine round (used by fit(), benchmarks and tests)."""
        if self._engine is None:
            self._engine = RoundEngine(self, self.cluster)
        return self._engine.run_round(t)

    # ------------------------------------------------------------------
    def round_spec(self) -> RoundSpec:
        """One CD round: local exact coordinate minimisations, then the
        O(N) residual-delta gather/sum/broadcast."""
        return RoundSpec(
            system="RidgeCD",
            sync=BarrierSync(),
            phases=(
                ComputePhase("local_cd", run="_phase_local_cd", synchronized=True),
                CommPhase(
                    "push",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_residual_sizes",
                ),
                MasterPhase("reduce", run="_phase_reduce"),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.STATISTICS_BCAST,
                    pattern="broadcast",
                    sizes="_residual_size",
                ),
            ),
        )

    def _phase_local_cd(self, ctx):
        n = self._dataset.n_rows
        cost = self.cluster.cost
        total_delta = np.zeros(n)
        per_worker = {}
        for k, shard in enumerate(self._shards):
            want = self.coords_per_round or max(1, shard.local_dim // 4)
            want = min(want, shard.local_dim)
            coords = self._rngs[k].choice(shard.local_dim, size=want, replace=False)
            local_residual = self._residual.copy()
            local_delta = np.zeros(n)
            nnz_touched = 0
            for j in coords:
                rows, vals = shard.column(int(j))
                nnz_touched += rows.size
                curvature = shard.col_sq_norms[j] / n + self.lam
                if curvature == 0.0:
                    continue
                gradient = float(np.dot(vals, local_residual[rows])) / n
                gradient += self.lam * self._weights[k][j]
                delta = -self.step_scale * gradient / curvature
                self._weights[k][j] += delta
                local_residual[rows] += delta * vals
                local_delta[rows] += delta * vals
            total_delta += local_delta
            per_worker[k] = cost.task_overhead + cost.sparse_work(
                nnz_touched, passes=2
            )
        ctx.scratch["total_delta"] = total_delta
        return per_worker

    def _residual_size(self, ctx) -> int:
        return dense_vector_bytes(self._dataset.n_rows)

    def _residual_sizes(self, ctx) -> List[int]:
        return [self._residual_size(ctx)] * self.cluster.n_workers

    def _phase_reduce(self, ctx) -> float:
        # master sums residual deltas and broadcasts the total: O(N)
        self._residual += ctx.scratch["total_delta"]
        return self.cluster.cost.dense_work(
            self.cluster.n_workers * self._dataset.n_rows
        )

    # ------------------------------------------------------------------
    def current_params(self) -> np.ndarray:
        """Full weight vector assembled from the partitions."""
        full = np.zeros(self._dataset.n_features)
        for k in range(self.cluster.n_workers):
            full[self._assignment.columns_of(k)] = self._weights[k]
        return full

    def residual(self) -> np.ndarray:
        """The synchronized residual ``X w - y``."""
        return self._residual.copy()

    def evaluate_loss(self, dataset: Optional[Dataset] = None) -> float:
        """Objective value (mean squared residual / 2 + ridge penalty)."""
        if dataset is None:
            r = self._residual
            w = self.current_params()
            return float(0.5 * np.mean(r ** 2) + 0.5 * self.lam * np.dot(w, w))
        from repro.linalg.ops import row_dots

        w = self.current_params()
        r = row_dots(dataset.features, w) - dataset.labels
        return float(0.5 * np.mean(r ** 2) + 0.5 * self.lam * np.dot(w, w))

    def _record(self, result, iteration, duration, bytes_sent, evaluate=True):
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "CD diverged at round {} (loss={}); lower step_scale".format(
                    iteration, loss
                )
            )
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now(),
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
            )
        )
