"""Sparse dataset transforms (pure functions; datasets are immutable)."""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.linalg import CSRMatrix
from repro.utils.validation import check_positive


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 mixer over uint64 arrays (deterministic, well spread)."""
    x = x.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_features(dataset: Dataset, n_buckets: int, seed: int = 0, signed: bool = True) -> Dataset:
    """The hashing trick: project features into ``n_buckets`` dimensions.

    Each original feature id maps to bucket ``h(id) % n_buckets``; with
    ``signed=True`` a second hash flips the value's sign so colliding
    features cancel in expectation (Weinberger et al., 2009).  Values of
    features landing in the same bucket within one row are summed.
    """
    check_positive(n_buckets, "n_buckets")
    features = dataset.features
    mixed = _mix64(features.indices.astype(np.uint64) * np.uint64(2 * seed + 1))
    buckets = (mixed % np.uint64(n_buckets)).astype(np.int64)
    if signed:
        signs = np.where((mixed >> np.uint64(32)) & np.uint64(1), 1.0, -1.0)
    else:
        signs = np.ones(features.nnz)
    values = features.data * signs

    # Rebuild CSR row by row, merging duplicate buckets inside each row.
    indptr = [0]
    out_indices = []
    out_values = []
    for i in range(features.n_rows):
        lo, hi = features.indptr[i], features.indptr[i + 1]
        row_buckets = buckets[lo:hi]
        row_values = values[lo:hi]
        if row_buckets.size:
            uniq, inverse = np.unique(row_buckets, return_inverse=True)
            summed = np.zeros(uniq.size)
            np.add.at(summed, inverse, row_values)
            keep = summed != 0.0
            out_indices.append(uniq[keep])
            out_values.append(summed[keep])
            indptr.append(indptr[-1] + int(keep.sum()))
        else:
            indptr.append(indptr[-1])
    hashed = CSRMatrix(
        np.asarray(indptr, dtype=np.int64),
        np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64),
        np.concatenate(out_values) if out_values else np.empty(0),
        n_buckets,
    )
    return Dataset(hashed, dataset.labels, name="{}-hashed{}".format(dataset.name, n_buckets))


def normalize_rows(dataset: Dataset) -> Dataset:
    """Scale each row to unit L2 norm (all-zero rows are left alone)."""
    features = dataset.features
    norms_sq = np.zeros(features.n_rows)
    rows_of = np.repeat(np.arange(features.n_rows), features.row_nnz())
    np.add.at(norms_sq, rows_of, features.data ** 2)
    norms = np.sqrt(norms_sq)
    norms[norms == 0.0] = 1.0
    scaled = CSRMatrix(
        features.indptr.copy(),
        features.indices.copy(),
        features.data / norms[rows_of],
        features.n_cols,
    )
    return Dataset(scaled, dataset.labels, name=dataset.name)


def binarize(dataset: Dataset) -> Dataset:
    """Replace every stored value with 1.0 (one-hot semantics)."""
    features = dataset.features
    ones = CSRMatrix(
        features.indptr.copy(),
        features.indices.copy(),
        np.ones(features.nnz),
        features.n_cols,
    )
    return Dataset(ones, dataset.labels, name=dataset.name)


def scale_features(dataset: Dataset) -> Dataset:
    """Divide each column by its max |value| (columns with none stay)."""
    features = dataset.features
    max_abs = np.zeros(features.n_cols)
    np.maximum.at(max_abs, features.indices, np.abs(features.data))
    max_abs[max_abs == 0.0] = 1.0
    scaled = CSRMatrix(
        features.indptr.copy(),
        features.indices.copy(),
        features.data / max_abs[features.indices],
        features.n_cols,
    )
    return Dataset(scaled, dataset.labels, name=dataset.name)
