"""Preprocessing transforms for sparse datasets.

The paper's CTR datasets arrive pre-hashed into fixed dimensions; this
package provides the matching tooling for users bringing raw data:

* :func:`hash_features` — the hashing trick: fold arbitrary feature ids
  into ``n_buckets`` dimensions with a sign hash (Weinberger et al.),
  so any LIBSVM file can target a chosen model size;
* :func:`normalize_rows` — L2 row normalisation (standard for
  hinge/logistic training on count features);
* :func:`binarize` — clamp non-zero values to 1.0 (one-hot semantics);
* :func:`scale_features` — per-column scaling by max |value|.
"""

from repro.preprocess.transforms import (
    hash_features,
    normalize_rows,
    binarize,
    scale_features,
)

__all__ = ["hash_features", "normalize_rows", "binarize", "scale_features"]
