"""Generalized linear models: LR, SVM, Least Squares.

For GLMs the statistics are a single dot product per example
(Appendix VIII-A/B): ``s_i = x_i . w``, trivially additive across column
shards.  Given the complete dots, the mean batch gradient of any shard is
``X_k^T c / B`` where ``c_i`` is the loss derivative at ``(s_i, y_i)``.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import CSRMatrix, accumulate_rows, row_dots
from repro.models.base import StatisticsModel
from repro.models.losses import (
    HingeLoss,
    HuberLoss,
    LogisticLoss,
    PointwiseLoss,
    SquaredHingeLoss,
    SquaredLoss,
    _sigmoid,
)
from repro.models.regularizers import Regularizer


class GeneralizedLinearModel(StatisticsModel):
    """A GLM parameterised by a pointwise loss."""

    statistics_width = 1

    def __init__(self, loss: PointwiseLoss, regularizer: Regularizer = None):
        super().__init__(regularizer)
        self.loss_fn = loss

    # -- layout ---------------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        return (n_features,)

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        return np.zeros(n_features, dtype=np.float64)

    # -- decomposition ----------------------------------------------------
    def compute_statistics(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        dots = row_dots(features, params)
        return dots.reshape(-1, 1)

    def gradient_from_statistics(self, features, labels, statistics, params):
        scores = np.asarray(statistics)[:, 0]
        coefficients = self.loss_fn.derivative(scores, labels)
        batch = max(len(labels), 1)
        grad = accumulate_rows(features, coefficients) / batch
        return grad + self.regularizer.gradient(params)

    def loss_from_statistics(self, statistics, labels) -> float:
        scores = np.asarray(statistics)[:, 0]
        if scores.size == 0:
            return 0.0
        return float(np.mean(self.loss_fn.loss(scores, labels)))

    def predict_from_statistics(self, statistics) -> np.ndarray:
        return np.asarray(statistics)[:, 0]


class LogisticRegression(GeneralizedLinearModel):
    """Binary LR with labels in {-1, +1} (Appendix VIII-B)."""

    name = "lr"

    def __init__(self, regularizer: Regularizer = None):
        super().__init__(LogisticLoss(), regularizer)

    def predict_from_statistics(self, statistics) -> np.ndarray:
        """Class probabilities P(y = +1 | x)."""
        return _sigmoid(np.asarray(statistics)[:, 0])

    def predict_labels(self, features, params) -> np.ndarray:
        """Hard {-1, +1} labels."""
        return np.where(self.predict(features, params) >= 0.5, 1.0, -1.0)


class LinearSVM(GeneralizedLinearModel):
    """Linear SVM via hinge loss (Appendix VIII-A)."""

    name = "svm"

    def __init__(self, regularizer: Regularizer = None):
        super().__init__(HingeLoss(), regularizer)

    def predict_labels(self, features, params) -> np.ndarray:
        """Hard {-1, +1} labels from the margin sign."""
        margins = self.predict(features, params)
        return np.where(margins >= 0.0, 1.0, -1.0)


class LeastSquares(GeneralizedLinearModel):
    """Linear regression with squared loss."""

    name = "least_squares"

    def __init__(self, regularizer: Regularizer = None):
        super().__init__(SquaredLoss(), regularizer)


class SmoothSVM(GeneralizedLinearModel):
    """L2-SVM: squared hinge loss, differentiable at the margin."""

    name = "smooth_svm"

    def __init__(self, regularizer: Regularizer = None):
        super().__init__(SquaredHingeLoss(), regularizer)

    def predict_labels(self, features, params) -> np.ndarray:
        """Hard {-1, +1} labels from the margin sign."""
        margins = self.predict(features, params)
        return np.where(margins >= 0.0, 1.0, -1.0)


class HuberRegression(GeneralizedLinearModel):
    """Outlier-robust linear regression with the Huber loss."""

    name = "huber"

    def __init__(self, delta: float = 1.0, regularizer: Regularizer = None):
        super().__init__(HuberLoss(delta), regularizer)
        self.delta = float(delta)
