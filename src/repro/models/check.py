"""Model verification helpers for custom-model authors.

Anyone implementing the Fig 12 interface (:class:`UserDefinedModel`) or
subclassing :class:`StatisticsModel` should run these two checks before
training at scale:

* :func:`check_gradients` — finite-difference validation of
  ``gradient_from_statistics`` against ``loss_from_statistics``;
* :func:`check_decomposition` — the Section II-C identities: statistics
  additivity across column shards and per-partition gradient recovery.

Both raise :class:`ModelCheckError` with a pinpointed report on
failure and return silently on success (mirroring ``np.testing``).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import ReproError
from repro.models.base import StatisticsModel
from repro.partition.column import make_assignment
from repro.utils.rng import rng_from_seed


class ModelCheckError(ReproError):
    """A model failed gradient or decomposition verification."""


def _perturbed_params(model: StatisticsModel, n_features: int, seed) -> np.ndarray:
    rng = rng_from_seed(seed)
    params = model.init_params(n_features, seed=seed).astype(np.float64)
    params += rng.normal(0.0, 0.1, size=params.shape)
    return params


def check_gradients(
    model: StatisticsModel,
    dataset: Dataset,
    params: np.ndarray = None,
    eps: float = 1e-6,
    atol: float = 1e-4,
    max_coordinates: int = 200,
    seed: int = 0,
    skip_columns: tuple = (),
) -> None:
    """Finite-difference check of the model's analytic gradient.

    Samples up to ``max_coordinates`` parameter entries (all of them for
    small models) and compares central differences of ``model.loss``
    against ``model.gradient``.  ``skip_columns`` exempts frozen
    metadata columns (e.g. FFM's field ids).
    """
    if params is None:
        params = _perturbed_params(model, dataset.n_features, seed)
    params = np.array(params, dtype=np.float64, copy=True)
    analytic = model.gradient(dataset.features, dataset.labels, params)
    flat = params.reshape(-1)
    flat_grad = analytic.reshape(-1)
    rng = rng_from_seed(seed)
    total = flat.size
    picks = (
        np.arange(total)
        if total <= max_coordinates
        else rng.choice(total, size=max_coordinates, replace=False)
    )
    n_cols = params.shape[1] if params.ndim == 2 else 1
    failures = []
    for index in picks:
        if params.ndim == 2 and (index % n_cols) in skip_columns:
            continue
        original = flat[index]
        flat[index] = original + eps
        up = model.loss(dataset.features, dataset.labels, params)
        flat[index] = original - eps
        down = model.loss(dataset.features, dataset.labels, params)
        flat[index] = original
        numeric = (up - down) / (2 * eps)
        if abs(numeric - flat_grad[index]) > atol:
            failures.append((int(index), float(flat_grad[index]), float(numeric)))
    if failures:
        worst = max(failures, key=lambda f: abs(f[1] - f[2]))
        raise ModelCheckError(
            "gradient check failed at {} of {} sampled coordinates; worst: "
            "param[{}] analytic={:.6g} numeric={:.6g}".format(
                len(failures), len(picks), *worst
            )
        )


def check_decomposition(
    model: StatisticsModel,
    dataset: Dataset,
    params: np.ndarray = None,
    n_workers: int = 3,
    scheme: str = "round_robin",
    atol: float = 1e-9,
    seed: int = 0,
) -> None:
    """Verify the Section II-C identities over a column partitioning.

    1. ``sum_k compute_statistics(X_k, w_k) == compute_statistics(X, w)``
    2. ``gradient(X, y, S, w)[cols_k] == gradient(X_k, y, S, w_k)``
    """
    if params is None:
        params = _perturbed_params(model, dataset.n_features, seed)
    assignment = make_assignment(scheme, dataset.n_features, n_workers)
    full_stats = model.compute_statistics(dataset.features, params)
    partial = None
    for k in range(n_workers):
        cols = assignment.columns_of(k)
        shard_stats = model.compute_statistics(
            dataset.features.select_columns(cols), params[cols]
        )
        partial = shard_stats if partial is None else partial + shard_stats
    if not np.allclose(full_stats, partial, atol=atol):
        raise ModelCheckError(
            "statistics are not additive across column shards "
            "(max abs error {:.3g})".format(np.max(np.abs(full_stats - partial)))
        )

    full_grad = model.gradient_from_statistics(
        dataset.features, dataset.labels, full_stats, params
    )
    for k in range(n_workers):
        cols = assignment.columns_of(k)
        local = model.gradient_from_statistics(
            dataset.features.select_columns(cols),
            dataset.labels,
            full_stats,
            params[cols],
        )
        if not np.allclose(full_grad[cols], local, atol=atol):
            raise ModelCheckError(
                "partition {} gradient does not match the full gradient "
                "restricted to its columns (max abs error {:.3g})".format(
                    k, np.max(np.abs(full_grad[cols] - local))
                )
            )
