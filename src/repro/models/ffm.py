"""Field-aware Factorization Machine (Juan et al., RecSys 2016).

FFM extends the paper's FM (Appendix VIII-D): each feature carries one
latent vector *per field*, and the pair (i, j) interacts through
``<v_{i, field(j)}, v_{j, field(i)}>``.  It decomposes under the
statistics protocol just like FM does, with field-pair partial sums as
the statistics:

    T_{a->b,f} = sum_{j in field a} v_{j,b,f} x_j      (additive!)
    Q_{a,f}    = sum_{j in field a} v_{j,a,f}^2 x_j^2  (additive!)

    y(x) = x.w
         + sum_f sum_{a<b} T_{a->b,f} T_{b->a,f}            (cross-field)
         + 1/2 sum_f sum_a (T_{a->a,f}^2 - Q_{a,f})          (within-field)

so the statistics per example are ``s0 = x.w - 1/2 sum Q`` plus the
``A^2 F`` values ``T_{a->b,f}`` — width ``1 + A^2 F``, independent of m.

Collocation trick: each feature's *field id* is stored as a frozen
extra parameter column riding with its latent vectors, so a worker can
compute field-restricted sums from its shard + partition alone and the
:class:`~repro.models.base.StatisticsModel` interface stays unchanged.
The field column receives a zero gradient (and is masked out of the
regularizer), so no optimizer ever moves it.

Parameter layout per feature: ``[field_id, w, v_{.,0,0..F-1}, ...,
v_{.,A-1,0..F-1}]`` — shape ``(m, 2 + A*F)``.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import CSRMatrix, accumulate_rows, accumulate_rows_squared, row_dots, row_dots_squared
from repro.models.base import StatisticsModel
from repro.models.losses import LogisticLoss, _sigmoid
from repro.models.regularizers import Regularizer
from repro.utils.validation import check_positive


class FieldAwareFM(StatisticsModel):
    """Degree-2 FFM with logistic loss and labels in {-1, +1}.

    Parameters
    ----------
    field_of:
        Global map feature id -> field id in ``[0, n_fields)``.
    n_factors:
        Latent dimensions per (feature, field) pair.
    """

    name = "ffm"

    def __init__(
        self,
        field_of,
        n_factors: int = 4,
        init_std: float = 0.05,
        regularizer: Regularizer = None,
    ):
        super().__init__(regularizer)
        check_positive(n_factors, "n_factors")
        check_positive(init_std, "init_std")
        field_of = np.asarray(field_of, dtype=np.int64)
        if field_of.ndim != 1 or field_of.size == 0:
            raise ValueError("field_of must be a non-empty 1-D array")
        if field_of.min() < 0:
            raise ValueError("field ids must be >= 0")
        self.field_of = field_of
        self.n_fields = int(field_of.max()) + 1
        self.n_factors = int(n_factors)
        self.init_std = float(init_std)
        self.statistics_width = 1 + self.n_fields ** 2 * self.n_factors
        self._loss = LogisticLoss()

    # -- parameter layout -------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        return (n_features, 2 + self.n_fields * self.n_factors)

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        if n_features != self.field_of.size:
            raise ValueError(
                "model built for {} features, got {}".format(self.field_of.size, n_features)
            )
        rng = self._rng(seed)
        params = np.zeros(self.param_shape(n_features), dtype=np.float64)
        params[:, 0] = self.field_of.astype(np.float64)  # frozen metadata
        params[:, 2:] = rng.normal(
            0.0, self.init_std, size=(n_features, self.n_fields * self.n_factors)
        )
        return params

    def _v_column(self, params: np.ndarray, field_b: int, factor: int) -> np.ndarray:
        return params[:, 2 + field_b * self.n_factors + factor]

    def _t_index(self, a: int, b: int, f: int) -> int:
        return 1 + (a * self.n_fields + b) * self.n_factors + f

    # -- decomposition ------------------------------------------------------
    def compute_statistics(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        fields = params[:, 0].astype(np.int64)
        w = params[:, 1]
        stats = np.zeros((features.n_rows, self.statistics_width), dtype=np.float64)
        s0 = row_dots(features, w)
        for a in range(self.n_fields):
            mask = (fields == a).astype(np.float64)
            for f in range(self.n_factors):
                q_col = (self._v_column(params, a, f) ** 2) * mask
                s0 -= 0.5 * row_dots_squared(features, q_col)
                for b in range(self.n_fields):
                    t_col = self._v_column(params, b, f) * mask
                    stats[:, self._t_index(a, b, f)] = row_dots(features, t_col)
        stats[:, 0] = s0
        return stats

    def _raw_scores(self, statistics: np.ndarray) -> np.ndarray:
        stats = np.asarray(statistics, dtype=np.float64)
        scores = stats[:, 0].copy()
        A, F = self.n_fields, self.n_factors
        for f in range(F):
            for a in range(A):
                t_aa = stats[:, self._t_index(a, a, f)]
                scores += 0.5 * t_aa ** 2
                for b in range(a + 1, A):
                    scores += (
                        stats[:, self._t_index(a, b, f)]
                        * stats[:, self._t_index(b, a, f)]
                    )
        return scores

    def gradient_from_statistics(self, features, labels, statistics, params):
        stats = np.asarray(statistics, dtype=np.float64)
        scores = self._raw_scores(stats)
        c = self._loss.derivative(scores, labels)
        batch = max(len(labels), 1)
        fields = params[:, 0].astype(np.int64)
        # Output buffer: with column partitioning `params` is the
        # d/K-sized local slice, so this is the worker's O(d/K) update
        # cost, bounded by the model-update charge, not a global
        # densification.
        grad = np.zeros_like(params)  # lint: noqa[R015,R016]
        grad[:, 1] = accumulate_rows(features, c)
        sq_acc = accumulate_rows_squared(features, c)  # sum_i c_i x_i^2
        for a in range(self.n_fields):
            mask = fields == a
            if not mask.any():
                continue
            for f in range(self.n_factors):
                for b in range(self.n_fields):
                    # d y / d v_{j,b,f} for j in field a is
                    # x_j * T_{b->a,f}   (+ the within-field correction
                    # -v_{j,a,f} x_j^2 when b == a)
                    coeff = c * stats[:, self._t_index(b, a, f)]
                    col = 2 + b * self.n_factors + f
                    grad[mask, col] = accumulate_rows(features, coeff)[mask]
                    if b == a:
                        grad[mask, col] -= (
                            self._v_column(params, a, f)[mask] * sq_acc[mask]
                        )
        grad /= batch
        reg = self.regularizer.gradient(params)
        reg[:, 0] = 0.0  # never touch the frozen field-id column
        grad[:, 0] = 0.0
        return grad + reg

    def loss_from_statistics(self, statistics, labels) -> float:
        labels = np.asarray(labels, dtype=np.float64)
        if labels.size == 0:
            return 0.0
        return float(np.mean(self._loss.loss(self._raw_scores(statistics), labels)))

    def predict_from_statistics(self, statistics) -> np.ndarray:
        """P(y = +1 | x)."""
        return _sigmoid(self._raw_scores(statistics))
