"""Models trainable under the statistics protocol.

Every model implements the two-step decomposition of Section II-C /
Appendix VIII: (1) *statistics* computable per column shard and summable
across shards; (2) gradients recoverable from the complete statistics
using only local data and the local model partition.

Supported: Logistic Regression, SVM, Least Squares (GLMs, statistics =
dot products), Multinomial Logistic Regression (K dots per example), and
Factorization Machines (F+1 statistics per example).
"""

from repro.models.base import StatisticsModel
from repro.models.losses import (
    PointwiseLoss,
    LogisticLoss,
    HingeLoss,
    SquaredLoss,
    SquaredHingeLoss,
    HuberLoss,
)
from repro.models.regularizers import Regularizer, NoRegularizer, L1, L2
from repro.models.linear import (
    GeneralizedLinearModel,
    LogisticRegression,
    LinearSVM,
    LeastSquares,
    SmoothSVM,
    HuberRegression,
)
from repro.models.mlr import MultinomialLogisticRegression
from repro.models.fm import FactorizationMachine
from repro.models.ffm import FieldAwareFM
from repro.models.registry import make_model, MODEL_REGISTRY

__all__ = [
    "StatisticsModel",
    "PointwiseLoss",
    "LogisticLoss",
    "HingeLoss",
    "SquaredLoss",
    "SquaredHingeLoss",
    "HuberLoss",
    "Regularizer",
    "NoRegularizer",
    "L1",
    "L2",
    "GeneralizedLinearModel",
    "LogisticRegression",
    "LinearSVM",
    "LeastSquares",
    "SmoothSVM",
    "HuberRegression",
    "MultinomialLogisticRegression",
    "FactorizationMachine",
    "FieldAwareFM",
    "make_model",
    "MODEL_REGISTRY",
]
