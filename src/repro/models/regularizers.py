"""Separable regularizers Omega(w).

Separability matters: because the penalty decomposes over coordinates,
each ColumnSGD worker can apply the regularization gradient to its own
model partition with no communication — the same locality argument as
the data gradient.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative


class Regularizer:
    """Interface: penalty value and (sub)gradient, both coordinate-wise."""

    name = "abstract"

    def penalty(self, model: np.ndarray) -> float:
        """Omega(w) for the given (partition of the) model."""
        raise NotImplementedError

    def gradient(self, model: np.ndarray) -> np.ndarray:
        """d Omega / d w, same shape as ``model``."""
        raise NotImplementedError


class NoRegularizer(Regularizer):
    """Omega(w) = 0."""

    name = "none"

    def penalty(self, model):
        return 0.0

    def gradient(self, model):
        # One zero buffer per model-update step (not per row); callers
        # add it to an existing dense gradient of the same shape.
        return np.zeros_like(model)  # lint: noqa[R015,R016]


class L2(Regularizer):
    """Omega(w) = lambda/2 * ||w||^2."""

    name = "l2"

    def __init__(self, lam: float):
        check_non_negative(lam, "lam")
        self.lam = float(lam)

    def penalty(self, model):
        return 0.5 * self.lam * float(np.sum(np.square(model)))

    def gradient(self, model):
        return self.lam * model


class L1(Regularizer):
    """Omega(w) = lambda * |w|, with the sign subgradient at 0 -> 0."""

    name = "l1"

    def __init__(self, lam: float):
        check_non_negative(lam, "lam")
        self.lam = float(lam)

    def penalty(self, model):
        return self.lam * float(np.sum(np.abs(model)))

    def gradient(self, model):
        return self.lam * np.sign(model)
