"""Multinomial Logistic Regression (Appendix VIII-C).

Parameters form an ``(m, C)`` matrix — one weight column per class; the
statistics are the C per-class dot products per example (so ColumnSGD
ships ``C * B`` values per iteration).  Given the complete dots, the
partition gradient for class ``c`` is ``X^T (softmax_c - t_c) / B``
(equation 8).
"""

from __future__ import annotations

import numpy as np

from repro.linalg import CSRMatrix, accumulate_rows, row_dots
from repro.models.base import StatisticsModel
from repro.models.regularizers import Regularizer
from repro.utils.validation import check_positive


class MultinomialLogisticRegression(StatisticsModel):
    """Softmax classifier with labels in {0, ..., n_classes - 1}."""

    name = "mlr"

    def __init__(self, n_classes: int, regularizer: Regularizer = None):
        super().__init__(regularizer)
        check_positive(n_classes, "n_classes")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2, got {}".format(n_classes))
        self.n_classes = int(n_classes)
        self.statistics_width = self.n_classes

    # -- layout ---------------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        return (n_features, self.n_classes)

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        return np.zeros((n_features, self.n_classes), dtype=np.float64)

    # -- decomposition ----------------------------------------------------
    def compute_statistics(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        return np.column_stack(
            [row_dots(features, params[:, c]) for c in range(self.n_classes)]
        )

    def _probabilities(self, statistics: np.ndarray) -> np.ndarray:
        scores = np.asarray(statistics, dtype=np.float64)
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)

    def _one_hot(self, labels: np.ndarray, n: int) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError(
                "labels must lie in [0, {}), got [{}, {}]".format(
                    self.n_classes, labels.min(), labels.max()
                )
            )
        hot = np.zeros((n, self.n_classes), dtype=np.float64)
        hot[np.arange(n), labels] = 1.0
        return hot

    def gradient_from_statistics(self, features, labels, statistics, params):
        batch = max(len(labels), 1)
        residual = self._probabilities(statistics) - self._one_hot(labels, len(labels))
        grad = np.column_stack(
            [accumulate_rows(features, residual[:, c]) for c in range(self.n_classes)]
        )
        return grad / batch + self.regularizer.gradient(params)

    def loss_from_statistics(self, statistics, labels) -> float:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.size == 0:
            return 0.0
        probs = self._probabilities(statistics)
        picked = probs[np.arange(labels.size), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-300))))

    def predict_from_statistics(self, statistics) -> np.ndarray:
        """Predicted class ids."""
        return np.asarray(statistics).argmax(axis=1).astype(np.float64)
