"""Pointwise losses over (score, label) pairs, vectorised over a batch.

For binary classification, labels are in {-1, +1} and the score is the
margin ``x . w``; for regression the score is the prediction.  Each loss
exposes its value and its derivative with respect to the score — the
derivative is the "coefficient" ``c_i`` that multiplies ``x_i`` in every
GLM gradient (equation 2).
"""

from __future__ import annotations

import numpy as np


def _as_batch(scores, labels):
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape:
        raise ValueError(
            "scores shape {} != labels shape {}".format(scores.shape, labels.shape)
        )
    return scores, labels


class PointwiseLoss:
    """Interface: vectorised loss value and score-derivative."""

    name = "abstract"

    def loss(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-example loss values."""
        raise NotImplementedError

    def derivative(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-example d(loss)/d(score) — the gradient coefficients."""
        raise NotImplementedError


class LogisticLoss(PointwiseLoss):
    """``log(1 + exp(-y s))`` with labels in {-1, +1} (equation 5)."""

    name = "logistic"

    def loss(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        margins = labels * scores
        # log1p(exp(-m)) computed stably for both signs of m.
        return np.where(
            margins > 0,
            np.log1p(np.exp(-np.abs(margins))),
            -margins + np.log1p(np.exp(-np.abs(margins))),
        )

    def derivative(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        margins = labels * scores
        # -y / (1 + exp(m)) == -y * sigmoid(-m), computed stably.
        return -labels * _sigmoid(-margins)


class HingeLoss(PointwiseLoss):
    """``max(0, 1 - y s)`` with labels in {-1, +1} (equation 3)."""

    name = "hinge"

    def loss(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        return np.maximum(0.0, 1.0 - labels * scores)

    def derivative(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        active = (1.0 - labels * scores) > 0.0
        return np.where(active, -labels, 0.0)


class SquaredHingeLoss(PointwiseLoss):
    """``max(0, 1 - y s)^2 / 2`` — a smooth SVM loss.

    Differentiable everywhere (unlike the hinge), so the distributed-
    equals-sequential exactness guarantee is immune to float-order
    effects at the margin boundary.
    """

    name = "squared_hinge"

    def loss(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        slack = np.maximum(0.0, 1.0 - labels * scores)
        return 0.5 * slack ** 2

    def derivative(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        slack = np.maximum(0.0, 1.0 - labels * scores)
        return -labels * slack


class HuberLoss(PointwiseLoss):
    """Huber-robust regression loss with transition point ``delta``.

    Quadratic for residuals within ``delta``, linear beyond — bounded
    gradient coefficients make it robust to label outliers.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be > 0, got {}".format(delta))
        self.delta = float(delta)

    def loss(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        residual = scores - labels
        small = np.abs(residual) <= self.delta
        return np.where(
            small,
            0.5 * residual ** 2,
            self.delta * (np.abs(residual) - 0.5 * self.delta),
        )

    def derivative(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        residual = scores - labels
        return np.clip(residual, -self.delta, self.delta)


class SquaredLoss(PointwiseLoss):
    """``(s - y)^2 / 2`` with real labels (least squares)."""

    name = "squared"

    def loss(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        return 0.5 * (scores - labels) ** 2

    def derivative(self, scores, labels):
        scores, labels = _as_batch(scores, labels)
        return scores - labels


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
