"""Name-based model factory used by benches and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.base import StatisticsModel
from repro.models.ffm import FieldAwareFM
from repro.models.fm import FactorizationMachine
from repro.models.linear import (
    HuberRegression,
    LeastSquares,
    LinearSVM,
    LogisticRegression,
    SmoothSVM,
)
from repro.models.mlr import MultinomialLogisticRegression

MODEL_REGISTRY: Dict[str, Callable[..., StatisticsModel]] = {
    "lr": LogisticRegression,
    "svm": LinearSVM,
    "least_squares": LeastSquares,
    "smooth_svm": SmoothSVM,
    "huber": HuberRegression,
    "mlr": MultinomialLogisticRegression,
    "fm": FactorizationMachine,
    "ffm": FieldAwareFM,
}


def make_model(name: str, **kwargs) -> StatisticsModel:
    """Instantiate a model by registry name.

    Extra keyword arguments go to the constructor (e.g.
    ``make_model('fm', n_factors=10)``).
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            "unknown model {!r}; available: {}".format(name, sorted(MODEL_REGISTRY))
        )
    return MODEL_REGISTRY[key](**kwargs)
