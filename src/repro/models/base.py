"""The statistics-model interface — the paper's programming framework.

A :class:`StatisticsModel` captures the vertical-parallel decomposition
(Section II-C): per-example *statistics* that are (a) computable from any
column shard against the matching model partition and (b) additive
across shards, plus a gradient that is recoverable from the *complete*
statistics using only local data.  Formally, for column shards
``X = [X_1 | ... | X_K]`` and model partitions ``w = (w_1, ..., w_K)``::

    compute_statistics(X, w) == sum_k compute_statistics(X_k, w_k)

and the full-data batch gradient restricted to partition k equals
``gradient_from_statistics(X_k, y, S, w_k)`` where ``S`` is the summed
statistics.  Every concrete model's tests assert both identities.

Models are *stateless*: parameters travel as plain numpy arrays whose
first axis indexes features, so slicing rows of the array partitions the
model by columns of the data — the collocation trick.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import CSRMatrix
from repro.models.regularizers import NoRegularizer, Regularizer
from repro.utils.rng import rng_from_seed


class StatisticsModel:
    """Interface of the paper's computation framework (Algorithm 3).

    Attributes
    ----------
    name:
        Registry key ('lr', 'svm', ...).
    statistics_width:
        Statistics per example (1 for GLMs, n_classes for MLR, F+1 for
        FM).  Determines ColumnSGD's communication volume ``B * width``.
    """

    name = "abstract"
    statistics_width = 1

    def __init__(self, regularizer: Regularizer = None):
        self.regularizer = regularizer if regularizer is not None else NoRegularizer()

    # ------------------------------------------------------------------
    # model parameter layout
    # ------------------------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        """Shape of the parameter array for ``n_features`` columns.

        The first axis is always the feature axis, so a column partition
        owning ``d`` features holds an array of shape
        ``(d,) + param_shape(m)[1:]``.
        """
        raise NotImplementedError

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        """Fresh parameters (zeros unless the model needs symmetry breaking)."""
        raise NotImplementedError

    def params_per_feature(self) -> int:
        """Scalars stored per feature (1 for GLMs, F+1 for FM, C for MLR)."""
        shape = self.param_shape(1)
        return int(np.prod(shape))

    # ------------------------------------------------------------------
    # the two-step decomposition
    # ------------------------------------------------------------------
    def compute_statistics(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        """Partial statistics of shape ``(n_rows, statistics_width)``.

        Must be additive across column shards.
        """
        raise NotImplementedError

    def gradient_from_statistics(
        self,
        features: CSRMatrix,
        labels: np.ndarray,
        statistics: np.ndarray,
        params: np.ndarray,
    ) -> np.ndarray:
        """Mean batch gradient of the local partition.

        ``statistics`` must be the *complete* (summed) statistics;
        ``features``/``params`` are the local shard and partition.  The
        regularizer's gradient is included.
        """
        raise NotImplementedError

    def loss_from_statistics(self, statistics: np.ndarray, labels: np.ndarray) -> float:
        """Mean data loss of the batch given complete statistics.

        Excludes the regularization penalty (callers add
        ``regularizer.penalty`` over the full model when reporting
        f(w, X); the paper's plots report training loss the same way).
        """
        raise NotImplementedError

    def predict_from_statistics(self, statistics: np.ndarray) -> np.ndarray:
        """Point predictions (labels or scores) from complete statistics."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # convenience single-machine paths (used by tests and examples)
    # ------------------------------------------------------------------
    def gradient(
        self, features: CSRMatrix, labels: np.ndarray, params: np.ndarray
    ) -> np.ndarray:
        """Single-machine mean batch gradient (statistics folded in)."""
        stats = self.compute_statistics(features, params)
        return self.gradient_from_statistics(features, labels, stats, params)

    def loss(self, features: CSRMatrix, labels: np.ndarray, params: np.ndarray) -> float:
        """Full objective f(w, X): mean data loss + regularization penalty."""
        stats = self.compute_statistics(features, params)
        return self.loss_from_statistics(stats, labels) + self.regularizer.penalty(params)

    def predict(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        """Point predictions on a feature matrix."""
        return self.predict_from_statistics(self.compute_statistics(features, params))

    # ------------------------------------------------------------------
    def _rng(self, seed):
        return rng_from_seed(seed)

    def __repr__(self) -> str:
        return "{}(regularizer={})".format(type(self).__name__, self.regularizer.name)
