"""Degree-2 Factorization Machine (Appendix VIII-D).

Parameters form an ``(m, 1 + F)`` matrix: column 0 is the linear weight
``w``, columns 1..F are the factor matrix ``V``.  Using Rendle's
rewriting (equation 10),

    y(x) = [x.w - 1/2 sum_f sum_j v_jf^2 x_j^2]  +  1/2 sum_f (sum_j v_jf x_j)^2

the bracket and each inner sum ``s_f = sum_j v_jf x_j`` are additive over
column shards, so the statistics per example are the paper's
``F + 1`` values: ``(bracket, s_1, ..., s_F)``.  Only after summing does
the nonlinear ``s_f^2`` term get applied — the reason the square cannot
be folded in at the workers.

With logistic loss (labels in {-1, +1}) the gradients (equations 12-13)
are::

    dl/dw_j    = c * x_j
    dl/dv_jf   = c * (x_j * s_f - v_jf * x_j^2)

with ``c = -y / (1 + exp(y * y(x)))`` — all local given complete stats.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import (
    CSRMatrix,
    accumulate_rows,
    accumulate_rows_squared,
    row_dots,
    row_dots_squared,
)
from repro.models.base import StatisticsModel
from repro.models.losses import LogisticLoss, _sigmoid
from repro.models.regularizers import Regularizer
from repro.utils.validation import check_positive


class FactorizationMachine(StatisticsModel):
    """FM of degree 2 with ``n_factors`` latent dimensions, logistic loss."""

    name = "fm"

    def __init__(self, n_factors: int, init_std: float = 0.01, regularizer: Regularizer = None):
        super().__init__(regularizer)
        check_positive(n_factors, "n_factors")
        check_positive(init_std, "init_std")
        self.n_factors = int(n_factors)
        self.init_std = float(init_std)
        self.statistics_width = self.n_factors + 1
        self._loss = LogisticLoss()

    # -- layout ---------------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        return (n_features, 1 + self.n_factors)

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        """Zero linear weights; small Gaussian factors (symmetry breaking)."""
        rng = self._rng(seed)
        params = np.zeros((n_features, 1 + self.n_factors), dtype=np.float64)
        params[:, 1:] = rng.normal(0.0, self.init_std, size=(n_features, self.n_factors))
        return params

    # -- decomposition ----------------------------------------------------
    def compute_statistics(self, features: CSRMatrix, params: np.ndarray) -> np.ndarray:
        w = params[:, 0]
        stats = np.empty((features.n_rows, 1 + self.n_factors), dtype=np.float64)
        bracket = row_dots(features, w)
        for f in range(self.n_factors):
            v_f = params[:, 1 + f]
            stats[:, 1 + f] = row_dots(features, v_f)
            bracket -= 0.5 * row_dots_squared(features, v_f ** 2)
        stats[:, 0] = bracket
        return stats

    def _raw_scores(self, statistics: np.ndarray) -> np.ndarray:
        """y(x) from complete statistics (equation 10)."""
        stats = np.asarray(statistics, dtype=np.float64)
        return stats[:, 0] + 0.5 * np.sum(stats[:, 1:] ** 2, axis=1)

    def gradient_from_statistics(self, features, labels, statistics, params):
        stats = np.asarray(statistics, dtype=np.float64)
        scores = self._raw_scores(stats)
        coefficients = self._loss.derivative(scores, labels)
        batch = max(len(labels), 1)
        # Output buffer over the partition-local d/K slice (see ffm.py).
        grad = np.empty_like(params)  # lint: noqa[R015,R016]
        grad[:, 0] = accumulate_rows(features, coefficients)
        # sum_i c_i * x_i^2, shared by every factor's second term
        sq_acc = accumulate_rows_squared(features, coefficients)
        for f in range(self.n_factors):
            s_f = stats[:, 1 + f]
            grad[:, 1 + f] = (
                accumulate_rows(features, coefficients * s_f)
                - params[:, 1 + f] * sq_acc
            )
        return grad / batch + self.regularizer.gradient(params)

    def loss_from_statistics(self, statistics, labels) -> float:
        labels = np.asarray(labels, dtype=np.float64)
        if labels.size == 0:
            return 0.0
        scores = self._raw_scores(statistics)
        return float(np.mean(self._loss.loss(scores, labels)))

    def predict_from_statistics(self, statistics) -> np.ndarray:
        """P(y = +1 | x)."""
        return _sigmoid(self._raw_scores(statistics))
