"""AST visitor engine, rule registry, and suppression handling.

The engine parses each file once and walks the tree once, dispatching
every node to all registered rules that declare a ``visit_<NodeType>``
method — the same dispatch scheme as :class:`ast.NodeVisitor`, but
shared across rules so N rules cost one traversal.  Rules that need
whole-file context (scope-aware checks) implement ``check_tree``
instead of (or in addition to) node visitors.

Suppression follows the ``noqa`` convention, namespaced to this linter:
a ``# lint: noqa`` comment on the flagged line suppresses every rule,
``# lint: noqa[R001,R004]`` suppresses only the listed rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding

#: Directories treated as the simulator's protocol paths: rules about
#: simulated-time purity and swallowed errors apply here (and to any
#: file outside the ``repro`` package, so rule fixtures self-apply).
PROTOCOL_DIRS = ("sim", "core", "net", "baselines", "partition", "storage", "store")

#: Directory names discovery never recurses into.  ``lint_fixtures``
#: trees deliberately violate the rules, so they are linted only when
#: named explicitly on the command line (as their tests do).
EXCLUDED_DIR_NAMES = ("__pycache__", "build", "dist", "lint_fixtures", "node_modules")

#: Marker (in the first few lines) identifying machine-written files
#: that discovery should skip.
GENERATED_MARKER = "@generated"

_NOQA_RE = re.compile(r"#\s*lint:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


class FileContext:
    """Everything a rule may want to know about the file being linted."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        parts = Path(path).parts
        if "repro" in parts:
            # Position within the installed package, e.g.
            # src/repro/sim/clock.py -> ("sim", "clock").
            tail = parts[parts.index("repro") + 1:]
        else:
            tail = (parts[-1],) if parts else ()
        self.package_parts: Tuple[str, ...] = tuple(
            p[:-3] if p.endswith(".py") else p for p in tail
        )

    # ------------------------------------------------------------------
    def in_repro_package(self) -> bool:
        """True when the file sits inside the ``repro`` package tree."""
        return "repro" in Path(self.path).parts

    def is_test_code(self) -> bool:
        """Test modules and benchmark code get relaxed numeric rules.

        Files under a ``lint_fixtures`` directory are *not* test code,
        even when that directory lives inside ``tests/`` — fixtures must
        exercise the full rule set.
        """
        parts = Path(self.path).parts
        if "lint_fixtures" in parts:
            return False
        return any(p in ("tests", "benchmarks") for p in parts) or bool(
            self.package_parts and self.package_parts[-1].startswith("test_")
        )

    def is_module(self, *parts: str) -> bool:
        """True when the file is exactly ``repro/<parts...>.py``."""
        return self.package_parts == tuple(parts)

    def in_protocol_path(self) -> bool:
        """Protocol-path rules apply inside the simulator's core dirs —
        and to files outside the package, so fixtures exercise them."""
        if not self.in_repro_package():
            return not self.is_test_code()
        return bool(self.package_parts) and self.package_parts[0] in PROTOCOL_DIRS

    # ------------------------------------------------------------------
    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` carries a ``# lint: noqa`` for ``rule_id``.

        A line may carry several noqa comments; a bare ``noqa`` wins,
        and bracketed lists are unioned.  Unknown ids inside a bracket
        are inert — they suppress nothing and break nothing.
        """
        if not 1 <= line <= len(self.lines):
            return False
        for match in _NOQA_RE.finditer(self.lines[line - 1]):
            listed = match.group(1)
            if listed is None:
                return True
            if rule_id in {r.strip() for r in listed.split(",")}:
                return True
        return False


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement any combination of
    ``visit_<NodeType>(node)`` methods (dispatched by the engine's single
    traversal) and ``check_tree(tree)`` (whole-file passes).  Findings
    are emitted with :meth:`report`.
    """

    rule_id = "R000"
    title = "untitled rule"
    severity = "error"
    fix_hint = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def applies(self) -> bool:
        """Whether the rule runs on this file at all (default: yes)."""
        return True

    def check_tree(self, tree: ast.Module) -> None:
        """Optional whole-file pass run before node dispatch."""

    def report(self, node: ast.AST, message: str, fix_hint: Optional[str] = None) -> None:
        """Record a finding anchored at ``node`` unless suppressed."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.ctx.suppressed(self.rule_id, line):
            return
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
                fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            )
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id {}".format(cls.rule_id))
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Copy of the registry, keyed by rule id."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------
def _excluded_dir(name: str) -> bool:
    return (
        name in EXCLUDED_DIR_NAMES
        or name.endswith(".egg-info")
        or (name.startswith(".") and name not in (".", ".."))
    )


def _load_source(path: Path) -> Optional[str]:
    """Read one candidate file; None means *skip it* (binary, non-UTF-8,
    or machine-generated).  I/O errors propagate as ``OSError``."""
    data = path.read_bytes()
    if b"\x00" in data:
        return None
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError:
        return None
    head = text.splitlines()[:5]
    if any(GENERATED_MARKER in line for line in head):
        return None
    return text


def discover_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files/directories into ``(path, source)`` pairs.

    Recursion skips ``__pycache__``, hidden and packaging directories,
    fixture trees, binary/non-UTF-8 payloads masquerading as ``.py``,
    and ``@generated`` files — discovery is robust by construction
    rather than by whatever happens to litter the working tree.  Paths
    named explicitly always get a read attempt; a missing one raises
    ``FileNotFoundError`` (a usage error, not a crash).
    """
    sources: List[Tuple[str, str]] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                if any(_excluded_dir(d) for d in child.relative_to(p).parts[:-1]):
                    continue
                source = _load_source(child)
                if source is not None:
                    sources.append((str(child), source))
        elif p.exists():
            source = _load_source(p)
            if source is not None:
                sources.append((str(p), source))
        else:
            raise FileNotFoundError("no such file or directory: {}".format(path))
    return sources


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
class LintEngine:
    """Run a selected set of rules over files, sources, or directories.

    ``program=True`` (the default) additionally runs the whole-program
    rules from :mod:`repro.lint.program` (R007+) over the full file set
    of each :meth:`lint_paths` call; per-file entry points
    (:meth:`lint_source`, :meth:`lint_file`) never run them.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        program: bool = True,
        stats: bool = False,
    ):
        from repro.lint.program import registered_program_rules

        #: per-rule wall-clock seconds, filled only when ``stats=True``
        #: (the default path adds no timing overhead).  The one-off
        #: program-index build is recorded under ``<program-index>``.
        self.collect_stats = stats
        self.stats: Dict[str, float] = {}

        rules = registered_rules()
        program_rules = registered_program_rules()
        known = set(rules) | set(program_rules)
        if select:
            unknown = set(select) - known
            if unknown:
                raise ValueError("unknown rule id(s): {}".format(sorted(unknown)))
            rules = {rid: rules[rid] for rid in select if rid in rules}
            program_rules = {rid: program_rules[rid] for rid in select if rid in program_rules}
        for rid in set(ignore or ()):
            rules.pop(rid, None)
            program_rules.pop(rid, None)
        self.rule_classes = [rules[rid] for rid in sorted(rules)]
        self.program_rule_classes = (
            [program_rules[rid] for rid in sorted(program_rules)] if program else []
        )

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one source string; syntax errors become E001 findings."""
        ctx = FileContext(path, source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule_id="E001",
                    severity="error",
                    message="syntax error: {}".format(exc.msg),
                )
            ]
        rules = [cls(ctx) for cls in self.rule_classes]
        active = [rule for rule in rules if rule.applies()]
        for rule in active:
            self._timed(rule.rule_id, rule.check_tree, tree)
        # Single shared traversal: dispatch each node to every rule that
        # declares a visitor for its type.
        handlers: Dict[str, List] = {}
        for rule in active:
            for name in dir(rule):
                if name.startswith("visit_"):
                    handlers.setdefault(name[len("visit_"):], []).append(
                        (rule.rule_id, getattr(rule, name))
                    )
        if handlers:
            if self.collect_stats:
                for node in ast.walk(tree):
                    for rule_id, handler in handlers.get(type(node).__name__, ()):
                        self._timed(rule_id, handler, node)
            else:
                for node in ast.walk(tree):
                    for _, handler in handlers.get(type(node).__name__, ()):
                        handler(node)
        findings: List[Finding] = []
        for rule in active:
            findings.extend(rule.findings)
        return sorted(findings)

    def lint_file(self, path: str) -> List[Finding]:
        """Lint one file from disk."""
        source = Path(path).read_text(encoding="utf-8")
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        """Lint files and/or directories (recursing into ``*.py``),
        then run the whole-program rules over the same file set."""
        sources = discover_sources(paths)
        findings: List[Finding] = []
        for path, source in sources:
            findings.extend(self.lint_source(source, path))
        findings.extend(self.lint_program(sources))
        return sorted(findings)

    def lint_program(self, sources: Sequence[Tuple[str, str]]) -> List[Finding]:
        """Run the selected whole-program rules over ``(path, source)``
        pairs — one shared parse and call graph for all of them."""
        if not self.program_rule_classes:
            return []
        from repro.lint.program import ProgramAnalyzer

        if not self.collect_stats:
            analyzer = ProgramAnalyzer(sources)
            return analyzer.run(self.program_rule_classes)
        analyzer = self._timed("<program-index>", ProgramAnalyzer, sources)
        findings: List[Finding] = []
        for cls in self.program_rule_classes:
            findings.extend(self._timed(cls.rule_id, analyzer.run, [cls]))
        return findings

    def _timed(self, rule_id: str, fn, *fn_args):
        """Call ``fn``; when stats are on, bill its wall time to
        ``rule_id``.  Wall clock is fine here: lint tooling never runs
        under the simulated clock."""
        if not self.collect_stats:
            return fn(*fn_args)
        import time

        # Lint tooling measures its own cost in real time; nothing here
        # runs under the simulated clock.
        start = time.perf_counter()  # lint: noqa[R001,R003]
        try:
            return fn(*fn_args)
        finally:
            elapsed = time.perf_counter() - start  # lint: noqa[R001,R003]
            self.stats[rule_id] = self.stats.get(rule_id, 0.0) + elapsed


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` attribute chains to a name tuple, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
