"""Phase-effect inference and happens-before race rules (R012-R014).

PR 4's engine lets a :class:`~repro.engine.spec.RoundSpec` declare
overlap: ``after=()`` starts a phase at round offset zero and
``after=("a", "b")`` at the max of the named ends.  The engine still
*executes* phase bodies in declaration order, so overlap is purely a
scheduling statement — and a phase that reads state written by a phase
the DAG leaves it unordered with is a silent logical race: the
sequential execution happens to pick one interleaving, a real cluster
would not.

This module closes that soundness gap statically, mirroring the
R010 declaration-vs-emission pattern:

* every ``RoundSpec`` constructor reachable from a trainer's
  ``round_spec`` method is reconstructed structurally from the AST
  (tuple literals, ``+`` concatenation, ``tuple(self._helper())``
  composition, single-binding locals);
* every executor the spec names (``run=`` / ``sizes=`` / ``servers=``)
  is resolved through the class's MRO and its **read/write effect set**
  is inferred interprocedurally: ``self.*`` / ``ctx.*`` attribute atoms,
  ``ctx.scratch[key]`` at key granularity, transitive ``self._helper()``
  inlining through the PR 2/3 call graph, and calls on objects rooted at
  an attribute (``self.master.reduce(...)``) counted as writes when any
  same-named method candidate mutates its own state;
* the ``after=`` edges induce a happens-before DAG (the same
  vector-clock construction the runtime ``check_effects`` recorder
  uses — :mod:`repro.engine.effects` is imported, not reimplemented).

Three rules consume the result:

* **R012** — two DAG-unordered phases conflict (one writes an atom the
  other reads or writes); the finding carries the witness attribute
  chain through the call graph.
* **R013** — a phase's optional ``reads=`` / ``writes=`` declaration
  has drifted from the inferred effects (either direction).
* **R014** — two DAG-unordered ``CommPhase`` declarations emit the same
  ``MessageKind``: their interleaving on the wire is nondeterministic.

The inference is a deliberate over-approximation (unknown call targets
and over-wide name candidates become writes); reconstruction *bails
silently* on spec expressions it cannot evaluate, so it never invents
phases — a spec too dynamic to analyze is simply not checked, which the
``check_effects`` runtime recorder still covers.  Deep mutation through
values passed as call arguments is not tracked on either side; effects
are attribute-rooted by design (see ``docs/effects.md``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.effects import atoms_conflict, concurrent_pairs
from repro.lint.engine import dotted_name
from repro.lint.program import (
    MAX_NAME_CANDIDATES,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProgramIndex,
    ProgramRule,
    _call_kwarg,
    _kind_of,
    _string_value,
    register_program,
)

#: phase constructor names, matched by the trailing call-chain segment
#: (fixtures need no resolvable import, same as R010's extraction)
PHASE_CTORS = ("ComputePhase", "CommPhase", "MasterPhase")

#: dataclass field order per constructor, for positional arguments
_CTOR_FIELDS = {
    "ComputePhase": ("name", "run", "synchronized", "after", "reads", "writes"),
    "CommPhase": ("name", "kind", "pattern", "sizes", "servers", "after", "reads", "writes"),
    "MasterPhase": ("name", "run", "after", "reads", "writes"),
}

#: container/ndarray methods that mutate their receiver in place
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "clear", "pop",
        "popitem", "remove", "discard", "setdefault", "sort", "reverse",
        "fill", "put", "resize", "itemset",
    }
)

#: what the engine itself does around a ``synchronized=True`` compute
#: phase: the sync policy runs inside the phase and owns these atoms
#: (see ``SyncPolicy.resolve`` implementations).
SYNC_IMPLICIT_WRITES = ("ctx.chosen", "ctx.killed", "ctx.stale_groups")
SYNC_IMPLICIT_READS = ("ctx.t", "ctx.cluster", "ctx.failed", "ctx.start_times")

_INLINE_DEPTH = 5


# ----------------------------------------------------------------------
# reconstructed declarations
# ----------------------------------------------------------------------
class PhaseDecl:
    """One phase constructor call, statically evaluated."""

    def __init__(self, ctor: str, node: ast.Call):
        self.ctor = ctor
        self.node = node
        self.name: Optional[str] = None
        self.run: Optional[str] = None
        self.sizes: Optional[str] = None
        self.servers: Optional[str] = None
        self.synchronized = False
        #: mirrors the runtime field: None chains, () overlaps
        self.after: Optional[Tuple[str, ...]] = None
        self.kind: Optional[str] = None
        self.declared_reads: Optional[Tuple[str, ...]] = None
        self.declared_writes: Optional[Tuple[str, ...]] = None


class SpecDecl:
    """One ``RoundSpec(...)`` call under one trainer class's MRO view."""

    def __init__(self, cls: ClassInfo, method: FunctionInfo, node: ast.Call,
                 phases: List[PhaseDecl]):
        self.cls = cls
        self.method = method
        self.node = node
        self.phases = phases

    @property
    def module(self) -> ModuleInfo:
        return self.method.module

    def phase_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.phases)


def _ctor_arg(call: ast.Call, ctor: str, field: str) -> Optional[ast.AST]:
    kw = _call_kwarg(call, field)
    if kw is not None:
        return kw
    fields = _CTOR_FIELDS[ctor]
    index = fields.index(field)
    if index < len(call.args):
        return call.args[index]
    return None


def _string_tuple(expr: Optional[ast.AST]) -> Tuple[Optional[Tuple[str, ...]], bool]:
    """``(value, ok)`` for a literal tuple/list of string constants.

    ``(None, True)`` means "absent or literal None"; ``ok=False`` means
    the expression exists but cannot be evaluated statically.
    """
    if expr is None or (isinstance(expr, ast.Constant) and expr.value is None):
        return None, True
    if isinstance(expr, (ast.Tuple, ast.List)):
        values = []
        for elt in expr.elts:
            text = _string_value(elt)
            if text is None:
                return None, False
            values.append(text)
        return tuple(values), True
    return None, False


def _parse_phase(call: ast.Call, ctor: str) -> Optional[PhaseDecl]:
    decl = PhaseDecl(ctor, call)
    decl.name = _string_value(_ctor_arg(call, ctor, "name"))
    if decl.name is None:
        return None
    if ctor in ("ComputePhase", "MasterPhase"):
        decl.run = _string_value(_ctor_arg(call, ctor, "run"))
    if ctor == "ComputePhase":
        sync_expr = _ctor_arg(call, ctor, "synchronized")
        if isinstance(sync_expr, ast.Constant) and isinstance(sync_expr.value, bool):
            decl.synchronized = sync_expr.value
        elif sync_expr is not None:
            decl.synchronized = True  # unknown: over-approximate the effects
    if ctor == "CommPhase":
        decl.sizes = _string_value(_ctor_arg(call, ctor, "sizes"))
        decl.servers = _string_value(_ctor_arg(call, ctor, "servers"))
        kind_expr = _ctor_arg(call, ctor, "kind")
        decl.kind = _kind_of(kind_expr) if kind_expr is not None else None
    after, ok = _string_tuple(_ctor_arg(call, ctor, "after"))
    if not ok:
        return None  # dynamic after=: the DAG is unknowable, bail
    decl.after = after
    decl.declared_reads, _ = _string_tuple(_ctor_arg(call, ctor, "reads"))
    decl.declared_writes, _ = _string_tuple(_ctor_arg(call, ctor, "writes"))
    return decl


def _phase_calls(
    index: ProgramIndex,
    expr: ast.AST,
    method: FunctionInfo,
    mro: Sequence[ClassInfo],
    depth: int = 0,
) -> Optional[List[ast.Call]]:
    """Structurally evaluate a ``phases=`` expression to ctor calls.

    Handles tuple/list literals, ``+`` concatenation, ``tuple(...)`` /
    ``list(...)`` wrappers, single-return ``self._helper()`` composition
    and single-binding locals.  Returns None when any part is opaque.
    """
    if depth > _INLINE_DEPTH:
        return None
    if isinstance(expr, (ast.Tuple, ast.List)):
        out: List[ast.Call] = []
        for elt in expr.elts:
            if isinstance(elt, ast.Starred):
                sub = _phase_calls(index, elt.value, method, mro, depth + 1)
            elif isinstance(elt, ast.Call) and (dotted_name(elt.func) or ("?",))[-1] in PHASE_CTORS:
                out.append(elt)
                continue
            else:
                sub = _phase_calls(index, elt, method, mro, depth + 1)
            if sub is None:
                return None
            out.extend(sub)
        return out
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _phase_calls(index, expr.left, method, mro, depth + 1)
        right = _phase_calls(index, expr.right, method, mro, depth + 1)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(expr, ast.Call):
        chain = dotted_name(expr.func)
        if chain and chain[-1] in PHASE_CTORS:
            return [expr]
        if chain in (("tuple",), ("list",)) and len(expr.args) == 1:
            return _phase_calls(index, expr.args[0], method, mro, depth + 1)
        if chain and chain[0] == "self" and len(chain) == 2:
            target = index.resolve_self_method(chain[1], mro)
            if target is not None and len(target.returns) == 1:
                return _phase_calls(index, target.returns[0], target, mro, depth + 1)
        return None
    if isinstance(expr, ast.Name):
        bindings = method.env().get(expr.id)
        if bindings and len(bindings) == 1:
            return _phase_calls(index, bindings[0], method, mro, depth + 1)
        return None
    return None


def extract_round_specs(index: ProgramIndex) -> List[SpecDecl]:
    """Every statically-evaluable RoundSpec, one entry per (class, call).

    A class contributes when ``round_spec`` is in its MRO; every
    ``RoundSpec(...)`` call in any MRO method is evaluated under that
    class's view (config-dependent spec variants each get their own
    entry).  Unevaluable specs and phases are skipped silently.
    """
    specs: List[SpecDecl] = []
    for module in index.modules:
        for cls in module.classes.values():
            mro = index.mro(cls)
            if index.resolve_self_method("round_spec", mro) is None:
                continue
            names: Set[str] = set()
            for klass in mro:
                names.update(klass.methods)
            for name in sorted(names):
                method = index.resolve_self_method(name, mro)
                if method is None:
                    continue
                for call, chain in method.calls:
                    if chain[-1] != "RoundSpec":
                        continue
                    phases_expr = _call_kwarg(call, "phases")
                    if phases_expr is None and len(call.args) > 1:
                        phases_expr = call.args[1]
                    if phases_expr is None:
                        continue
                    ctor_calls = _phase_calls(index, phases_expr, method, mro)
                    if ctor_calls is None:
                        continue
                    decls: List[PhaseDecl] = []
                    for ctor_call in ctor_calls:
                        ctor = dotted_name(ctor_call.func)[-1]
                        decl = _parse_phase(ctor_call, ctor)
                        if decl is None:
                            decls = []
                            break
                        decls.append(decl)
                    if not decls:
                        continue
                    seen: Set[str] = set()
                    valid = True
                    for decl in decls:
                        if decl.name in seen or any(
                            dep not in seen for dep in (decl.after or ())
                        ):
                            valid = False  # runtime validation rejects it
                            break
                        seen.add(decl.name)
                    if valid:
                        specs.append(SpecDecl(cls, method, call, decls))
    return specs


# ----------------------------------------------------------------------
# interprocedural effect inference
# ----------------------------------------------------------------------
class EffectSet:
    """Atoms a code path reads/writes, each with a witness call chain."""

    def __init__(self) -> None:
        self.reads: Dict[str, str] = {}
        self.writes: Dict[str, str] = {}

    def add(self, atom: str, witness: str, write: bool) -> None:
        side = self.writes if write else self.reads
        side.setdefault(atom, witness)

    def merge(self, other: "EffectSet", prefix: Optional[str] = None) -> None:
        """Fold in another set; ``prefix`` extends the witness chain when
        crossing a call edge (None copies witnesses verbatim)."""
        for atom, witness in other.reads.items():
            self.reads.setdefault(
                atom,
                witness if prefix is None else "{} -> {}".format(prefix, witness),
            )
        for atom, witness in other.writes.items():
            self.writes.setdefault(
                atom,
                witness if prefix is None else "{} -> {}".format(prefix, witness),
            )

    def atoms(self) -> Set[str]:
        return set(self.reads) | set(self.writes)


class _Scope:
    """Name bindings for one analysed function body."""

    def __init__(self, func: FunctionInfo, mro: Sequence[ClassInfo],
                 ctx_names: frozenset):
        self.func = func
        self.mro = mro
        self.self_name = func.params[0] if (func.is_method and func.params) else None
        self.ctx_names = ctx_names
        self.env = func.env()


def _leftmost_name(expr: ast.AST) -> Optional[str]:
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Call)):
        expr = expr.func if isinstance(expr, ast.Call) else expr.value
    return expr.id if isinstance(expr, ast.Name) else None


class EffectInference:
    """Shared memoised inference over one :class:`ProgramIndex`."""

    def __init__(self, index: ProgramIndex):
        self.index = index
        self._method_memo: Dict[Tuple[int, str, frozenset], EffectSet] = {}
        self._mutates_memo: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # does a method (transitively) mutate its own object's state?
    # ------------------------------------------------------------------
    def mutates_self(self, func: FunctionInfo, depth: int = 0) -> bool:
        key = id(func)
        if key in self._mutates_memo:
            return self._mutates_memo[key]
        self._mutates_memo[key] = False  # cycle assumption: pure
        result = depth <= _INLINE_DEPTH and self._scan_mutation(func, depth)
        self._mutates_memo[key] = result
        return result

    def _scan_mutation(self, func: FunctionInfo, depth: int) -> bool:
        if not (func.is_method and func.params):
            return False
        self_name = func.params[0]
        for node in ast.walk(func.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    self._rooted_at(target, self_name, func)
                ):
                    return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if not self._rooted_at(receiver, self_name, func):
                    continue
                if node.func.attr in MUTATOR_METHODS:
                    return True
                if isinstance(receiver, ast.Name) and receiver.id == self_name:
                    callee = None
                    if func.class_name:
                        for cls in self.index.classes_by_name.get(func.class_name, ()):
                            callee = self.index.resolve_self_method(
                                node.func.attr, self.index.mro(cls)
                            )
                            if callee is not None:
                                break
                    if callee is not None and self.mutates_self(callee, depth + 1):
                        return True
                elif self._candidates_mutate(node.func.attr, depth + 1):
                    return True
        return False

    def _rooted_at(self, expr: ast.AST, self_name: str, func: FunctionInfo,
                   depth: int = 0) -> bool:
        """Does an attribute/subscript chain lead back to ``self``?"""
        name = _leftmost_name(expr)
        if name is None or depth > _INLINE_DEPTH:
            return False
        if name == self_name:
            # bare `self = ...` rebinding is not state mutation
            return not isinstance(expr, ast.Name)
        for binding in func.env().get(name, ()):
            if isinstance(binding, (ast.Attribute, ast.Subscript)) and (
                self._rooted_at(binding, self_name, func, depth + 1)
            ):
                return True
        return False

    def _candidates_mutate(self, method_name: str, depth: int) -> bool:
        candidates = self.index.functions_by_name.get(method_name, [])
        methods = [c for c in candidates if c.is_method]
        pool = methods if methods else candidates
        if not pool:
            return False  # unresolved accessor (builtin / external): pure
        if len(pool) > MAX_NAME_CANDIDATES:
            return True  # too ambiguous: over-approximate as a write
        return any(self.mutates_self(c, depth) for c in pool)

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------
    def _atom(self, expr: ast.AST, scope: _Scope,
              depth: int = 0) -> Optional[Tuple[str, str]]:
        """Resolve an expression to ``("base", "self"/"ctx")`` or
        ``("atom", atom-string)``; None when unrooted."""
        if depth > _INLINE_DEPTH:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == scope.self_name:
                return ("base", "self")
            if expr.id in scope.ctx_names:
                return ("base", "ctx")
            results = set()
            for binding in scope.env.get(expr.id, ()):
                resolved = self._atom(binding, scope, depth + 1)
                if resolved is not None:
                    results.add(resolved)
            if len(results) == 1:
                return results.pop()
            return None
        if isinstance(expr, ast.Attribute):
            base = self._atom(expr.value, scope, depth + 1)
            if base is None:
                return None
            kind, value = base
            if kind == "atom":
                return base  # deeper access collapses onto the root atom
            if value == "self":
                return ("atom", "self.{}".format(expr.attr))
            if expr.attr == "trainer":
                return ("base", "self")
            if expr.attr == "scratch":
                return ("atom", "ctx.scratch[*]")
            return ("atom", "ctx.{}".format(expr.attr))
        if isinstance(expr, ast.Subscript):
            if self._is_ctx_scratch(expr.value, scope):
                key = expr.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    return ("atom", "ctx.scratch[{}]".format(key.value))
                return ("atom", "ctx.scratch[*]")
            base = self._atom(expr.value, scope, depth + 1)
            if base is None or base[0] == "base":
                return None
            return base
        return None

    def _is_ctx_scratch(self, expr: ast.AST, scope: _Scope) -> bool:
        if not (isinstance(expr, ast.Attribute) and expr.attr == "scratch"):
            return False
        base = self._atom(expr.value, scope)
        return base == ("base", "ctx")

    # ------------------------------------------------------------------
    # one method body
    # ------------------------------------------------------------------
    def method_effects(self, func: FunctionInfo, mro: Sequence[ClassInfo],
                       ctx_params: frozenset, depth: int = 0) -> EffectSet:
        view = mro[0].qualname if mro else ""
        key = (id(func), view, ctx_params)
        cached = self._method_memo.get(key)
        if cached is not None:
            return cached
        out = EffectSet()
        self._method_memo[key] = out  # cycle guard: in-progress = empty
        if depth <= _INLINE_DEPTH:
            scope = _Scope(func, mro, ctx_params)
            for stmt in func.node.body:
                self._visit(stmt, out, scope, depth)
        return out

    def _visit(self, node: Optional[ast.AST], out: EffectSet, scope: _Scope,
               depth: int, store: bool = False) -> None:
        if node is None:
            return
        witness = scope.func.name
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            resolved = self._atom(node, scope)
            if resolved is not None and resolved[0] == "atom":
                out.add(resolved[1], witness, store)
                if isinstance(node, ast.Subscript):
                    self._visit(node.slice, out, scope, depth)
                return
            if isinstance(node, ast.Attribute):
                self._visit(node.value, out, scope, depth)
            else:
                self._visit(node.value, out, scope, depth)
                self._visit(node.slice, out, scope, depth)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, out, scope, depth)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._visit(target, out, scope, depth, store=True)
            self._visit(node.value, out, scope, depth)
            return
        if isinstance(node, ast.AugAssign):
            self._visit(node.target, out, scope, depth, store=True)
            self._visit(node.target, out, scope, depth)
            self._visit(node.value, out, scope, depth)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._visit(node.target, out, scope, depth, store=True)
                self._visit(node.value, out, scope, depth)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit(target, out, scope, depth, store=True)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run later (if ever), not in-phase
        for child in ast.iter_child_nodes(node):
            self._visit(child, out, scope, depth)

    def _visit_call(self, node: ast.Call, out: EffectSet, scope: _Scope,
                    depth: int) -> None:
        chain = dotted_name(node.func)
        handled = False
        if (
            chain
            and scope.self_name is not None
            and chain[0] == scope.self_name
            and len(chain) == 2
        ):
            callee = self.index.resolve_self_method(chain[1], scope.mro)
            if callee is not None:
                ctx_params = self._ctx_params_for(callee, node, scope)
                sub = self.method_effects(callee, scope.mro, ctx_params, depth + 1)
                out.merge(sub, scope.func.name)
            else:
                # unresolved: could be a stored callable attribute
                out.add("self.{}".format(chain[1]), scope.func.name, False)
            handled = True
        elif isinstance(node.func, ast.Attribute):
            base = self._atom(node.func.value, scope)
            if base is not None and base[0] == "atom":
                atom = base[1]
                witness = "{} -> {}.{}()".format(
                    scope.func.name, atom, node.func.attr
                )
                out.add(atom, witness, False)
                if node.func.attr in MUTATOR_METHODS or self._candidates_mutate(
                    node.func.attr, depth + 1
                ):
                    out.add(atom, witness, True)
                handled = True
            elif base == ("base", "ctx"):
                out.add("ctx.{}".format(node.func.attr), scope.func.name, False)
                handled = True
        if not handled and isinstance(node.func, (ast.Attribute, ast.Subscript)):
            self._visit(node.func, out, scope, depth)
        for arg in node.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            self._visit(value, out, scope, depth)
        for keyword in node.keywords:
            self._visit(keyword.value, out, scope, depth)

    def _ctx_params_for(self, callee: FunctionInfo, call: ast.Call,
                        scope: _Scope) -> frozenset:
        """Callee parameters bound to the round context at this site."""
        names = []
        params = callee.params[1:] if callee.is_method else callee.params
        for param in params:
            arg = callee.arg_for_param(call, param)
            if arg is None:
                continue
            if self._atom(arg, scope) == ("base", "ctx"):
                names.append(param)
        return frozenset(names)

    # ------------------------------------------------------------------
    # one declared phase
    # ------------------------------------------------------------------
    def phase_effects(self, spec: SpecDecl, decl: PhaseDecl) -> EffectSet:
        mro = self.index.mro(spec.cls)
        out = EffectSet()
        for executor in (decl.run, decl.sizes):
            if executor is None:
                continue
            method = self.index.resolve_self_method(executor, mro)
            if method is None:
                continue
            ctx_params = frozenset(
                method.params[1:2] if method.is_method else method.params[:1]
            )
            out.merge(self.method_effects(method, mro, ctx_params))
        if decl.servers is not None:
            out.add("self.{}".format(decl.servers), "CommPhase servers", False)
        if decl.ctor == "ComputePhase" and decl.synchronized:
            for atom in SYNC_IMPLICIT_WRITES:
                out.add(atom, "sync policy (synchronized=True)", True)
            for atom in SYNC_IMPLICIT_READS:
                out.add(atom, "sync policy (synchronized=True)", False)
        return out


def infer_spec_effects(
    index: ProgramIndex, spec: SpecDecl
) -> Dict[str, EffectSet]:
    """Per-phase inferred effect sets for one reconstructed spec."""
    inference = EffectInference(index)
    return {decl.name: inference.phase_effects(spec, decl) for decl in spec.phases}


# ----------------------------------------------------------------------
# the rules
# ----------------------------------------------------------------------
def _conflict(
    a: str, b: str, effects: Dict[str, EffectSet]
) -> Optional[Tuple[str, str, str, str, str]]:
    """First ``(writer, atom, witness, toucher, verb)`` conflict for one
    unordered pair, or None — one finding per pair keeps write/write
    races (symmetric by definition) from double-reporting."""
    for writer, other in ((a, b), (b, a)):
        wset, oset = effects[writer], effects[other]
        for atom in sorted(wset.writes):
            for touched in sorted(oset.atoms()):
                if not atoms_conflict(atom, touched):
                    continue
                verb = "writes" if touched in oset.writes else "reads"
                return (writer, atom, wset.writes[atom], other, verb)
    return None


@register_program
class PhaseRaceRule(ProgramRule):
    """R012: DAG-unordered phases must not touch conflicting state."""

    rule_id = "R012"
    title = "data race between phases the after= DAG leaves unordered"
    severity = "error"
    fix_hint = (
        "order the phases with after=, or split the shared attribute so the "
        "overlapped phases touch disjoint state"
    )

    def run(self) -> None:
        inference = EffectInference(self.index)
        for spec in extract_round_specs(self.index):
            effects = {
                decl.name: inference.phase_effects(spec, decl)
                for decl in spec.phases
            }
            nodes = {decl.name: decl.node for decl in spec.phases}
            for a, b in concurrent_pairs(spec.phases):
                found = _conflict(a, b, effects)
                if found is None:
                    continue
                writer, atom, witness, other, verb = found
                self.report(
                    spec.module,
                    nodes[b],
                    "trainer {}: phases {!r} and {!r} are unordered but "
                    "{!r} writes {} (via {}) which {!r} {}".format(
                        spec.cls.name, a, b, writer, atom, witness,
                        other, verb,
                    ),
                )


@register_program
class EffectDeclarationDriftRule(ProgramRule):
    """R013: declared reads=/writes= must match the inferred effects."""

    rule_id = "R013"
    title = "phase effect declaration drifted from inferred effects"
    severity = "error"
    fix_hint = (
        "update the phase's reads=/writes= tuples to the inferred atoms (or "
        "drop the declaration; it is optional)"
    )

    def run(self) -> None:
        inference = EffectInference(self.index)
        for spec in extract_round_specs(self.index):
            for decl in spec.phases:
                if decl.declared_reads is None and decl.declared_writes is None:
                    continue
                inferred = inference.phase_effects(spec, decl)
                problems = []
                for label, declared, actual in (
                    ("reads", decl.declared_reads, set(inferred.reads)),
                    ("writes", decl.declared_writes, set(inferred.writes)),
                ):
                    if declared is None:
                        continue
                    missing = sorted(actual - set(declared))
                    stale = sorted(set(declared) - actual)
                    if missing:
                        problems.append(
                            "undeclared {} {}".format(label, missing)
                        )
                    if stale:
                        problems.append(
                            "declared-but-uninferred {} {}".format(label, stale)
                        )
                if problems:
                    self.report(
                        spec.module,
                        decl.node,
                        "trainer {}: phase {!r} {}".format(
                            spec.cls.name, decl.name, "; ".join(problems)
                        ),
                    )


@register_program
class UnorderedCommRule(ProgramRule):
    """R014: unordered same-kind CommPhases interleave nondeterministically."""

    rule_id = "R014"
    title = "unordered CommPhases emit the same message kind"
    severity = "error"
    fix_hint = (
        "order the comm phases with after=, or give the emissions distinct "
        "MessageKinds so the wire log stays attributable"
    )

    def run(self) -> None:
        for spec in extract_round_specs(self.index):
            comm = {
                decl.name: decl
                for decl in spec.phases
                if decl.ctor == "CommPhase" and decl.kind is not None
            }
            for a, b in concurrent_pairs(spec.phases):
                if a in comm and b in comm and comm[a].kind == comm[b].kind:
                    self.report(
                        spec.module,
                        comm[b].node,
                        "trainer {}: comm phases {!r} and {!r} are unordered "
                        "and both emit {}".format(
                            spec.cls.name, a, b, comm[a].kind
                        ),
                    )
