"""``python -m repro.lint`` — run the project linter.

Examples::

    python -m repro.lint src                      # whole tree, text output
    python -m repro.lint src --select R001,R003   # only those rules
    python -m repro.lint src --ignore R004        # all but R004
    python -m repro.lint src --no-program         # per-file rules only
    python -m repro.lint src --format=json        # machine-readable
    python -m repro.lint src --format=sarif       # GitHub code scanning
    python -m repro.lint --list-rules             # what exists

Exit status: ``0`` clean, ``1`` findings reported, ``2`` usage error
(unknown rule id, missing path), ``3`` internal analysis crash (a rule
raised — a linter bug, not a usage mistake; distinguishable so CI does
not mistype it).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from repro.lint.engine import LintEngine, registered_rules
from repro.lint.findings import Finding

_RANGE_RE = re.compile(r"^([A-Za-z]+)(\d+)-([A-Za-z]+)?(\d+)$")

#: CLI exit statuses, by name.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


def _expand_range(part: str) -> List[str]:
    """``R012-R014`` -> ``[R012, R013, R014]`` (both prefixes must agree
    when the second is spelled; ``R012-14`` works too).  Anything that
    is not a well-formed ascending range passes through verbatim, so it
    hits the engine's unknown-rule-id usage error instead of silently
    selecting nothing."""
    match = _RANGE_RE.match(part)
    if not match:
        return [part]
    prefix, start_digits, prefix2, end_digits = match.groups()
    if prefix2 is not None and prefix2 != prefix:
        return [part]
    start, end = int(start_digits), int(end_digits)
    if start > end:
        return [part]
    width = len(start_digits)
    return ["{}{:0{}d}".format(prefix, n, width) for n in range(start, end + 1)]


def _split_ids(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    ids: List[str] = []
    for part in value.split(","):
        part = part.strip()
        if part:
            ids.extend(_expand_range(part))
    return ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the ColumnSGD reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids or ranges to run, e.g. "
        "R001,R012-R014 (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids or ranges to skip",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule wall time to stderr after linting",
    )
    parser.add_argument(
        "--program",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run whole-program rules (R007+) over the file set (default: on)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        "{} finding(s): {} error(s), {} warning(s)".format(
            len(findings), errors, warnings
        )
    )
    return "\n".join(lines)


def _render_stats(engine: LintEngine) -> str:
    lines = ["rule timings (wall):"]
    for rule_id, seconds in sorted(
        engine.stats.items(), key=lambda kv: kv[1], reverse=True
    ):
        lines.append("  {:<16} {:>9.3f}s".format(rule_id, seconds))
    lines.append("  {:<16} {:>9.3f}s".format("total", sum(engine.stats.values())))
    return "\n".join(lines)


def _render_json(findings: List[Finding], engine: LintEngine, program: bool) -> str:
    executed = [cls.rule_id for cls in engine.rule_classes] + [
        cls.rule_id for cls in engine.program_rule_classes
    ]
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
            "program": program,
            "rules": sorted(executed),
        },
        indent=2,
        sort_keys=True,
    )


def _render_sarif(findings: List[Finding], engine: LintEngine) -> str:
    """SARIF 2.1.0 for GitHub code scanning (lines and columns 1-based)."""
    rules = sorted(
        engine.rule_classes + engine.program_rule_classes,
        key=lambda cls: cls.rule_id,
    )
    results = []
    for f in findings:
        text = f.message if not f.fix_hint else "{} (fix: {})".format(
            f.message, f.fix_hint
        )
        results.append(
            {
                "ruleId": f.rule_id,
                "level": f.severity,
                "message": {"text": text},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/linting.md",
                        "rules": [
                            {
                                "id": cls.rule_id,
                                "shortDescription": {"text": cls.title},
                                "defaultConfiguration": {"level": cls.severity},
                            }
                            for cls in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.lint.program import registered_program_rules

        for rule_id, cls in sorted(registered_rules().items()):
            print("{}  {:<50} [{}]".format(rule_id, cls.title, cls.severity))
        for rule_id, cls in sorted(registered_program_rules().items()):
            print("{}  {:<50} [{}, program]".format(rule_id, cls.title, cls.severity))
        return EXIT_CLEAN

    try:
        engine = LintEngine(
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            program=args.program,
            stats=args.stats,
        )
    except ValueError as exc:
        print("usage error: {}".format(exc), file=sys.stderr)
        return EXIT_USAGE
    try:
        findings = engine.lint_paths(args.paths)
    except OSError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # a rule crashed: linter bug, not usage error
        print(
            "internal error: {}: {}".format(type(exc).__name__, exc),
            file=sys.stderr,
        )
        return EXIT_INTERNAL

    if args.format == "json":
        print(_render_json(findings, engine, args.program))
    elif args.format == "sarif":
        print(_render_sarif(findings, engine))
    elif findings:
        print(_render_text(findings))
    else:
        print("clean: no findings")
    if args.stats:
        # stderr, so json/sarif on stdout stay machine-parseable
        print(_render_stats(engine), file=sys.stderr)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
