"""``python -m repro.lint`` — run the project linter.

Examples::

    python -m repro.lint src                      # whole tree, text output
    python -m repro.lint src --select R001,R003   # only those rules
    python -m repro.lint src --ignore R004        # all but R004
    python -m repro.lint src --format=json        # machine-readable
    python -m repro.lint --list-rules             # what exists

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.engine import LintEngine, registered_rules
from repro.lint.findings import Finding


def _split_ids(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the ColumnSGD reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        "{} finding(s): {} error(s), {} warning(s)".format(
            len(findings), errors, warnings
        )
    )
    return "\n".join(lines)


def _render_json(findings: List[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print("{}  {:<45} [{}]".format(rule_id, cls.title, cls.severity))
        return 0

    try:
        engine = LintEngine(select=_split_ids(args.select), ignore=_split_ids(args.ignore))
    except ValueError as exc:
        print("usage error: {}".format(exc), file=sys.stderr)
        return 2
    try:
        findings = engine.lint_paths(args.paths)
    except OSError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(findings))
    elif findings:
        print(_render_text(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0
