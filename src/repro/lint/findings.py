"""Finding records produced by the static-analysis rules.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain frozen dataclass so the CLI can sort findings,
render them as text, or dump them as JSON without any further logic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Ranked severities; the CLI exit code is nonzero if *any* finding
#: survives filtering, but reports group by severity.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    fix_hint: str = ""

    def render(self) -> str:
        """One-line human-readable report entry."""
        text = "{}:{}:{}: {} [{}] {}".format(
            self.path, self.line, self.col, self.severity, self.rule_id, self.message
        )
        if self.fix_hint:
            text += " (fix: {})".format(self.fix_hint)
        return text

    def as_dict(self) -> dict:
        """JSON-serialisable form for ``--format=json``."""
        return asdict(self)
