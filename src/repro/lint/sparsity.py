"""Sparsity-safety abstract interpretation (rules R015-R017).

ColumnSGD's headline claim is that per-iteration work is O(nnz of the
mini-batch), not O(d) — the simulator *charges* time accordingly via
``ComputeCostModel.sparse_work``/``dense_work``, but nothing stops a
regression from densifying a gradient or looping over ``dim`` inside a
hot path while the charges (and therefore every reproduced figure)
still claim sparse cost.  This module closes that gap statically,
following the R010/R012 declaration-vs-reality pattern:

* every RoundSpec executor (reconstructed by
  :func:`repro.lint.effects.extract_round_specs` under each trainer's
  MRO view) is abstractly interpreted over a **cost-class lattice**

      O(1)  ⊑  O(B)  ⊑  O(nnz)  ⊑  O(d)

  where B is the mini-batch size, nnz the batch's stored entries, and
  d the model dimension.  A function's class is the join of its loop
  trip classes (``range(dim)`` is O(d), ``iter_rows()`` is O(nnz)),
  the axiomatized classes of the ``SparseVector``/``CSRMatrix``/ops
  primitives it calls, the size classes of its dense numpy allocations,
  and the classes of the project functions it calls (via the PR 2/3
  call graph, depth-capped);
* a small **sparsity lattice** (sparse / dense / scalar) classifies
  value expressions, so sparse→dense coercions (``np.asarray`` of a
  ``SparseVector``-producing expression) are recognised as
  densification even without a ``to_dense`` call.

The ``repro.linalg`` kernels themselves are *axioms*: the analysis
never descends into their bodies (their internal ``np.zeros`` is what
"O(nnz) kernel" means), and their implementation is checked dynamically
instead, by the op counters in :mod:`repro.linalg.counters` and the
engine's ``check_cost`` audit.

Three rules consume the result:

* **R015** — hot-path densification: a ``to_dense()`` call, an
  O(d)-sized dense allocation, or a sparse→dense coercion reachable
  from a per-round executor, reported at the site with the witness
  call chain from the executor;
* **R016** — charged-vs-actual cost drift: an executor whose inferred
  cost class exceeds the class of its ``sparse_work``/``dense_work``
  charges (one free class of O(B) bookkeeping is allowed), reported at
  every top-class contributing site;
* **R017** — quadratic sparse accumulation: an immutable
  ``SparseVector`` rebuilt from itself inside a loop is O(nnz²);
  accumulate in a dict or dense buffer and construct once.

Like the effect inference, everything here over-approximates: unknown
loop bounds default to O(B), unknown allocations to O(B), and findings
anchor at concrete syntactic sites so a reviewed site is silenced with
one ``# lint: noqa[R015,R016]`` comment that documents the reasoning.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.lint.effects import SpecDecl, extract_round_specs
from repro.lint.program import (
    FunctionInfo,
    ModuleInfo,
    ProgramIndex,
    ProgramRule,
    register_program,
)

# ----------------------------------------------------------------------
# the cost-class lattice
# ----------------------------------------------------------------------
O1, OB, ONNZ, OD = 0, 1, 2, 3

CLASS_NAMES = {O1: "O(1)", OB: "O(B)", ONNZ: "O(nnz)", OD: "O(d)"}

#: Modules whose complexity is axiomatized by :data:`PRIMITIVE_COSTS`.
#: The analysis never descends into them and never flags their bodies;
#: the runtime op counters check their implementation instead.
PRIMITIVE_MODULES = (
    "repro.linalg.sparse_vector",
    "repro.linalg.csr",
    "repro.linalg.ops",
    "repro.linalg.counters",
)

#: Axiomatized cost classes of the sparse primitives, keyed by the
#: trailing call-chain segment.  Only names distinctive enough not to
#: collide with stdlib/numpy idioms appear here (``items``/``empty``
#: would match dict iteration and ``np.empty``).
PRIMITIVE_COSTS: Dict[str, int] = {
    # densifying primitives
    "to_dense": OD,
    "from_dense": OD,
    "hstack_from_partitions": OD,
    # O(nnz) kernels and constructors
    "dot": ONNZ,
    "scale": ONNZ,
    "norm_sq": ONNZ,
    "restrict": ONNZ,
    "from_dict": ONNZ,
    "from_rows": ONNZ,
    "take_rows": ONNZ,
    "select_columns": ONNZ,
    "vstack": ONNZ,
    "iter_rows": ONNZ,
    "column_scale": ONNZ,
    "row_dots": ONNZ,
    "row_dots_squared": ONNZ,
    "accumulate_rows": ONNZ,
    "accumulate_rows_squared": ONNZ,
    # cheap accessors
    "slice_rows": OB,
    "row_nnz": OB,
}

#: numpy allocation functions whose first argument is a shape/size.
NP_SIZED_ALLOCS = ("zeros", "empty", "ones", "full", "arange")

#: numpy allocation functions shaped like their array argument.
NP_LIKE_ALLOCS = ("zeros_like", "empty_like", "ones_like", "full_like")

#: numpy roots — excluded from primitive-table matching (``np.dot`` is
#: not ``SparseVector.dot``) and recognised for allocation/coercion.
_NP_ROOTS = ("np", "numpy")

#: Call-chain names producing sparse values, for coercion detection.
SPARSE_PRODUCERS = frozenset(
    {
        "SparseVector", "CSRMatrix", "from_dict", "from_rows", "restrict",
        "row", "take_rows", "select_columns", "column_scale", "slice_rows",
        "vstack",
    }
)

#: Names never classified as size terms (receivers, builtins, modules).
_SKIP_NAMES = frozenset(
    {
        "self", "ctx", "cls", "np", "numpy", "len", "min", "max", "int",
        "float", "abs", "sum", "range", "enumerate", "zip", "sorted",
        "list", "tuple", "dict", "set", "reversed",
    }
)

_NNZ_TOKENS = ("nnz", "indices")
_DIM_TOKENS = ("dim", "n_cols", "n_features", "n_params", "model_elements",
               "n_columns", "num_features")
_CONST_TOKENS = ("n_workers", "width", "n_groups", "n_classes", "n_factors",
                 "n_servers", "group_size", "hidden", "n_layers", "backup",
                 "n_partitions", "staleness")
#: dense model-shaped arrays, for ``*_like`` allocation sizing
_MODEL_TOKENS = ("param", "model", "weight", "theta", "velocity")
_MODEL_EXACT = re.compile(r"^_?[wv]\d?$", re.IGNORECASE)

#: Recursion budget for the interprocedural cost walk; matches the
#: effect inference's inline depth.
COST_DEPTH = 6

#: At most this many top-class witness sites are kept per function, so
#: one noqa'd site cannot hide an unbounded tail of others while the
#: findings stay readable.
MAX_WITNESSES = 8


# ----------------------------------------------------------------------
# size-term and sparsity classification
# ----------------------------------------------------------------------
def classify_size_name(name: str) -> int:
    """Cost class of one identifier used as a size/trip-count term."""
    low = name.lower()
    if low in _SKIP_NAMES:
        return O1
    if any(token in low for token in _NNZ_TOKENS):
        return ONNZ
    if low in ("d", "m") or any(token in low for token in _DIM_TOKENS):
        return OD
    if any(token in low for token in _CONST_TOKENS):
        return O1
    return OB


def classify_size_expr(expr: ast.AST) -> int:
    """Join of the size classes of every identifier in ``expr``.

    Constants and skipped names contribute O(1); an expression with no
    classifiable name at all (``len(batch)``) defaults to O(B) via the
    identifiers it does mention, or O(1) for a pure literal.
    """
    best = O1
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            best = max(best, classify_size_name(node.id))
        elif isinstance(node, ast.Attribute):
            best = max(best, classify_size_name(node.attr))
    return best


def _is_model_shaped(expr: ast.AST) -> bool:
    """Whether a ``*_like`` template expression names a model-sized array."""
    for node in ast.walk(expr):
        names = []
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        for name in names:
            low = name.lower()
            if any(token in low for token in _MODEL_TOKENS):
                return True
            if _MODEL_EXACT.match(name):
                return True
    return False


def np_alloc_class(call: ast.Call, chain: Tuple[str, ...]) -> Optional[int]:
    """Size class of a numpy allocation call, or None if not one."""
    if chain[0] not in _NP_ROOTS or len(chain) != 2:
        return None
    name = chain[-1]
    if name in NP_SIZED_ALLOCS:
        if not call.args:
            return O1
        return classify_size_expr(call.args[0])
    if name in NP_LIKE_ALLOCS:
        if not call.args:
            return O1
        return OD if _is_model_shaped(call.args[0]) else OB
    return None


def is_sparse_expr(expr: ast.AST, func: FunctionInfo) -> bool:
    """Sparsity lattice, shallowly: does ``expr`` produce a sparse value?

    A call whose chain ends in a sparse producer, or a local name whose
    every binding does.  Anything else is dense/scalar/unknown.
    """
    if isinstance(expr, ast.Call):
        chain = _chain(expr)
        return bool(chain) and chain[0] not in _NP_ROOTS and chain[-1] in SPARSE_PRODUCERS
    if isinstance(expr, ast.Name):
        bindings = func.env().get(expr.id, [])
        return bool(bindings) and all(
            isinstance(b, ast.Call) and is_sparse_expr(b, func) for b in bindings
        )
    return False


def _chain(call: ast.Call) -> Optional[Tuple[str, ...]]:
    from repro.lint.engine import dotted_name

    return dotted_name(call.func)


# ----------------------------------------------------------------------
# direct densification sites (R015's per-function scan)
# ----------------------------------------------------------------------
class DensifySite(NamedTuple):
    node: ast.Call
    desc: str


def densify_sites(func: FunctionInfo) -> List[DensifySite]:
    """Syntactic densification sites in one (non-primitive) function."""
    sites: List[DensifySite] = []
    for call, chain in func.calls:
        if chain[0] in _NP_ROOTS:
            alloc = np_alloc_class(call, chain)
            if alloc is not None and alloc >= OD:
                sites.append(DensifySite(
                    call,
                    "O(d)-sized dense allocation {}".format(_render(call)),
                ))
            elif chain[-1] in ("array", "asarray") and call.args and is_sparse_expr(
                call.args[0], func
            ):
                sites.append(DensifySite(
                    call,
                    "sparse value coerced dense via {}".format(".".join(chain)),
                ))
            continue
        if chain[-1] == "to_dense":
            sites.append(DensifySite(
                call, "{}() densification".format(".".join(chain))
            ))
    return sites


def _render(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ----------------------------------------------------------------------
# interprocedural cost inference
# ----------------------------------------------------------------------
class Contribution(NamedTuple):
    """One concrete site contributing a cost class, with its call path."""

    cls: int
    desc: str
    node: ast.AST
    module: ModuleInfo
    path: Tuple[str, ...]


class FunctionCost(NamedTuple):
    cls: int
    contribs: Tuple[Contribution, ...]  # witnesses at exactly ``cls``


_EMPTY_COST = FunctionCost(O1, ())


class CostInference:
    """Memoized cost-class join over the approximate call graph.

    A function's class is the *join* (max) of every contribution —
    loop trips, primitive calls, dense allocations, and callee classes.
    Join rather than product is deliberate: per-worker loops over
    disjoint shards multiply an O(1) worker count into per-shard work,
    and modelling that precisely would drown the lattice in false O(d)
    products.  Asymptotic drift (a ``range(dim)`` loop, a ``to_dense``)
    still lands in the right class, which is all R015/R016 need.
    """

    def __init__(self, index: ProgramIndex):
        self.index = index
        self._memo: Dict[Tuple[int, Optional[str]], FunctionCost] = {}

    # ------------------------------------------------------------------
    def cost(self, func: FunctionInfo, view=None, depth: int = 0) -> FunctionCost:
        key = (id(func), view.qualname if view is not None else None)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._memo[key] = _EMPTY_COST  # cycle guard
        result = self._infer(func, view, depth)
        self._memo[key] = result
        return result

    def _infer(self, func: FunctionInfo, view, depth: int) -> FunctionCost:
        contribs: List[Contribution] = []
        module = func.module

        for node in ast.walk(func.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                cls = self._trip_class(node.iter)
                if cls > O1:
                    contribs.append(Contribution(
                        cls,
                        "loop over {}".format(_render(node.iter)),
                        node,
                        module,
                        (func.name,),
                    ))
            elif isinstance(node, ast.While):
                contribs.append(Contribution(
                    OB, "while loop", node, module, (func.name,)
                ))

        for call, chain in func.calls:
            targets = self._targets(call, chain, func, view)
            project = [
                t for t in targets if t.module.name not in PRIMITIVE_MODULES
            ]
            primitives = [
                t for t in targets if t.module.name in PRIMITIVE_MODULES
            ]
            if project and depth < COST_DEPTH:
                for callee in project:
                    callee_view = view if chain[0] == "self" else None
                    sub = self.cost(callee, callee_view, depth + 1)
                    for contrib in sub.contribs:
                        contribs.append(contrib._replace(
                            path=(func.name,) + contrib.path
                        ))
                continue
            if chain[0] in _NP_ROOTS:
                alloc = np_alloc_class(call, chain)
                if alloc is not None and alloc > O1:
                    contribs.append(Contribution(
                        alloc,
                        "dense allocation {}".format(_render(call)),
                        call,
                        module,
                        (func.name,),
                    ))
                continue
            if primitives or chain[-1] in PRIMITIVE_COSTS:
                cls = PRIMITIVE_COSTS.get(chain[-1])
                if cls is not None and cls > O1:
                    contribs.append(Contribution(
                        cls,
                        "{}() [{} primitive]".format(
                            ".".join(chain), CLASS_NAMES[cls]
                        ),
                        call,
                        module,
                        (func.name,),
                    ))

        if not contribs:
            return _EMPTY_COST
        cls = max(c.cls for c in contribs)
        top = tuple(c for c in contribs if c.cls == cls)[:MAX_WITNESSES]
        return FunctionCost(cls, top)

    # ------------------------------------------------------------------
    def _targets(self, call, chain, func, view) -> List[FunctionInfo]:
        view_class = view if chain[0] == "self" else None
        return self.index.resolve_call(chain, func, func.module, view_class=view_class)

    @staticmethod
    def _trip_class(iter_expr: ast.AST) -> int:
        if isinstance(iter_expr, ast.Call):
            chain = _chain(iter_expr)
            if chain:
                name = chain[-1]
                if name == "range":
                    best = O1
                    for arg in iter_expr.args:
                        best = max(best, classify_size_expr(arg))
                    return best
                if name == "iter_rows":
                    return ONNZ  # B trips, O(row nnz) bodies: O(nnz) total
                if name in ("enumerate", "zip", "reversed", "sorted"):
                    best = O1
                    for arg in iter_expr.args:
                        best = max(best, CostInference._trip_class(arg))
                    return max(best, OB)
            return OB
        if isinstance(iter_expr, (ast.Name, ast.Attribute)):
            name = iter_expr.id if isinstance(iter_expr, ast.Name) else iter_expr.attr
            return max(classify_size_name(name), OB)
        return OB

    # ------------------------------------------------------------------
    def charge_class(self, func: FunctionInfo, view=None) -> int:
        """Join of the size classes this function (transitively) charges
        through ``sparse_work``/``dense_work`` calls."""
        best = O1
        for reached, _ in self.reachable([func], view).items():
            for call, chain in reached.calls:
                if chain[-1] == "sparse_work":
                    best = max(best, self._charge_arg(call, "nnz"))
                elif chain[-1] == "dense_work":
                    best = max(best, self._charge_arg(call, "n_elements"))
        return best

    @staticmethod
    def _charge_arg(call: ast.Call, kwarg: str) -> int:
        for keyword in call.keywords:
            if keyword.arg == kwarg:
                return classify_size_expr(keyword.value)
        if call.args:
            return classify_size_expr(call.args[0])
        return O1

    # ------------------------------------------------------------------
    def reachable(
        self, roots: Sequence[FunctionInfo], view
    ) -> Dict[FunctionInfo, Tuple[str, ...]]:
        """Project functions reachable from ``roots`` (depth-capped),
        each with the first-discovered call path; primitive modules are
        the frontier and are not entered."""
        out: Dict[FunctionInfo, Tuple[str, ...]] = {}
        stack: List[Tuple[FunctionInfo, Tuple[str, ...]]] = [
            (root, (root.name,)) for root in roots
        ]
        while stack:
            func, path = stack.pop()
            if func in out or func.module.name in PRIMITIVE_MODULES:
                continue
            out[func] = path
            if len(path) > COST_DEPTH:
                continue
            for call, chain in func.calls:
                for callee in self._targets(call, chain, func, view):
                    if callee not in out:
                        stack.append((callee, path + (callee.name,)))
        return out


# ----------------------------------------------------------------------
# executor enumeration shared by R015/R016
# ----------------------------------------------------------------------
def _spec_executors(index: ProgramIndex, spec: SpecDecl):
    """Yield ``(phase, role, method)`` for every resolvable executor of
    one reconstructed spec, under the trainer's MRO view."""
    mro = index.mro(spec.cls)
    for decl in spec.phases:
        for role in ("run", "sizes", "servers"):
            name = getattr(decl, role)
            if not isinstance(name, str):
                continue
            method = index.resolve_self_method(name, mro)
            if method is not None:
                yield decl, role, method


# ----------------------------------------------------------------------
# R015: hot-path densification
# ----------------------------------------------------------------------
@register_program
class HotPathDensificationRule(ProgramRule):
    """R015: no densification reachable from a per-round executor.

    ``to_dense()`` calls, O(d)-sized dense allocations, and sparse→dense
    coercions are reported at their site, with the executor and witness
    call chain in the message.  Sites shared by several trainers (base
    class executors) are reported once.
    """

    rule_id = "R015"
    title = "densification reachable from a per-round executor"
    severity = "error"
    fix_hint = (
        "keep the hot path sparse (SparseVector/CSRMatrix kernels); if the "
        "dense form is the simulated system's real behavior, justify with "
        "# lint: noqa[R015] and a comment"
    )

    def run(self) -> None:
        inference = CostInference(self.index)
        reported: Set[Tuple[str, int, int]] = set()
        for spec in extract_round_specs(self.index):
            if spec.module.ctx.is_test_code():
                continue
            roots = [
                (decl, method)
                for decl, role, method in _spec_executors(self.index, spec)
            ]
            for decl, method in roots:
                for func, path in inference.reachable([method], spec.cls).items():
                    if func.module.ctx.is_test_code():
                        continue
                    for site in densify_sites(func):
                        key = (func.module.path, site.node.lineno,
                               site.node.col_offset)
                        if key in reported:
                            continue
                        reported.add(key)
                        self.report(
                            func.module,
                            site.node,
                            "{} on the hot path of executor {}.{} "
                            "(via {})".format(
                                site.desc,
                                spec.cls.name,
                                method.name,
                                " -> ".join(path),
                            ),
                        )


# ----------------------------------------------------------------------
# R016: charged-vs-actual cost drift
# ----------------------------------------------------------------------
@register_program
class CostDriftRule(ProgramRule):
    """R016: an executor's inferred cost class must not exceed the class
    of its cost-model charges.

    Checked for every ComputePhase/MasterPhase ``run=`` executor; the
    allowed class is the join of the executor's transitively charged
    ``sparse_work``/``dense_work`` size classes and O(B) (per-round
    bookkeeping over batch-sized buffers is free).  Findings anchor at
    every top-class contributing site, so one noqa cannot hide an
    independent contributor, and shared base-class sites are reported
    once.  The runtime twin is the engine's ``check_cost`` audit.
    """

    rule_id = "R016"
    title = "executor cost class exceeds its charged work class"
    severity = "error"
    fix_hint = (
        "charge the work (cost.sparse_work/dense_work with the right size "
        "term) or push the computation down to an O(nnz) kernel; if the "
        "simulator intentionally does dense math the real system avoids, "
        "justify with # lint: noqa[R016] and a comment"
    )

    def run(self) -> None:
        inference = CostInference(self.index)
        reported: Set[Tuple[str, int, int]] = set()
        for spec in extract_round_specs(self.index):
            if spec.module.ctx.is_test_code():
                continue
            for decl, role, method in _spec_executors(self.index, spec):
                if role != "run" or decl.ctor not in ("ComputePhase", "MasterPhase"):
                    continue
                fc = inference.cost(method, view=spec.cls)
                allowed = max(inference.charge_class(method, view=spec.cls), OB)
                if fc.cls <= allowed:
                    continue
                for contrib in fc.contribs:
                    if contrib.module.ctx.is_test_code():
                        continue
                    key = (contrib.module.path, contrib.node.lineno,
                           contrib.node.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    self.report(
                        contrib.module,
                        contrib.node,
                        "executor {}.{} does {} work but charges only {}: "
                        "{} (via {})".format(
                            spec.cls.name,
                            method.name,
                            CLASS_NAMES[fc.cls],
                            CLASS_NAMES[allowed],
                            contrib.desc,
                            " -> ".join(contrib.path),
                        ),
                    )


# ----------------------------------------------------------------------
# R017: quadratic sparse accumulation
# ----------------------------------------------------------------------
@register_program
class QuadraticAccumulationRule(ProgramRule):
    """R017: an immutable SparseVector rebuilt from itself in a loop.

    ``SparseVector`` operations copy their inputs, so ``acc =
    SparseVector(...acc...)`` (or any ``SparseVector`` factory fed the
    accumulator) inside a loop does O(nnz) copying per iteration —
    O(nnz²) total.  Accumulate into a dict or dense buffer and construct
    the vector once after the loop.
    """

    rule_id = "R017"
    title = "quadratic sparse accumulation in a loop"
    severity = "error"
    fix_hint = (
        "accumulate into a dict or dense buffer inside the loop and build "
        "the SparseVector once afterwards"
    )

    def run(self) -> None:
        for func in self.index.functions:
            if func.module.name in PRIMITIVE_MODULES:
                continue
            if func.module.ctx.is_test_code():
                continue
            for loop in ast.walk(func.node):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for stmt in ast.walk(loop):
                    target = self._accumulation_target(stmt)
                    if target is None:
                        continue
                    value = stmt.value
                    if not self._builds_sparse(value):
                        continue
                    if isinstance(stmt, ast.AugAssign) or self._references(
                        value, target
                    ):
                        self.report(
                            func.module,
                            stmt,
                            "SparseVector rebuilt from accumulator {!r} every "
                            "iteration of a loop in {}() — O(nnz^2); build it "
                            "once after the loop".format(target, func.name),
                        )

    @staticmethod
    def _accumulation_target(stmt: ast.AST) -> Optional[str]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            return stmt.targets[0].id
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            return stmt.target.id
        return None

    @staticmethod
    def _builds_sparse(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = _chain(node)
                if chain and "SparseVector" in chain:
                    return True
        return False

    @staticmethod
    def _references(expr: ast.AST, name: str) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id == name
            for node in ast.walk(expr)
        )
