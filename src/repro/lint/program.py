"""Whole-program dataflow analysis (rules R007-R011).

The per-file rules in :mod:`repro.lint.rules` see one AST at a time, so
a helper that calls ``time.time()`` two frames away from the simulator,
or a hand-written byte count passed through a function boundary into a
:class:`~repro.net.message.Message`, sails straight through them.  This
module closes that gap: it parses every file of the lint run once,
builds a module import graph and an *approximate* call graph, and runs
five interprocedural analyses on top:

* **R007** — entropy sources (``random``, unseeded ``np.random``,
  ``os.urandom``, ``uuid``, ``secrets``) reachable from protocol-path
  code through any chain of project calls (upgrades R001 from a
  call-site check to a reachability check);
* **R008** — wall-clock sources (``time.*``, ``datetime``, ``sleep``)
  reachable from protocol-path code (upgrades R003 likewise);
* **R009** — byte provenance: every value flowing into
  ``Message(size_bytes=...)`` must derive from
  :mod:`repro.storage.serialization` helpers or named constants, traced
  *across* function boundaries (parameters to caller arguments, calls to
  returned expressions) — the interprocedural completion of R002;
* **R010** — static BSP protocol extraction: the message kinds a
  trainer's round loop emits must equal the kinds it declares in
  ``self._round_expected`` for the runtime
  :class:`~repro.net.protocol.ProtocolChecker`, so code/declaration
  drift fails ``python -m repro.lint`` instead of a runtime repro;
* **R011** — import layering: ``models``/``linalg``/``optim`` must
  never import (directly or transitively) ``sim``/``net``/``core``.

The call graph is deliberately approximate: bare names resolve within
the defining module and its imports, ``self.method()`` resolves through
a statically-derived MRO, and other attribute calls fall back to a
global match on the method name (capped, to bound over-linking).  The
analyses are designed so that over-approximation can only *propagate*
facts established at precise sites (an external entropy call, a
``Message`` construction), never invent them.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.engine import FileContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.rules import (
    ALLOWED_NP_RANDOM,
    DATETIME_NOW_FUNCS,
    WALLCLOCK_TIME_FUNCS,
)

#: Modules whose job *is* entropy handling: never treated as taint
#: sources or carriers (they are the sanctioned boundary R001 points to).
SANCTIONED_MODULES = ("repro.utils.rng",)

#: The local execution backend *measures* wall-clock time by contract —
#: that is its whole job (``runtime.measure``/``run_all`` time real
#: worker processes).  Protocol-path trainers may call into it without
#: tripping R008; what stays forbidden is importing ``time`` themselves
#: or reaching it through any other module.
WALLCLOCK_SANCTIONED_MODULES = SANCTIONED_MODULES + ("repro.runtime.local",)

#: The byte-model ground truth: R009 trusts this module, never recurses
#: into it, and never flags literals inside it.
SERIALIZATION_MODULE = "repro.storage.serialization"

#: Import-layering contract (R011): modules in a pure layer must never
#: reach a simulator layer through the import graph, and execution
#: backends (the ``runtime`` layer) must never reach the trainers they
#: serve — the runtime moves opaque bytes and measures time; knowing
#: *whose* bytes would invert the plug-in relationship.
PURE_LAYERS = ("models", "linalg", "optim")
SIMULATOR_LAYERS = ("sim", "net", "core", "engine", "runtime")
TRAINER_LAYERS = ("core", "baselines", "extensions")

#: Attribute-call fallback resolution gives up beyond this many
#: same-named candidates — over-linking ubiquitous names would make the
#: taint fixpoint meaninglessly broad.
MAX_NAME_CANDIDATES = 8

#: Recursion budget for the interprocedural provenance trace (R009).
PROVENANCE_DEPTH = 4

#: Kinds the runtime checker ignores (mirrors
#: ``repro.net.protocol.UNCHECKED_KINDS``); the static extractor (R010)
#: excludes them from the comparison for the same reason — scheduling
#: chatter (CONTROL), failure detection (HEARTBEAT), and recovery
#: traffic (CHECKPOINT) are accounted by the RecoveryPolicy, not the
#: trainer's Table-I declarations.  ``tests/test_lint_program.py`` pins
#: the two tuples equal so they cannot drift apart.
UNCHECKED_KINDS = ("CONTROL", "HEARTBEAT", "CHECKPOINT")


def _shallow_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested def/class bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _module_name_for(path: str) -> str:
    """Dotted module name: real for ``repro`` files, stem otherwise."""
    parts = Path(path).parts
    if "repro" in parts:
        tail = [p[:-3] if p.endswith(".py") else p for p in parts[parts.index("repro") + 1:]]
        if tail and tail[-1] == "__init__":
            tail = tail[:-1]
        return ".".join(["repro"] + tail)
    stem = Path(path).stem
    return stem


class FunctionInfo:
    """One function or method: its AST, parameters, calls, and returns."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        class_name: Optional[str] = None,
    ):
        self.module = module
        self.node = node
        self.name = node.name
        self.class_name = class_name
        self.qualname = "{}.{}".format(
            module.name, node.name if class_name is None else "{}.{}".format(class_name, node.name)
        )
        self.is_method = class_name is not None
        args = node.args
        self.params: List[str] = [a.arg for a in args.posonlyargs + args.args]
        self.kwonly: List[str] = [a.arg for a in args.kwonlyargs]
        #: every Call in the body (including nested defs), with its chain
        self.calls: List[Tuple[ast.Call, Tuple[str, ...]]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                chain = dotted_name(sub.func)
                if chain:
                    self.calls.append((sub, chain))
        #: return-value expressions of *this* function (not nested defs)
        self.returns: List[ast.AST] = [
            sub.value
            for sub in _shallow_walk(node)
            if isinstance(sub, ast.Return) and sub.value is not None
        ]
        self._env: Optional[Dict[str, List[ast.AST]]] = None

    # ------------------------------------------------------------------
    def env(self) -> Dict[str, List[ast.AST]]:
        """Local name -> assigned value expressions (incl. loop targets)."""
        if self._env is None:
            env: Dict[str, List[ast.AST]] = {}
            for sub in ast.walk(self.node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        _bind_target(env, target, sub.value)
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    _bind_target(env, sub.target, sub.value)
                elif isinstance(sub, ast.AugAssign):
                    _bind_target(env, sub.target, sub.value)
                elif isinstance(sub, (ast.For, ast.AsyncFor)):
                    _bind_target(env, sub.target, sub.iter)
            self._env = env
        return self._env

    def arg_for_param(self, call: ast.Call, param: str) -> Optional[ast.AST]:
        """The expression a call site passes for ``param`` of this function."""
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if param in self.params:
            index = self.params.index(param)
            if self.is_method:
                index -= 1  # bound call: 'self' is implicit at the site
            if 0 <= index < len(call.args):
                return call.args[index]
        return None


def _bind_target(env: Dict[str, List[ast.AST]], target: ast.AST, value: ast.AST) -> None:
    if isinstance(target, ast.Name):
        env.setdefault(target.id, []).append(value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        elts = getattr(value, "elts", None)
        if elts is not None and len(elts) == len(target.elts):
            for t, v in zip(target.elts, elts):
                _bind_target(env, t, v)
        else:
            for t in target.elts:
                _bind_target(env, t, value)
    elif isinstance(target, (ast.Subscript, ast.Starred)):
        _bind_target(env, target.value, value)


class ClassInfo:
    """One class: its methods and base-class names (for the static MRO)."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = "{}.{}".format(module.name, node.name)
        self.bases: List[str] = []
        for base in node.bases:
            chain = dotted_name(base)
            if chain:
                self.bases.append(chain[-1])
        self.methods: Dict[str, FunctionInfo] = {}


class ModuleInfo:
    """Everything the program analyses need to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.ctx = FileContext(self.path, source)
        self.name = _module_name_for(self.path)
        #: local alias -> fully dotted imported name
        self.imports: Dict[str, str] = {}
        #: (target module, import statement node) for every repro import
        self.import_edges: List[Tuple[str, ast.AST]] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level name -> assigned value expressions
        self.module_assigns: Dict[str, List[ast.AST]] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                    if alias.name.split(".")[0] == "repro":
                        self.import_edges.append((alias.name, node))
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = "{}.{}".format(node.module, alias.name)
                if node.module.split(".")[0] == "repro":
                    self.import_edges.append((node.module, node))
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(self, stmt)
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(self, stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls.methods[sub.name] = FunctionInfo(self, sub, class_name=stmt.name)
                self.classes[stmt.name] = cls
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns.setdefault(target.id, []).append(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self.module_assigns.setdefault(stmt.target.id, []).append(stmt.value)

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


class ProgramIndex:
    """The whole-program view: modules, call resolution, reverse edges."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}
        self.functions: List[FunctionInfo] = []
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        for module in self.modules:
            for func in module.all_functions():
                self.functions.append(func)
                self.functions_by_name.setdefault(func.name, []).append(func)
            for cls in module.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
        self._callers: Optional[Dict[FunctionInfo, List[Tuple[FunctionInfo, ast.Call]]]] = None

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def external_name(self, chain: Tuple[str, ...], module: ModuleInfo) -> Optional[str]:
        """Fully-dotted name of a call chain, resolved through imports."""
        root = chain[0]
        if root in module.imports:
            return ".".join([module.imports[root]] + list(chain[1:]))
        if len(chain) > 1:
            return ".".join(chain)
        return None

    def resolve_internal(self, dotted: str) -> List[FunctionInfo]:
        """Resolve ``repro.pkg.mod.func`` by longest module-name prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.by_name.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1 and rest[0] in module.functions:
                return [module.functions[rest[0]]]
            if len(rest) == 2 and rest[0] in module.classes:
                method = module.classes[rest[0]].methods.get(rest[1])
                return [method] if method else []
            return []
        return []

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Static linearisation: the class, then bases by declared order."""
        order: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            order.append(current)
            for base_name in current.bases:
                for candidate in self.classes_by_name.get(base_name, ()):
                    queue.append(candidate)
        return order

    def resolve_self_method(self, name: str, mro: Sequence[ClassInfo]) -> Optional[FunctionInfo]:
        for cls in mro:
            if name in cls.methods:
                return cls.methods[name]
        return None

    def resolve_call(
        self,
        chain: Tuple[str, ...],
        func: Optional[FunctionInfo],
        module: ModuleInfo,
        view_class: Optional[ClassInfo] = None,
    ) -> List[FunctionInfo]:
        """Candidate targets of one call, in the context of ``func``.

        ``view_class`` selects the MRO used for ``self.method()`` calls
        (the analysed subclass for R010's per-class walks; the defining
        class otherwise).
        """
        if chain[0] == "self" and len(chain) == 2:
            klass = view_class
            if klass is None and func is not None and func.class_name:
                klass = module.classes.get(func.class_name)
                if klass is None:
                    for candidate in self.classes_by_name.get(func.class_name, ()):
                        klass = candidate
                        break
            if klass is not None:
                target = self.resolve_self_method(chain[1], self.mro(klass))
                if target is not None:
                    return [target]
            return []
        if len(chain) == 1:
            name = chain[0]
            if name in module.imports:
                dotted = module.imports[name]
                if dotted.split(".")[0] == "repro":
                    return self.resolve_internal(dotted)
                return []
            local = module.functions.get(name)
            return [local] if local is not None else []
        # attribute call: imported-module chains are external ...
        if chain[0] in module.imports:
            dotted = self.external_name(chain, module)
            if dotted and dotted.split(".")[0] == "repro":
                return self.resolve_internal(dotted)
            return []
        # ... everything else falls back to a capped global name match.
        candidates = self.functions_by_name.get(chain[-1], [])
        methods = [c for c in candidates if c.is_method]
        pool = methods if methods else candidates
        if 0 < len(pool) <= MAX_NAME_CANDIDATES:
            return list(pool)
        return []

    # ------------------------------------------------------------------
    def callers_of(self, target: FunctionInfo) -> List[Tuple[FunctionInfo, ast.Call]]:
        """Reverse call edges, computed once for the whole program."""
        if self._callers is None:
            callers: Dict[FunctionInfo, List[Tuple[FunctionInfo, ast.Call]]] = {}
            for func in self.functions:
                for call, chain in func.calls:
                    for callee in self.resolve_call(chain, func, func.module):
                        callers.setdefault(callee, []).append((func, call))
            self._callers = callers
        return self._callers.get(target, [])


# ----------------------------------------------------------------------
# taint: entropy / wall-clock sources through the call graph
# ----------------------------------------------------------------------
def _is_entropy_source(dotted: str) -> bool:
    parts = dotted.split(".")
    if parts[0] == "random":
        return True
    if parts[0] in ("numpy", "np") and len(parts) >= 3 and parts[1] == "random":
        return parts[2] not in ALLOWED_NP_RANDOM
    if dotted == "os.urandom":
        return True
    if parts[0] == "uuid" and parts[-1] in ("uuid1", "uuid4"):
        return True
    if parts[0] == "secrets":
        return True
    return False


def _is_wallclock_source(dotted: str) -> bool:
    parts = dotted.split(".")
    if parts[0] == "time" and len(parts) >= 2 and parts[-1] in WALLCLOCK_TIME_FUNCS:
        return True
    if parts[0] == "datetime" and parts[-1] in DATETIME_NOW_FUNCS:
        return True
    return False


class TaintAnalysis:
    """Fixpoint: which functions can reach a source call transitively.

    ``witness[func]`` records how: either ``("source", dotted, node)``
    for a direct source call, or ``("call", node, callee)`` for a call
    into an already-tainted function — enough to render the full path.
    """

    def __init__(
        self,
        index: ProgramIndex,
        matcher,
        sanctioned: Sequence[str] = SANCTIONED_MODULES,
    ) -> None:
        self.index = index
        self.sanctioned = tuple(sanctioned)
        self.witness: Dict[FunctionInfo, tuple] = {}
        for func in index.functions:
            if func.module.name in self.sanctioned:
                continue
            for call, chain in func.calls:
                dotted = index.external_name(chain, func.module)
                if dotted and not dotted.startswith("repro.") and matcher(dotted):
                    self.witness.setdefault(func, ("source", dotted, call))
        changed = True
        while changed:
            changed = False
            for func in index.functions:
                if func in self.witness or func.module.name in self.sanctioned:
                    continue
                for call, chain in func.calls:
                    for callee in index.resolve_call(chain, func, func.module):
                        if callee in self.witness:
                            self.witness[func] = ("call", call, callee)
                            changed = True
                            break
                    if func in self.witness:
                        break

    def path_from(self, func: FunctionInfo) -> str:
        """Human-readable chain ``helper -> inner -> time.time``."""
        parts: List[str] = []
        current: Optional[FunctionInfo] = func
        for _ in range(10):
            if current is None or current not in self.witness:
                break
            record = self.witness[current]
            if record[0] == "source":
                parts.append(current.name)
                parts.append(record[1])
                break
            parts.append(current.name)
            current = record[2]
        return " -> ".join(parts)


# ----------------------------------------------------------------------
# program rule base + registry
# ----------------------------------------------------------------------
class ProgramRule:
    """Base class for one whole-program rule."""

    rule_id = "P000"
    title = "untitled program rule"
    severity = "error"
    fix_hint = ""

    def __init__(self, index: ProgramIndex):
        self.index = index
        self.findings: List[Finding] = []

    def run(self) -> None:
        raise NotImplementedError

    def report(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if module.ctx.suppressed(self.rule_id, line):
            return
        self.findings.append(
            Finding(
                path=module.path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
                fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            )
        )


_PROGRAM_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def register_program(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    from repro.lint.engine import registered_rules

    if cls.rule_id in _PROGRAM_REGISTRY or cls.rule_id in registered_rules():
        raise ValueError("duplicate rule id {}".format(cls.rule_id))
    _PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def registered_program_rules() -> Dict[str, Type[ProgramRule]]:
    """Copy of the program-rule registry, keyed by rule id."""
    return dict(_PROGRAM_REGISTRY)


# ----------------------------------------------------------------------
# R007 / R008: interprocedural taint reachability
# ----------------------------------------------------------------------
class _ReachabilityRule(ProgramRule):
    """Shared body of the two taint rules: flag every call, inside a
    protocol-path function, whose (approximate) callee can transitively
    reach a source.  Direct source calls stay R001/R003's business —
    these rules only fire on calls into *project* functions, which is
    exactly the case the per-file rules cannot see."""

    source_matcher = staticmethod(lambda dotted: False)
    source_word = "source"
    sanctioned_modules: Tuple[str, ...] = SANCTIONED_MODULES

    def run(self) -> None:
        taint = TaintAnalysis(
            self.index, self.source_matcher, sanctioned=self.sanctioned_modules
        )
        for func in self.index.functions:
            ctx = func.module.ctx
            if not ctx.in_protocol_path() or ctx.is_test_code():
                continue
            if func.module.name in self.sanctioned_modules:
                continue
            for call, chain in func.calls:
                for callee in self.index.resolve_call(chain, func, func.module):
                    if callee in taint.witness:
                        self.report(
                            func.module,
                            call,
                            "call to {}() reaches {} {} ({})".format(
                                callee.name,
                                self.source_word,
                                _witness_source(taint, callee),
                                taint.path_from(callee),
                            ),
                        )
                        break


def _witness_source(taint: TaintAnalysis, func: FunctionInfo) -> str:
    current: Optional[FunctionInfo] = func
    for _ in range(10):
        record = taint.witness.get(current)
        if record is None:
            break
        if record[0] == "source":
            return record[1]
        current = record[2]
    return "an external source"


@register_program
class EntropyReachabilityRule(_ReachabilityRule):
    """R007: no protocol-path function may reach an entropy source."""

    rule_id = "R007"
    title = "entropy source reachable from protocol path"
    severity = "error"
    fix_hint = "thread a seeded generator from repro.utils.rng through the call chain"
    source_matcher = staticmethod(_is_entropy_source)
    source_word = "entropy source"


@register_program
class WallclockReachabilityRule(_ReachabilityRule):
    """R008: no protocol-path function may reach wall-clock time."""

    rule_id = "R008"
    title = "wall-clock source reachable from protocol path"
    severity = "error"
    fix_hint = (
        "advance repro.sim.clock.SimClock with cost-model durations, or "
        "measure through repro.runtime.local (the sanctioned wall-clock "
        "boundary)"
    )
    source_matcher = staticmethod(_is_wallclock_source)
    source_word = "wall-clock source"
    sanctioned_modules = WALLCLOCK_SANCTIONED_MODULES


# ----------------------------------------------------------------------
# R009: interprocedural byte provenance for Message sizes
# ----------------------------------------------------------------------
#: Builtins through which a byte value passes unchanged (or combined):
#: their arguments stay part of the traced value.  Any other unresolved
#: call is opaque — its arguments are *inputs* to some computation, not
#: byte quantities themselves.
PASSTHROUGH_BUILTINS = ("int", "float", "round", "abs", "min", "max", "sum")


def _is_bad_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value != 0
    )


@register_program
class ByteProvenanceRule(ProgramRule):
    """R009: Message sizes must derive from serialization helpers or
    named constants across function boundaries.

    The trace starts at every ``Message(size_bytes=...)`` expression and
    follows local assignments, function parameters (to every caller's
    argument expression), and calls to protocol-path project functions
    (into their return expressions).  A bare numeric literal found after
    at least one function-boundary crossing is reported at the literal —
    same-function literals are R002's (already-enforced) business.
    """

    rule_id = "R009"
    title = "unproven Message byte size across function boundary"
    severity = "error"
    fix_hint = "compute the size with repro.storage.serialization helpers or a named constant"

    def run(self) -> None:
        self._reported: Set[Tuple[str, int, int]] = set()
        for func in self.index.functions:
            ctx = func.module.ctx
            if ctx.is_test_code() or func.module.name == SERIALIZATION_MODULE:
                continue
            for call, chain in func.calls:
                if chain[-1] != "Message":
                    continue
                size = self._size_argument(call)
                if size is not None:
                    self._trace(size, func, PROVENANCE_DEPTH, False, set(), call)

    # ------------------------------------------------------------------
    @staticmethod
    def _size_argument(call: ast.Call) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == "size_bytes":
                return keyword.value
        if len(call.args) >= 4:
            return call.args[3]
        return None

    def _trace(
        self,
        expr: ast.AST,
        func: FunctionInfo,
        depth: int,
        crossed: bool,
        visited: Set[tuple],
        sink: ast.Call,
    ) -> None:
        """Structural trace: follow only constructs through which a byte
        *value* flows.  Subscript indices, comparison tests, and the
        arguments of opaque calls are inputs to other computations and
        are deliberately not part of the traced value."""
        if _is_bad_literal(expr):
            if crossed:
                self._flag(expr, func, sink)
        elif isinstance(expr, ast.Name):
            self._trace_name(expr.id, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.BinOp):
            self._trace(expr.left, func, depth, crossed, visited, sink)
            self._trace(expr.right, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.UnaryOp):
            self._trace(expr.operand, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.IfExp):
            self._trace(expr.body, func, depth, crossed, visited, sink)
            self._trace(expr.orelse, func, depth, crossed, visited, sink)
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._trace(elt, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.Starred):
            self._trace(expr.value, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.Subscript):
            self._trace(expr.value, func, depth, crossed, visited, sink)
        elif isinstance(expr, ast.Call):
            chain = dotted_name(expr.func)
            if (
                chain is not None
                and len(chain) == 1
                and chain[0] in PASSTHROUGH_BUILTINS
                and chain[0] not in func.module.imports
            ):
                for arg in expr.args:
                    self._trace(arg, func, depth, crossed, visited, sink)
            else:
                self._trace_call(expr, func, depth, visited, sink)

    def _trace_name(
        self,
        name: str,
        func: FunctionInfo,
        depth: int,
        crossed: bool,
        visited: Set[tuple],
        sink: ast.Call,
    ) -> None:
        if name.isupper() or name == "self":
            return  # named constants are exactly what the rule asks for
        key = (func.qualname, name, crossed)
        if key in visited:
            return
        visited.add(key)
        module = func.module
        if name in func.params or name in func.kwonly:
            if depth <= 0:
                return
            for caller, call in self.index.callers_of(func):
                arg = func.arg_for_param(call, name)
                if arg is not None:
                    self._trace(arg, caller, depth - 1, True, visited, sink)
            return
        for value in func.env().get(name, ()):
            self._trace(value, func, depth, crossed, visited, sink)
        if name in func.env():
            return
        if name in module.imports:
            return  # imported helper/constant reference, not a value leaf
        for value in module.module_assigns.get(name, ()):
            self._trace(value, func, depth, crossed, visited, sink)

    def _trace_call(
        self,
        call: ast.Call,
        func: FunctionInfo,
        depth: int,
        visited: Set[tuple],
        sink: ast.Call,
    ) -> None:
        chain = dotted_name(call.func)
        if not chain or depth <= 0:
            return
        dotted = self.index.external_name(chain, func.module)
        if dotted and dotted.startswith(SERIALIZATION_MODULE + "."):
            return  # the byte model itself: trusted ground truth
        for callee in self.index.resolve_call(chain, func, func.module):
            if callee.module.name == SERIALIZATION_MODULE:
                continue
            if not callee.module.ctx.in_protocol_path():
                continue  # model/data layers return counts, not byte sizes
            key = (callee.qualname, "<return>")
            if key in visited:
                continue
            visited.add(key)
            for ret in callee.returns:
                self._trace(ret, callee, depth - 1, True, visited, sink)

    def _flag(self, literal: ast.Constant, func: FunctionInfo, sink: ast.Call) -> None:
        key = (func.module.path, literal.lineno, literal.col_offset)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(
            func.module,
            literal,
            "numeric literal {!r} flows into Message size_bytes at {}:{} "
            "through a function boundary".format(
                literal.value, Path(self._sink_path(sink)).name, sink.lineno
            ),
        )

    def _sink_path(self, sink: ast.Call) -> str:
        for func in self.index.functions:
            for call, _ in func.calls:
                if call is sink:
                    return func.module.path
        return "<unknown>"


# ----------------------------------------------------------------------
# R010: static BSP protocol extraction vs. declared expected traffic
# ----------------------------------------------------------------------
def _kind_of(expr: ast.AST) -> Optional[str]:
    chain = dotted_name(expr)
    if chain and "MessageKind" in chain and chain[-1] != "MessageKind":
        return chain[-1]
    return None


def _message_kind_argument(call: ast.Call) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return keyword.value
    return call.args[0] if call.args else None


class EmissionSummary:
    """What one function sends per call: concrete kinds plus the names
    of parameters whose value becomes a message kind downstream."""

    def __init__(self) -> None:
        self.kinds: Set[str] = set()
        self.kind_params: Set[str] = set()

    def copy_into(self, other: "EmissionSummary") -> bool:
        before = len(other.kinds)
        other.kinds |= self.kinds
        return len(other.kinds) != before


def compute_emission_summaries(index: ProgramIndex) -> Dict[FunctionInfo, EmissionSummary]:
    """Bottom-up fixpoint over the call graph.

    A function emits kind K when it constructs ``Message(MessageKind.K,
    ...)``, or calls a function that does; when the kind slot is filled
    from a parameter (``StarTopology.gather(kind, ...)``), the summary
    records the parameter and call sites instantiate it.
    """
    summaries: Dict[FunctionInfo, EmissionSummary] = {}
    for func in index.functions:
        summary = EmissionSummary()
        for call, chain in func.calls:
            if chain[-1] == "Message":
                kind_expr = _message_kind_argument(call)
                if kind_expr is None:
                    continue
                kind = _kind_of(kind_expr)
                if kind is not None:
                    summary.kinds.add(kind)
                elif isinstance(kind_expr, ast.Name) and (
                    kind_expr.id in func.params or kind_expr.id in func.kwonly
                ):
                    summary.kind_params.add(kind_expr.id)
        summaries[func] = summary

    changed = True
    while changed:
        changed = False
        for func in index.functions:
            summary = summaries[func]
            for call, chain in func.calls:
                for callee in index.resolve_call(chain, func, func.module):
                    callee_summary = summaries[callee]
                    if callee_summary.copy_into(summary):
                        changed = True
                    for param in callee_summary.kind_params:
                        arg = callee.arg_for_param(call, param)
                        if arg is None:
                            continue
                        kind = _kind_of(arg)
                        if kind is not None and kind not in summary.kinds:
                            summary.kinds.add(kind)
                            changed = True
                        elif (
                            isinstance(arg, ast.Name)
                            and (arg.id in func.params or arg.id in func.kwonly)
                            and arg.id not in summary.kind_params
                        ):
                            summary.kind_params.add(arg.id)
                            changed = True
    return summaries


def _round_expected_dicts(method: FunctionInfo) -> List[Tuple[ast.AST, Set[str]]]:
    """``self._round_expected = {...}`` assignments and their kind keys."""
    out: List[Tuple[ast.AST, Set[str]]] = []
    for node in ast.walk(method.node):
        if not isinstance(node, ast.Assign):
            continue
        hits = any(
            isinstance(target, ast.Attribute)
            and target.attr == "_round_expected"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in node.targets
        )
        if not hits:
            continue
        kinds: Set[str] = set()
        found_dict = False
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Dict):
                found_dict = True
                for keynode in sub.keys:
                    if keynode is None:
                        continue
                    kind = _kind_of(keynode)
                    if kind is not None:
                        kinds.add(kind)
        if found_dict:
            out.append((node, kinds))
    return out


#: Per phase-constructor: keyword arguments whose string values name
#: trainer methods the engine will call (the statically-known executor
#: entry points of a RoundSpec).
_EXECUTOR_ARGS = {
    "ComputePhase": ("run",),
    "MasterPhase": ("run",),
    "CommPhase": ("sizes", "servers"),
}


def _call_kwarg(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _string_value(expr: Optional[ast.AST]) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _spec_declarations(
    method: FunctionInfo,
) -> Tuple[Set[str], Set[str], Set[str], Optional[ast.AST]]:
    """Spec-style declarations in one method body.

    Returns ``(declared kinds, executor method names, envelope-provider
    names, first CommPhase node)`` from the ``CommPhase``/
    ``ComputePhase``/``MasterPhase``/``RoundSpec`` constructor calls.
    """
    declared: Set[str] = set()
    executors: Set[str] = set()
    envelopes: Set[str] = set()
    node: Optional[ast.AST] = None
    for call, chain in method.calls:
        ctor = chain[-1]
        if ctor == "CommPhase":
            kind_expr = _call_kwarg(call, "kind")
            if kind_expr is None and len(call.args) > 1:
                kind_expr = call.args[1]
            kind = _kind_of(kind_expr) if kind_expr is not None else None
            if kind is not None:
                declared.add(kind)
                if node is None:
                    node = call
        if ctor in _EXECUTOR_ARGS:
            for arg_name in _EXECUTOR_ARGS[ctor]:
                name = _string_value(_call_kwarg(call, arg_name))
                if name is None and arg_name == "run" and len(call.args) > 1:
                    name = _string_value(call.args[1])
                if name is not None:
                    executors.add(name)
        if ctor == "RoundSpec":
            name = _string_value(_call_kwarg(call, "envelopes"))
            if name is not None:
                envelopes.add(name)
    return declared, executors, envelopes, node


def _envelope_kinds(method: FunctionInfo) -> Set[str]:
    """MessageKind keys of dict literals in an envelope provider."""
    kinds: Set[str] = set()
    for sub in ast.walk(method.node):
        if isinstance(sub, ast.Dict):
            for keynode in sub.keys:
                if keynode is None:
                    continue
                kind = _kind_of(keynode)
                if kind is not None:
                    kinds.add(kind)
    return kinds


def _walk_round_emissions(
    index: ProgramIndex,
    summaries: Dict[FunctionInfo, "EmissionSummary"],
    cls: ClassInfo,
    mro: Sequence[ClassInfo],
    roots: List[FunctionInfo],
) -> Tuple[Set[str], Set[str], Optional[ast.AST], Optional[ModuleInfo]]:
    """Transitive ``Message`` kinds reachable from ``roots`` under
    ``cls``'s MRO, plus any legacy ``_round_expected`` declarations
    found along the way."""
    emitted: Set[str] = set()
    declared: Set[str] = set()
    decl_node: Optional[ast.AST] = None
    decl_module: Optional[ModuleInfo] = None
    visited: Set[str] = set()
    stack: List[FunctionInfo] = list(roots)
    while stack:
        method = stack.pop()
        if method.qualname in visited:
            continue
        visited.add(method.qualname)
        for node, kinds in _round_expected_dicts(method):
            declared |= kinds
            if decl_node is None:
                decl_node, decl_module = node, method.module
        for call, chain in method.calls:
            if chain[0] == "self" and len(chain) == 2:
                target = index.resolve_self_method(chain[1], mro)
                if target is not None:
                    stack.append(target)
                continue
            if chain[-1] == "Message":
                kind = _kind_of(_message_kind_argument(call) or ast.Name(id="?"))
                if kind is not None:
                    emitted.add(kind)
                continue
            for callee in index.resolve_call(
                chain, method, method.module, view_class=cls
            ):
                callee_summary = summaries[callee]
                emitted |= callee_summary.kinds
                for param in callee_summary.kind_params:
                    arg = callee.arg_for_param(call, param)
                    kind = _kind_of(arg) if arg is not None else None
                    if kind is not None:
                        emitted.add(kind)
    return emitted, declared, decl_node, decl_module


def _extract_spec_protocol(
    index: ProgramIndex,
    summaries: Dict[FunctionInfo, "EmissionSummary"],
    module: ModuleInfo,
    cls: ClassInfo,
) -> Optional[dict]:
    """Spec-style record: declared = CommPhase kinds (+ envelope keys)
    across the class's resolved MRO methods; emitted = Message kinds
    reachable from the spec's executor methods.

    The engine emits each CommPhase's declared kind by construction, so
    the residual drift class is an executor sending on the wire behind
    the spec's back — that is what the emitted set captures.
    """
    mro = index.mro(cls)
    if index.resolve_self_method("round_spec", mro) is None:
        return None
    names: Set[str] = set()
    for klass in mro:
        names.update(klass.methods)
    declared: Set[str] = set()
    executors: Set[str] = set()
    envelope_names: Set[str] = set()
    decl_node: Optional[ast.AST] = None
    decl_module: Optional[ModuleInfo] = None
    for name in sorted(names):
        method = index.resolve_self_method(name, mro)
        if method is None:
            continue
        kinds, runs, envelopes, node = _spec_declarations(method)
        declared |= kinds
        executors |= runs
        envelope_names |= envelopes
        if node is not None and decl_node is None:
            decl_node, decl_module = node, method.module
    if not declared:
        return None
    roots: List[FunctionInfo] = []
    for name in sorted(executors | envelope_names):
        method = index.resolve_self_method(name, mro)
        if method is not None:
            roots.append(method)
    for name in sorted(envelope_names):
        method = index.resolve_self_method(name, mro)
        if method is not None:
            declared |= _envelope_kinds(method)
    emitted, _, _, _ = _walk_round_emissions(index, summaries, cls, mro, roots)
    return {
        "style": "spec",
        "emitted": emitted - set(UNCHECKED_KINDS),
        "declared": declared - set(UNCHECKED_KINDS),
        "module": decl_module or module,
        "node": decl_node or cls.node,
    }


def _extract_legacy_protocol(
    index: ProgramIndex,
    summaries: Dict[FunctionInfo, "EmissionSummary"],
    module: ModuleInfo,
    cls: ClassInfo,
) -> Optional[dict]:
    """Legacy record: a hand-rolled ``_run_iteration`` loop audited
    against its ``self._round_expected`` dict literals."""
    if not any(_round_expected_dicts(method) for method in cls.methods.values()):
        return None
    mro = index.mro(cls)
    root = index.resolve_self_method("_run_iteration", mro)
    if root is None:
        return None
    emitted, declared, decl_node, decl_module = _walk_round_emissions(
        index, summaries, cls, mro, [root]
    )
    return {
        "style": "legacy",
        "emitted": emitted - set(UNCHECKED_KINDS),
        "declared": declared - set(UNCHECKED_KINDS),
        "module": decl_module or module,
        "node": decl_node or cls.node,
    }


def extract_round_protocol(index: ProgramIndex) -> Dict[str, dict]:
    """Static per-trainer round protocol: emitted vs. declared kinds.

    Two declaration styles are recognised, in order:

    * **spec** — the class (or a base) defines ``round_spec`` and its
      resolved MRO methods construct ``CommPhase`` declarations; the
      declared kinds are read straight from the spec (plus any
      ``TrafficEnvelope`` dict keys of the spec's ``envelopes``
      provider) and the emitted kinds are whatever ``Message`` sends
      are reachable from the spec's executor methods.
    * **legacy** — the class assigns ``self._round_expected`` a dict
      literal and has ``_run_iteration`` in its MRO; the round loop is
      walked with subclass overrides honoured.

    Returns ``{class qualname: {"style", "emitted", "declared",
    "module", "node"}}`` with :data:`UNCHECKED_KINDS` removed.
    """
    summaries = compute_emission_summaries(index)
    results: Dict[str, dict] = {}
    for module in index.modules:
        for cls in module.classes.values():
            record = _extract_spec_protocol(index, summaries, module, cls)
            if record is None:
                record = _extract_legacy_protocol(index, summaries, module, cls)
            if record is not None:
                results[cls.qualname] = record
    return results


@register_program
class ProtocolDriftRule(ProgramRule):
    """R010: a trainer's emitted message kinds must equal its declared
    expected traffic, so the runtime ProtocolChecker declarations cannot
    silently drift away from the code they describe."""

    rule_id = "R010"
    title = "round-loop traffic disagrees with declared expected traffic"
    severity = "error"
    fix_hint = (
        "declare the kind as a CommPhase/envelope in the RoundSpec (or drop "
        "the rogue emission); for legacy loops update _round_expected"
    )

    def run(self) -> None:
        for qualname, record in sorted(extract_round_protocol(self.index).items()):
            module = record["module"]
            if module.ctx.is_test_code():
                continue
            undeclared = sorted(record["emitted"] - record["declared"])
            # Spec-style trainers: the engine emits every declared
            # CommPhase itself, so only rogue emissions can drift.
            unemitted = (
                []
                if record["style"] == "spec"
                else sorted(record["declared"] - record["emitted"])
            )
            if not undeclared and not unemitted:
                continue
            details = []
            if undeclared:
                details.append("emits undeclared kind(s) {}".format(undeclared))
            if unemitted:
                details.append("declares unemitted kind(s) {}".format(unemitted))
            self.report(
                module,
                record["node"],
                "trainer {} {}".format(qualname.split(".")[-1], "; ".join(details)),
            )


# ----------------------------------------------------------------------
# R011: import layering
# ----------------------------------------------------------------------
@register_program
class ImportLayeringRule(ProgramRule):
    """R011: the import graph must respect the layer contracts.

    Two contracts, both checked transitively over the import graph of
    the analysed file set:

    * **pure -> simulator**: ``models``/``linalg``/``optim`` hold the
      paper's *math*; ``sim``/``net``/``core``/``engine``/``runtime``
      hold the executing *system*.  The exactness tests compare the
      two, which is only meaningful while the math cannot observe the
      machinery it is compared against.
    * **runtime -> trainer**: execution backends (``runtime``) move
      opaque bytes and measure time for *any* trainer; importing
      ``core``/``baselines``/``extensions`` would weld a backend to one
      algorithm and break the plug-in boundary in the other direction.
    """

    rule_id = "R011"
    title = "module import crosses a layer boundary"
    severity = "error"
    fix_hint = "invert the dependency: sim/net/core may import models/linalg/optim, never the reverse"

    @staticmethod
    def _layer_of(module_name: str) -> Optional[str]:
        parts = module_name.split(".")
        return parts[1] if parts[0] == "repro" and len(parts) > 1 else None

    def run(self) -> None:
        self._check(
            PURE_LAYERS,
            SIMULATOR_LAYERS,
            self.fix_hint,
        )
        self._check(
            ("runtime",),
            TRAINER_LAYERS,
            "keep the backend algorithm-agnostic: trainers import "
            "repro.runtime, never the reverse",
        )

    def _check(
        self,
        from_layers: Sequence[str],
        to_layers: Sequence[str],
        fix_hint: str,
    ) -> None:
        for module in self.index.modules:
            if self._layer_of(module.name) not in from_layers:
                continue
            for target, node in module.import_edges:
                chain = self._path_to_layer(target, to_layers)
                if chain is not None:
                    via = " -> ".join([module.name] + chain)
                    self.report(
                        module,
                        node,
                        "{} layer module reaches {} layer: {}".format(
                            self._layer_of(module.name), self._layer_of(chain[-1]), via
                        ),
                        fix_hint=fix_hint,
                    )

    def _path_to_layer(
        self, target: str, layers: Sequence[str]
    ) -> Optional[List[str]]:
        """Shortest import chain from ``target`` into one of ``layers``."""
        queue: List[Tuple[str, List[str]]] = [(target, [target])]
        seen: Set[str] = set()
        while queue:
            name, chain = queue.pop(0)
            if name in seen or len(chain) > 10:
                continue
            seen.add(name)
            if self._layer_of(name) in layers:
                return chain
            module = self.index.by_name.get(name)
            if module is None:
                # imported names resolve to their defining module when
                # the exact target is not a module in the file set
                module = self.index.by_name.get(name.rsplit(".", 1)[0])
            if module is None:
                continue
            for nxt, _ in module.import_edges:
                if nxt not in seen:
                    queue.append((nxt, chain + [nxt]))
        return None


# ----------------------------------------------------------------------
# the analyzer facade
# ----------------------------------------------------------------------
class ProgramAnalyzer:
    """Parse a file set once and run whole-program rules over it.

    Test modules are excluded from the index: they are exempt from the
    invariants and their free use of entropy would otherwise bleed into
    the approximate call graph.  Files with syntax errors are skipped —
    the per-file pass already reports them as E001.
    """

    def __init__(self, sources: Sequence[Tuple[str, str]]):
        modules: List[ModuleInfo] = []
        for path, source in sources:
            ctx = FileContext(str(path), source)
            if ctx.is_test_code():
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            modules.append(ModuleInfo(str(path), source, tree))
        self.index = ProgramIndex(modules)

    def run(self, rule_classes: Sequence[Type[ProgramRule]]) -> List[Finding]:
        findings: List[Finding] = []
        for cls in rule_classes:
            rule = cls(self.index)
            rule.run()
            findings.extend(rule.findings)
        return sorted(findings)
