"""Project-specific static analysis for the ColumnSGD reproduction.

The reproduction's headline claims rest on two promises: byte-exact
communication accounting (Table I validation) and deterministic replay
(the driver's exactness invariant).  This package enforces the coding
invariants behind those promises with six per-file AST rules:

* **R001** — all randomness flows through :mod:`repro.utils.rng`;
* **R002** — every :class:`~repro.net.message.Message` size comes from
  :mod:`repro.storage.serialization` helpers or named constants;
* **R003** — no wall-clock time or sleeping in simulated-time code;
* **R004** — no exact equality against inexact float literals;
* **R005** — no bare/over-broad ``except`` in protocol paths;
* **R006** — public config dataclasses validate their numeric fields;

and eight whole-program rules (:mod:`repro.lint.program`,
:mod:`repro.lint.effects`) that see the same invariants *across*
function and module boundaries:

* **R007** — no entropy source reachable from protocol-path code
  through any chain of project calls;
* **R008** — no wall-clock source reachable from protocol-path code;
* **R009** — ``Message`` byte sizes trace back to serialization helpers
  or named constants across function boundaries;
* **R010** — each trainer's statically-extracted per-round message
  kinds match its declared ``_round_expected`` traffic;
* **R011** — ``models``/``linalg``/``optim`` never import (even
  transitively) ``sim``/``net``/``core``;
* **R012** — phases a spec's ``after=`` DAG leaves unordered must not
  touch conflicting trainer/context state (inferred interprocedurally);
* **R013** — a phase's optional ``reads=``/``writes=`` declaration
  matches the inferred effect sets;
* **R014** — unordered ``CommPhase`` declarations never emit the same
  ``MessageKind``;

plus three sparsity-safety rules (:mod:`repro.lint.sparsity`) that
abstractly interpret every executor over a cost-class lattice
O(1) ⊑ O(B) ⊑ O(nnz) ⊑ O(d):

* **R015** — no densification (``to_dense``, O(d) allocations,
  sparse→dense coercion) reachable from a per-round executor;
* **R016** — an executor's inferred cost class never exceeds the class
  of its ``sparse_work``/``dense_work`` charges (dynamic twin: the
  engine's ``check_cost`` audit);
* **R017** — no immutable ``SparseVector`` rebuilt from itself inside
  a loop (O(nnz²) accumulation).

Run it with ``python -m repro.lint src``; see ``docs/linting.md``.
The runtime complement — BSP invariants checked against the live event
log — is :class:`repro.net.protocol.ProtocolChecker`; R010 is its
static shadow.
"""

from repro.lint.engine import (
    FileContext,
    LintEngine,
    Rule,
    discover_sources,
    register,
    registered_rules,
)
from repro.lint.findings import Finding

# Importing the rule modules populates both registries.
from repro.lint import rules as _rules  # noqa: F401
from repro.lint import program as _program  # noqa: F401
from repro.lint import effects as _effects  # noqa: F401
from repro.lint import sparsity as _sparsity  # noqa: F401
from repro.lint.program import (
    ProgramAnalyzer,
    ProgramRule,
    extract_round_protocol,
    register_program,
    registered_program_rules,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "ProgramAnalyzer",
    "ProgramRule",
    "Rule",
    "discover_sources",
    "extract_round_protocol",
    "register",
    "register_program",
    "registered_rules",
    "registered_program_rules",
]
