"""Project-specific static analysis for the ColumnSGD reproduction.

The reproduction's headline claims rest on two promises: byte-exact
communication accounting (Table I validation) and deterministic replay
(the driver's exactness invariant).  This package enforces the coding
invariants behind those promises with six AST rules:

* **R001** — all randomness flows through :mod:`repro.utils.rng`;
* **R002** — every :class:`~repro.net.message.Message` size comes from
  :mod:`repro.storage.serialization` helpers or named constants;
* **R003** — no wall-clock time or sleeping in simulated-time code;
* **R004** — no exact equality against inexact float literals;
* **R005** — no bare/over-broad ``except`` in protocol paths;
* **R006** — public config dataclasses validate their numeric fields.

Run it with ``python -m repro.lint src``; see ``docs/linting.md``.
The runtime complement — BSP invariants checked against the live event
log — is :class:`repro.net.protocol.ProtocolChecker`.
"""

from repro.lint.engine import (
    FileContext,
    LintEngine,
    Rule,
    register,
    registered_rules,
)
from repro.lint.findings import Finding

# Importing the rules module populates the registry.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "Rule",
    "register",
    "registered_rules",
]
