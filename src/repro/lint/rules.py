"""The project-specific per-file rules (R001-R006, R018, R019).

Each rule enforces one invariant the reproduction's correctness
arguments rest on; ``docs/linting.md`` explains the why of each.  Rules
are small AST checks registered with the engine; add a new one by
subclassing :class:`~repro.lint.engine.Rule` and decorating it with
:func:`~repro.lint.engine.register`.
"""

from __future__ import annotations

import ast
from pathlib import Path as _Path
from typing import Dict, Iterator, List, Optional

from repro.lint.engine import Rule, dotted_name, register

#: Wall-clock entry points of the ``time`` module.
WALLCLOCK_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "clock",
    "sleep",
}

#: ``np.random`` members that are types, not entropy sources.
ALLOWED_NP_RANDOM = {"Generator", "BitGenerator", "SeedSequence"}

DATETIME_NOW_FUNCS = {"now", "utcnow", "today", "fromtimestamp"}


def _shallow_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


@register
class DeterminismRule(Rule):
    """R001: all randomness must flow through ``repro.utils.rng``.

    The driver's exactness invariant (identical trajectory to
    single-machine SGD) only holds if every stochastic draw is derived
    from the job seed.  Global-state RNGs (``random``, ``np.random.*``)
    and wall-clock entropy break replay.
    """

    rule_id = "R001"
    title = "non-deterministic entropy source"
    severity = "error"
    fix_hint = "derive generators via repro.utils.rng (rng_from_seed / spawn_rngs / iteration_seed)"

    def applies(self) -> bool:
        return not self.ctx.is_module("utils", "rng") and not self.ctx.is_test_code()

    def _measures_wallclock(self) -> bool:
        """The local execution backend times real worker processes —
        wall-clock measurement is its contract (the RNG checks still
        apply to it).  Mirrors R008's sanctioned-module list."""
        return self.ctx.is_module("runtime", "local")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node, "import of the global-state 'random' module")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random":
            self.report(node, "import from the global-state 'random' module")
        elif module == "numpy.random":
            bad = [a.name for a in node.names if a.name not in ALLOWED_NP_RANDOM]
            if bad:
                self.report(
                    node,
                    "import of numpy.random entropy source(s) {}".format(bad),
                )
        elif module == "time" and not self._measures_wallclock():
            bad = [a.name for a in node.names if a.name in WALLCLOCK_TIME_FUNCS]
            if bad:
                self.report(node, "import of wall-clock function(s) {}".format(bad))

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        if chain[0] in ("np", "numpy") and len(chain) >= 3 and chain[1] == "random":
            if chain[2] not in ALLOWED_NP_RANDOM:
                self.report(
                    node,
                    "call to {} — global/unseeded numpy entropy".format(".".join(chain)),
                )
        elif chain[0] == "random" and len(chain) >= 2:
            self.report(node, "call to {} — global-state RNG".format(".".join(chain)))
        elif chain[0] == "time" and len(chain) == 2 and chain[1] in WALLCLOCK_TIME_FUNCS:
            if not self._measures_wallclock():
                self.report(
                    node, "call to {} — wall-clock entropy".format(".".join(chain))
                )
        elif (
            chain[0] in ("datetime", "date")
            and chain[-1] in DATETIME_NOW_FUNCS
        ):
            if not self._measures_wallclock():
                self.report(
                    node, "call to {} — wall-clock entropy".format(".".join(chain))
                )


@register
class MessageAccountingRule(Rule):
    """R002: ``Message.size_bytes`` must come from serialization helpers.

    Table I validation compares the simulator's measured bytes against
    the paper's formulas; a hand-typed byte literal silently breaks that
    audit.  Sizes must be computed from :mod:`repro.storage.serialization`
    helpers or named constants.
    """

    rule_id = "R002"
    title = "hard-coded message size"
    severity = "error"
    fix_hint = "compute size_bytes via repro.storage.serialization helpers or a named constant"

    _TRACE_DEPTH = 3

    def applies(self) -> bool:
        return not self.ctx.is_test_code()

    def check_tree(self, tree: ast.Module) -> None:
        scopes: List[ast.AST] = [tree] + [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            assigns = self._local_assignments(scope)
            for node in _shallow_walk(scope):
                if isinstance(node, ast.Call) and self._is_message_call(node):
                    self._check_size_argument(node, assigns)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_message_call(node: ast.Call) -> bool:
        chain = dotted_name(node.func)
        return bool(chain) and chain[-1] == "Message"

    @staticmethod
    def _local_assignments(scope: ast.AST) -> Dict[str, List[ast.AST]]:
        assigns: Dict[str, List[ast.AST]] = {}
        for node in _shallow_walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.setdefault(node.target.id, []).append(node.value)
        return assigns

    def _size_argument(self, node: ast.Call) -> Optional[ast.AST]:
        for keyword in node.keywords:
            if keyword.arg == "size_bytes":
                return keyword.value
        if len(node.args) >= 4:
            return node.args[3]
        return None

    def _check_size_argument(self, call: ast.Call, assigns: Dict[str, List[ast.AST]]) -> None:
        size = self._size_argument(call)
        if size is None:
            return
        offender = self._find_literal(size, assigns, self._TRACE_DEPTH)
        if offender is not None:
            self.report(
                call,
                "Message size_bytes built from bare numeric literal {!r}".format(
                    offender.value
                ),
            )

    def _find_literal(
        self, expr: ast.AST, assigns: Dict[str, List[ast.AST]], depth: int
    ) -> Optional[ast.Constant]:
        """Bare non-zero numeric literal inside ``expr``, tracing simple
        local names (and ``int(name)`` wrappers) up to ``depth`` hops."""
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)
                and node.value != 0
            ):
                return node
        if depth <= 0:
            return None
        names: List[str] = []
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "int"
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.Name)
        ):
            names.append(expr.args[0].id)
        for name in names:
            for value in assigns.get(name, ()):
                offender = self._find_literal(value, assigns, depth - 1)
                if offender is not None:
                    return offender
        return None


@register
class SimTimePurityRule(Rule):
    """R003: no wall-clock time or sleeping in the simulator's core.

    Simulated time is the *output* of the cost models; importing ``time``
    or ``datetime`` in a protocol path means wall-clock is leaking into
    (or stalling) the simulation, corrupting every reported duration.
    """

    rule_id = "R003"
    title = "wall-clock usage in simulated-time code"
    severity = "error"
    fix_hint = "advance repro.sim.clock.SimClock with cost-model durations instead"

    def applies(self) -> bool:
        return self.ctx.in_protocol_path()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("time", "datetime"):
                self.report(node, "import of '{}' in a protocol path".format(alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in ("time", "datetime"):
            self.report(node, "import from '{}' in a protocol path".format(node.module))

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        if chain[0] == "time" and len(chain) == 2:
            self.report(node, "call to {} in a protocol path".format(".".join(chain)))
        elif chain[0] in ("datetime", "date") and chain[-1] in DATETIME_NOW_FUNCS:
            self.report(node, "call to {} in a protocol path".format(".".join(chain)))
        elif chain == ("sleep",):
            self.report(node, "call to sleep() in a protocol path")


@register
class FloatEqualityRule(Rule):
    """R004: no ``==``/``!=`` against inexact float literals.

    Statistics cross the simulated wire through rounding (fp32 mode), so
    exact equality against values like ``0.1`` that have no exact binary
    representation is a latent bug.  Comparisons against integral floats
    (``0.0``, ``1.0``, ``-1.0``) are exact in IEEE-754 and stay legal
    (sentinel and mask checks); everything else needs ``math.isclose`` /
    ``np.isclose``.  ``== nan`` is always False and is flagged too.
    """

    rule_id = "R004"
    title = "exact equality against inexact float"
    severity = "error"
    fix_hint = "use math.isclose / np.isclose (or compare against an integral sentinel)"

    def applies(self) -> bool:
        return not self.ctx.is_test_code()

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[i], operands[i + 1]):
                problem = self._inexact(side)
                if problem:
                    self.report(node, problem)
                    break

    @staticmethod
    def _inexact(expr: ast.AST) -> Optional[str]:
        value = None
        if isinstance(expr, ast.Constant):
            value = expr.value
        elif (
            isinstance(expr, ast.UnaryOp)
            and isinstance(expr.op, ast.USub)
            and isinstance(expr.operand, ast.Constant)
        ):
            value = expr.operand.value
        chain = dotted_name(expr)
        if chain and chain[-1] == "nan":
            return "equality against NaN is always False"
        if isinstance(value, float) and value != int(value):
            return "exact equality against inexact float literal {!r}".format(value)
        return None


@register
class SwallowedErrorRule(Rule):
    """R005: protocol paths must not swallow exceptions.

    A bare/over-broad ``except`` in the driver, network, or simulator
    can hide a protocol violation (a dropped message, a failed barrier)
    and let a run complete with silently wrong accounting.
    """

    rule_id = "R005"
    title = "bare or over-broad exception handler"
    severity = "error"
    fix_hint = "catch a specific repro.errors type, or re-raise"

    def applies(self) -> bool:
        return self.ctx.in_protocol_path()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' swallows every error including protocol bugs")
            return
        names = []
        types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for t in types:
            chain = dotted_name(t)
            if chain:
                names.append(chain[-1])
        if any(n in ("Exception", "BaseException") for n in names):
            if not any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                self.report(
                    node,
                    "'except {}' without re-raise swallows protocol errors".format(
                        "/".join(names)
                    ),
                )


@register
class ConfigValidationRule(Rule):
    """R006: public config dataclasses must validate numeric fields.

    Config objects are the user-facing surface; an unvalidated field
    (negative seed, zero bandwidth) surfaces as a confusing numeric
    error deep inside a run.  Every public ``*Config`` / ``*Spec``
    dataclass must reference each numeric field in ``__post_init__``
    (normally via a ``repro.utils.validation`` checker).
    """

    rule_id = "R006"
    title = "unvalidated config field"
    severity = "error"
    fix_hint = "add a repro.utils.validation check for the field in __post_init__"

    def applies(self) -> bool:
        return not self.ctx.is_test_code()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.startswith("_"):
            return
        if not (node.name.endswith("Config") or node.name.endswith("Spec")):
            return
        if not self._is_dataclass(node):
            return
        numeric_fields = self._numeric_fields(node)
        if not numeric_fields:
            return
        post_init = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__"
            ),
            None,
        )
        if post_init is None:
            self.report(
                node,
                "config dataclass {} has numeric fields {} but no __post_init__ "
                "validation".format(node.name, sorted(numeric_fields)),
            )
            return
        referenced = {
            child.attr
            for child in ast.walk(post_init)
            if isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        }
        for name, field_node in sorted(numeric_fields.items()):
            if name not in referenced:
                self.report(
                    field_node,
                    "{}.{} is never validated in __post_init__".format(node.name, name),
                )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            chain = dotted_name(target)
            if chain and chain[-1] == "dataclass":
                return True
        return False

    @staticmethod
    def _numeric_fields(node: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
        fields: Dict[str, ast.AnnAssign] = {}
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
                continue
            annotation = stmt.annotation
            is_numeric = isinstance(annotation, ast.Name) and annotation.id in (
                "int",
                "float",
            )
            default = stmt.value
            if (
                not is_numeric
                and isinstance(default, ast.Constant)
                and isinstance(default.value, (int, float))
                and not isinstance(default.value, bool)
            ):
                is_numeric = True
            if is_numeric:
                fields[stmt.target.id] = stmt
        return fields


@register
class BlockingWaitRule(Rule):
    """R018: runtime transport must never block without a deadline.

    The fault-tolerance argument for ``backend='local'`` (docs/faults.md)
    rests on every master<->worker wait being bounded: a SIGKILLed or
    hung worker is *detected* only because the wait expires.  One bare
    ``conn.recv()`` reintroduces the infinite hang the deadline layer
    exists to remove, so inside ``repro.runtime`` every blocking
    primitive must go through the sanctioned helpers in
    ``repro.runtime.deadline`` (``wait_ready`` / ``recv_ready`` /
    ``recv_within`` / ``recv_command`` / ``join_within``), which is the
    one module allowed to touch the raw calls.
    """

    rule_id = "R018"
    title = "unbounded blocking wait in runtime transport"
    severity = "error"
    fix_hint = (
        "use the deadline-bounded helpers in repro.runtime.deadline "
        "(wait_ready / recv_ready / recv_within / recv_command / join_within)"
    )

    #: attribute calls that park the caller until the peer acts
    BLOCKING_NOARG = {"recv", "recv_bytes", "accept"}

    def applies(self) -> bool:
        if "lint_fixtures" in _Path(self.ctx.path).parts:
            return True
        parts = self.ctx.package_parts
        return (
            len(parts) >= 1
            and parts[0] == "runtime"
            and parts != ("runtime", "deadline")
        )

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        name = chain[-1]
        has_args = bool(node.args or node.keywords)
        if len(chain) >= 2 and name in self.BLOCKING_NOARG:
            self.report(
                node,
                ".{}() blocks until the peer responds — a dead worker "
                "hangs the master forever".format(name),
            )
        elif len(chain) >= 2 and name == "poll" and not self._bounded(node):
            self.report(node, ".poll() without a timeout blocks indefinitely")
        elif len(chain) >= 2 and name == "join" and not has_args:
            self.report(
                node,
                ".join() without a timeout never returns if the process "
                "is wedged",
            )
        elif name == "wait" and self._is_connection_wait(chain) and not self._bounded(node):
            self.report(
                node,
                "connection.wait() without timeout= blocks until a pipe "
                "becomes ready",
            )

    @staticmethod
    def _bounded(node: ast.Call) -> bool:
        """A positional or keyword timeout that is not the literal None.

        ``wait``'s first positional is the connection list, so the
        timeout is the second; ``poll``'s is the first."""
        skip = 1 if dotted_name(node.func)[-1] == "wait" else 0
        candidates = list(node.args[skip:])
        candidates += [kw.value for kw in node.keywords if kw.arg == "timeout"]
        for value in candidates:
            if not (isinstance(value, ast.Constant) and value.value is None):
                return True
        return False

    @staticmethod
    def _is_connection_wait(chain) -> bool:
        # multiprocessing.connection.wait / connection.wait / a bare
        # `wait(conns)` imported from it; `self.wait`, `event.wait` and
        # friends are someone else's semantics.
        if len(chain) == 1:
            return True
        return chain[-2] in ("connection", "multiprocessing")


@register
class StoreZeroCopyRule(Rule):
    """R019: ``repro.store`` must stay zero-copy and out-of-core.

    The store's contract (docs/storage.md) is that shard reads cost one
    page-cache-backed mmap slice plus the codec's documented index
    widenings — nothing else.  Two classes of call silently break that:

    * densification/copy helpers (``.toarray()``, ``.todense()``,
      ``np.asarray``, ``np.ascontiguousarray``) turn a zero-copy view
      into a resident copy, unbounding the memory the block cache
      budgets; and
    * whole-file reads (``.read()`` / ``.readlines()`` with no size)
      pull an entire shard into memory, defeating out-of-core loading.

    Record access must slice the mmap view; byte-bounded ``read(n)``
    calls (headers, footers) are sanctioned.
    """

    rule_id = "R019"
    title = "copy or whole-file read in the zero-copy store"
    severity = "error"
    fix_hint = (
        "slice the mmap view (ShardReader.record) and decode with "
        "np.frombuffer; bound file reads with an explicit size"
    )

    #: attribute calls that materialize a dense or contiguous copy
    DENSIFY = {"toarray", "todense", "to_dense"}
    #: numpy module-level helpers that copy their argument
    NUMPY_COPY = {"asarray", "ascontiguousarray"}
    #: file reads that slurp everything when called without a size
    WHOLE_FILE = {"read", "readlines"}

    def applies(self) -> bool:
        if "lint_fixtures" in _Path(self.ctx.path).parts:
            return True
        parts = self.ctx.package_parts
        return len(parts) >= 1 and parts[0] == "store"

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        name = chain[-1]
        if len(chain) >= 2 and name in self.DENSIFY:
            self.report(
                node,
                ".{}() densifies a shard payload — the store must stay "
                "sparse and zero-copy".format(name),
            )
        elif (
            len(chain) >= 2
            and name in self.NUMPY_COPY
            and chain[-2] in ("np", "numpy")
        ):
            self.report(
                node,
                "{}.{}() copies its argument; decode shard records with "
                "np.frombuffer views instead".format(chain[-2], name),
            )
        elif (
            len(chain) >= 2
            and name in self.WHOLE_FILE
            and not node.args
            and not node.keywords
        ):
            self.report(
                node,
                ".{}() with no size reads the whole file into memory — "
                "pass an explicit byte count".format(name),
            )
