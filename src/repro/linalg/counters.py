"""Kernel op counters — the dynamic mirror of ``repro.lint.sparsity``.

The static analysis (rules R015-R017) axiomatizes the complexity of the
``repro.linalg`` primitives: it never descends into their bodies, it
trusts a table saying ``row_dots`` is O(nnz) and ``to_dense`` is O(d).
This module is where that trust is *checked*: every primitive reports
the work it actually did — flops, elements allocated, densification
events — to one module-level :class:`OpCounters` singleton, and the
engine's ``check_cost`` audit (:mod:`repro.engine.cost_audit`) compares
the measured totals against the ``sparse_work``/``dense_work`` seconds
the simulator charged for the same round.

Counting is off by default and the enabled check is the first branch of
every recording method, so the instrumented kernels pay one attribute
load and a predictable branch when auditing is off — and nothing here
ever touches the numeric payloads, so trajectories are bit-identical
with counting on or off.
"""

from __future__ import annotations

from typing import Dict


class OpCounters:
    """Accumulates kernel work volumes while enabled.

    Attributes
    ----------
    flops:
        Arithmetic operations performed on stored entries (multiplies,
        adds, comparisons during scans).  One "flop" here is one touched
        element-operation, matching the cost model's per-element view.
    alloc_elements:
        Total elements of freshly allocated numpy buffers.
    densify_events:
        Number of sparse->dense materialisations (``to_dense`` calls).
    peak_alloc_elements:
        Largest single allocation observed — the "peak temporary size".
    """

    __slots__ = (
        "enabled",
        "flops",
        "alloc_elements",
        "densify_events",
        "peak_alloc_elements",
    )

    def __init__(self):
        self.enabled = False
        self.flops = 0
        self.alloc_elements = 0
        self.densify_events = 0
        self.peak_alloc_elements = 0

    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Start counting (does not reset accumulated totals)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop counting (accumulated totals remain readable)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every counter; the enabled flag is left untouched."""
        self.flops = 0
        self.alloc_elements = 0
        self.densify_events = 0
        self.peak_alloc_elements = 0

    def snapshot(self) -> Dict[str, int]:
        """Copy of the current totals as a plain dict."""
        return {
            "flops": self.flops,
            "alloc_elements": self.alloc_elements,
            "densify_events": self.densify_events,
            "peak_alloc_elements": self.peak_alloc_elements,
        }

    # ------------------------------------------------------------------
    def add_flops(self, n: int) -> None:
        """Record ``n`` element-operations."""
        if not self.enabled:
            return
        self.flops += int(n)

    def add_alloc(self, n_elements: int) -> None:
        """Record a fresh buffer of ``n_elements`` elements."""
        if not self.enabled:
            return
        n = int(n_elements)
        self.alloc_elements += n
        if n > self.peak_alloc_elements:
            self.peak_alloc_elements = n

    def add_densify(self, n_elements: int) -> None:
        """Record one sparse->dense materialisation of ``n_elements``."""
        if not self.enabled:
            return
        self.densify_events += 1
        n = int(n_elements)
        self.alloc_elements += n
        if n > self.peak_alloc_elements:
            self.peak_alloc_elements = n


#: The process-wide counter the linalg kernels report into.  Tests and
#: the engine audit reset/enable/disable it around the region they
#: measure; concurrent audits are not a thing the simulator does.
OP_COUNTERS = OpCounters()
