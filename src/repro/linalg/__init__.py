"""Sparse linear algebra substrate.

The whole reproduction runs on two structures implemented here from
scratch on top of numpy arrays:

* :class:`SparseVector` — an (indices, values, dim) triple used for single
  examples and for sparse gradients;
* :class:`CSRMatrix` — Compressed Sparse Row storage for datasets, data
  shards, and worksets (the paper uses CSR for shipped worksets too).

Kernels needed by SGD (per-row dot products against a dense model,
gradient accumulation ``X^T c``, FM's per-factor statistics) live in
:mod:`repro.linalg.ops`.
"""

from repro.linalg.counters import OP_COUNTERS, OpCounters
from repro.linalg.sparse_vector import SparseVector
from repro.linalg.csr import CSRMatrix
from repro.linalg.ops import (
    row_dots,
    accumulate_rows,
    accumulate_rows_squared,
    row_dots_squared,
    column_scale,
)

__all__ = [
    "OP_COUNTERS",
    "OpCounters",
    "SparseVector",
    "CSRMatrix",
    "row_dots",
    "accumulate_rows",
    "accumulate_rows_squared",
    "row_dots_squared",
    "column_scale",
]
