"""Vectorised kernels shared by every trainer.

These four kernels are the entire compute inner loop of the paper's
workloads:

* :func:`row_dots` — per-row dot products ``X w`` (the GLM "statistics");
* :func:`row_dots_squared` — per-row ``sum_j x_ij^2 * w_j`` (FM needs the
  square term of equation 10);
* :func:`accumulate_rows` — ``X^T c``: linear combination of rows, which is
  exactly the gradient of every GLM (``g = X^T coefficients``);
* :func:`column_scale` — scale each column by a dense factor (FM's
  per-factor statistics reuse this).

All take a :class:`~repro.linalg.csr.CSRMatrix` plus dense numpy arrays and
return dense numpy arrays; no Python-level per-row loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError
from repro.linalg.counters import OP_COUNTERS
from repro.linalg.csr import CSRMatrix


def _check_model(matrix: CSRMatrix, model: np.ndarray) -> np.ndarray:
    model = np.asarray(model, dtype=np.float64)
    if model.shape != (matrix.n_cols,):
        raise DimensionMismatchError((matrix.n_cols,), model.shape, "model shape")
    return model


def row_dots(matrix: CSRMatrix, model: np.ndarray) -> np.ndarray:
    """Return ``X @ w`` as a dense array of length ``n_rows``.

    In ColumnSGD each worker calls this on its column shard against its
    model partition, yielding the *partial statistics* that the master
    sums (Section III-A, Step 1).
    """
    model = _check_model(matrix, model)
    if matrix.nnz == 0:
        return np.zeros(matrix.n_rows, dtype=np.float64)
    OP_COUNTERS.add_flops(3 * matrix.nnz)  # gather + multiply + row-sum
    products = matrix.data * model[matrix.indices]
    return _reduce_rows(matrix, products)


def row_dots_squared(matrix: CSRMatrix, model: np.ndarray) -> np.ndarray:
    """Return per-row ``sum_j x_ij^2 * w_j`` (dense, length ``n_rows``).

    Factorization machines need ``sum_j v_{jf}^2 x_{ij}^2`` per row and
    factor (equation 10's second-order correction); callers pass
    ``model = v_f**2`` to get it.
    """
    model = _check_model(matrix, model)
    if matrix.nnz == 0:
        return np.zeros(matrix.n_rows, dtype=np.float64)
    OP_COUNTERS.add_flops(4 * matrix.nnz)  # square + gather + multiply + row-sum
    products = (matrix.data ** 2) * model[matrix.indices]
    return _reduce_rows(matrix, products)


def accumulate_rows(matrix: CSRMatrix, coefficients: np.ndarray) -> np.ndarray:
    """Return ``X^T c`` as a dense array of length ``n_cols``.

    This is the gradient kernel: for GLMs the batch gradient is
    ``sum_i c_i * x_i`` where ``c_i`` depends only on the statistics
    (equation 2).  Each ColumnSGD worker calls it on its shard to get the
    gradient of *its own* model partition — no communication needed.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (matrix.n_rows,):
        raise DimensionMismatchError((matrix.n_rows,), coefficients.shape, "coefficients shape")
    OP_COUNTERS.add_alloc(matrix.n_cols)  # the dense partition-gradient buffer
    out = np.zeros(matrix.n_cols, dtype=np.float64)
    if matrix.nnz == 0:
        return out
    OP_COUNTERS.add_flops(3 * matrix.nnz)  # expand + multiply + scatter-add
    per_entry = matrix.data * np.repeat(coefficients, matrix.row_nnz())
    np.add.at(out, matrix.indices, per_entry)
    return out


def accumulate_rows_squared(matrix: CSRMatrix, coefficients: np.ndarray) -> np.ndarray:
    """Return ``(X**2)^T c`` — like :func:`accumulate_rows` with squared data.

    FM's factor gradient (equation 13) contains a ``v_{if} x_i^2`` term;
    this kernel provides the ``x^2``-weighted accumulation.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (matrix.n_rows,):
        raise DimensionMismatchError((matrix.n_rows,), coefficients.shape, "coefficients shape")
    OP_COUNTERS.add_alloc(matrix.n_cols)  # the dense partition-gradient buffer
    out = np.zeros(matrix.n_cols, dtype=np.float64)
    if matrix.nnz == 0:
        return out
    OP_COUNTERS.add_flops(4 * matrix.nnz)  # square + expand + multiply + scatter-add
    per_entry = (matrix.data ** 2) * np.repeat(coefficients, matrix.row_nnz())
    np.add.at(out, matrix.indices, per_entry)
    return out


def column_scale(matrix: CSRMatrix, factors: np.ndarray) -> CSRMatrix:
    """Return a copy of ``matrix`` with column ``j`` scaled by ``factors[j]``."""
    factors = _check_model(matrix, factors)
    OP_COUNTERS.add_flops(2 * matrix.nnz)  # gather + multiply
    OP_COUNTERS.add_alloc(3 * matrix.nnz)  # copied indptr/indices/data
    return CSRMatrix(
        matrix.indptr.copy(),
        matrix.indices.copy(),
        matrix.data * factors[matrix.indices],
        matrix.n_cols,
    )


def _reduce_rows(matrix: CSRMatrix, per_entry: np.ndarray) -> np.ndarray:
    """Sum ``per_entry`` (aligned with matrix.data) within each row."""
    OP_COUNTERS.add_alloc(matrix.n_rows)  # the per-row statistics buffer
    out = np.zeros(matrix.n_rows, dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(matrix.indptr))
    if nonempty.size:
        starts = matrix.indptr[nonempty]
        sums = np.add.reduceat(per_entry, starts)
        out[nonempty] = sums
    return out
