"""A minimal immutable sparse vector.

Stored as sorted ``indices`` (int64) with matching ``values`` (float64)
and a logical dimension ``dim``.  Instances are value objects: operations
return new vectors and never mutate the operands.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import DimensionMismatchError
from repro.linalg.counters import OP_COUNTERS


class SparseVector:
    """Sparse vector with sorted indices and explicit dimension.

    Parameters
    ----------
    indices:
        Feature indices (any integer array-like).  Must be unique and in
        ``[0, dim)``; they are sorted on construction.
    values:
        Values aligned with ``indices``.  Explicit zeros are dropped.
    dim:
        Logical dimensionality of the vector.
    """

    __slots__ = ("indices", "values", "dim")

    def __init__(self, indices, values, dim: int):
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be 1-D")
        if indices.shape != values.shape:
            raise DimensionMismatchError(indices.shape, values.shape, "indices/values length")
        if dim < 0:
            raise ValueError("dim must be >= 0, got {}".format(dim))
        if indices.size:
            if indices.min() < 0 or indices.max() >= dim:
                raise ValueError(
                    "indices must lie in [0, {}), got range [{}, {}]".format(
                        dim, indices.min(), indices.max()
                    )
                )
            order = np.argsort(indices, kind="stable")
            indices = indices[order]
            values = values[order]
            if np.any(indices[1:] == indices[:-1]):
                raise ValueError("duplicate indices in sparse vector")
            keep = values != 0.0
            if not keep.all():
                indices = indices[keep]
                values = values[keep]
        self.indices = indices
        self.values = values
        self.dim = int(dim)
        OP_COUNTERS.add_flops(self.indices.size)  # validation + sort scan

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: dict, dim: int) -> "SparseVector":
        """Build from a ``{index: value}`` mapping."""
        if not mapping:
            return cls.empty(dim)
        items = sorted(mapping.items())
        idx = [k for k, _ in items]
        val = [v for _, v in items]
        return cls(idx, val, dim)

    @classmethod
    def from_dense(cls, dense) -> "SparseVector":
        """Build from a dense array, keeping non-zero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise ValueError("dense input must be 1-D")
        OP_COUNTERS.add_flops(dense.size)  # full scan for non-zeros
        idx = np.nonzero(dense)[0]
        return cls(idx, dense[idx], dense.size)

    @classmethod
    def empty(cls, dim: int) -> "SparseVector":
        """The all-zero vector of dimension ``dim``."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), dim)

    # ------------------------------------------------------------------
    # properties and basic ops
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.indices.size)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array."""
        OP_COUNTERS.add_densify(self.dim)
        OP_COUNTERS.add_flops(self.nnz)
        out = np.zeros(self.dim, dtype=np.float64)
        out[self.indices] = self.values
        return out

    def dot(self, dense: np.ndarray) -> float:
        """Inner product with a dense vector of matching dimension."""
        dense = np.asarray(dense)
        if dense.shape != (self.dim,):
            raise DimensionMismatchError((self.dim,), dense.shape, "vector shape")
        if not self.nnz:
            return 0.0
        OP_COUNTERS.add_flops(2 * self.nnz)  # gather + multiply-add
        return float(np.dot(self.values, dense[self.indices]))

    def scale(self, alpha: float) -> "SparseVector":
        """Return ``alpha * self``."""
        if alpha == 0.0:
            return SparseVector.empty(self.dim)
        OP_COUNTERS.add_flops(self.nnz)
        OP_COUNTERS.add_alloc(2 * self.nnz)
        return SparseVector(self.indices.copy(), self.values * alpha, self.dim)

    def norm_sq(self) -> float:
        """Squared Euclidean norm."""
        OP_COUNTERS.add_flops(2 * self.nnz)
        return float(np.dot(self.values, self.values))

    def restrict(self, global_indices: np.ndarray, local_dim: int) -> "SparseVector":
        """Project onto a column subset, re-indexing to local coordinates.

        ``global_indices`` maps local position -> global column and must be
        sorted ascending.  Entries of ``self`` outside the subset are
        dropped.  Used when splitting a row across column partitions.
        """
        global_indices = np.asarray(global_indices, dtype=np.int64)
        OP_COUNTERS.add_flops(2 * self.nnz)  # binary searches + filter
        pos = np.searchsorted(global_indices, self.indices)
        pos = np.clip(pos, 0, max(global_indices.size - 1, 0))
        if global_indices.size == 0:
            return SparseVector.empty(local_dim)
        hit = global_indices[pos] == self.indices
        return SparseVector(pos[hit], self.values[hit], local_dim)

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate ``(index, value)`` pairs in index order."""
        return zip(self.indices.tolist(), self.values.tolist())

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.dim

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return (
            self.dim == other.dim
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):  # value objects with numpy payloads are unhashable
        raise TypeError("SparseVector is unhashable")

    def __repr__(self) -> str:
        preview = ", ".join(
            "{}:{:g}".format(i, v) for i, v in list(self.items())[:4]
        )
        suffix = ", ..." if self.nnz > 4 else ""
        return "SparseVector(dim={}, nnz={}, [{}{}])".format(self.dim, self.nnz, preview, suffix)
