"""Compressed Sparse Row matrix built on three numpy arrays.

``indptr`` (n_rows + 1), ``indices`` (nnz, column ids sorted within each
row) and ``data`` (nnz, float64).  The class supports exactly the
operations the reproduction needs: row slicing/gathering for mini-batch
sampling, column-subset projection for column partitioning, horizontal
stitching for reassembly tests, and the SGD kernels in
:mod:`repro.linalg.ops`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionMismatchError
from repro.linalg.counters import OP_COUNTERS
from repro.linalg.sparse_vector import SparseVector


class CSRMatrix:
    """CSR matrix with float64 data and int64 indices.

    Rows keep their column indices sorted; explicit zeros are allowed in
    ``data`` only if the caller constructs the arrays directly (the
    higher-level constructors drop them).
    """

    __slots__ = ("indptr", "indices", "data", "n_rows", "n_cols")

    def __init__(self, indptr, indices, data, n_cols: int):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
            raise ValueError("indptr, indices, data must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indices.shape != data.shape:
            raise DimensionMismatchError(indices.shape, data.shape, "indices/data length")
        if indptr[-1] != indices.size:
            raise ValueError(
                "indptr[-1]={} does not match nnz={}".format(indptr[-1], indices.size)
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if n_cols < 0:
            raise ValueError("n_cols must be >= 0")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError(
                "column indices must lie in [0, {}), got [{}, {}]".format(
                    n_cols, indices.min(), indices.max()
                )
            )
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.n_rows = int(indptr.size - 1)
        self.n_cols = int(n_cols)
        OP_COUNTERS.add_flops(indices.size + indptr.size)  # validation scans

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[SparseVector], n_cols: Optional[int] = None) -> "CSRMatrix":
        """Stack sparse vectors as matrix rows.

        All rows must share one dimension; ``n_cols`` overrides it (useful
        for an empty row list).
        """
        if n_cols is None:
            if not rows:
                raise ValueError("n_cols is required for an empty row list")
            n_cols = rows[0].dim
        counts = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, row in enumerate(rows):
            if row.dim != n_cols:
                raise DimensionMismatchError(n_cols, row.dim, "row dimension")
            counts[i + 1] = row.nnz
        indptr = np.cumsum(counts)
        nnz = int(indptr[-1])
        OP_COUNTERS.add_alloc(2 * nnz)
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for i, row in enumerate(rows):
            indices[indptr[i]:indptr[i + 1]] = row.indices
            data[indptr[i]:indptr[i + 1]] = row.values
        return cls(indptr, indices, data, n_cols)

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Build from a dense 2-D array, keeping non-zero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        OP_COUNTERS.add_flops(dense.size)  # full scan for non-zeros
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr, cols, dense[rows, cols], dense.shape[1])

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        return cls(
            np.zeros(n_rows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            n_cols,
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Total number of stored entries."""
        return int(self.indices.size)

    def row(self, i: int) -> SparseVector:
        """Return row ``i`` as a :class:`SparseVector`."""
        if not 0 <= i < self.n_rows:
            raise IndexError("row index {} out of range [0, {})".format(i, self.n_rows))
        start, stop = self.indptr[i], self.indptr[i + 1]
        return SparseVector(self.indices[start:stop], self.data[start:stop], self.n_cols)

    def row_nnz(self) -> np.ndarray:
        """nnz of every row as an int64 array."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterable[SparseVector]:
        """Iterate rows lazily as sparse vectors."""
        for i in range(self.n_rows):
            yield self.row(i)

    def density(self) -> float:
        """Fraction of stored entries: ``nnz / (n_rows * n_cols)``."""
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D float64 array."""
        OP_COUNTERS.add_densify(self.n_rows * self.n_cols)
        OP_COUNTERS.add_flops(self.nnz)
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # row operations
    # ------------------------------------------------------------------
    def take_rows(self, row_ids) -> "CSRMatrix":
        """Gather rows (with repetition allowed) into a new matrix.

        This is the mini-batch sampling primitive: sampling ``B`` rows out
        of a shard is one ``take_rows`` call.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size and (row_ids.min() < 0 or row_ids.max() >= self.n_rows):
            raise IndexError(
                "row ids must lie in [0, {}), got [{}, {}]".format(
                    self.n_rows, row_ids.min(), row_ids.max()
                )
            )
        lengths = self.indptr[row_ids + 1] - self.indptr[row_ids]
        indptr = np.zeros(row_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        nnz = int(indptr[-1])
        OP_COUNTERS.add_alloc(2 * nnz)
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for out_i, row_i in enumerate(row_ids):
            src0, src1 = self.indptr[row_i], self.indptr[row_i + 1]
            dst0, dst1 = indptr[out_i], indptr[out_i + 1]
            indices[dst0:dst1] = self.indices[src0:src1]
            data[dst0:dst1] = self.data[src0:src1]
        return CSRMatrix(indptr, indices, data, self.n_cols)

    def slice_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Contiguous row slice ``[start, stop)`` without copying per row."""
        if not (0 <= start <= stop <= self.n_rows):
            raise IndexError(
                "bad row slice [{}:{}) for {} rows".format(start, stop, self.n_rows)
            )
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = self.indptr[start:stop + 1] - lo
        return CSRMatrix(indptr, self.indices[lo:hi], self.data[lo:hi], self.n_cols)

    @classmethod
    def vstack(cls, parts: Sequence["CSRMatrix"]) -> "CSRMatrix":
        """Stack matrices vertically; all must share ``n_cols``."""
        if not parts:
            raise ValueError("vstack needs at least one matrix")
        n_cols = parts[0].n_cols
        for part in parts:
            if part.n_cols != n_cols:
                raise DimensionMismatchError(n_cols, part.n_cols, "n_cols")
        indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        offset = 0
        for part in parts:
            indptr_parts.append(part.indptr[1:] + offset)
            offset += part.nnz
        OP_COUNTERS.add_alloc(2 * offset)  # concatenated indices + data
        return cls(
            np.concatenate(indptr_parts),
            np.concatenate([p.indices for p in parts]) if parts else np.empty(0),
            np.concatenate([p.data for p in parts]) if parts else np.empty(0),
            n_cols,
        )

    # ------------------------------------------------------------------
    # column operations (the column-partitioning primitives)
    # ------------------------------------------------------------------
    def select_columns(self, global_indices) -> "CSRMatrix":
        """Project onto a column subset, re-indexing to local coordinates.

        ``global_indices`` maps local column -> global column and must be
        sorted ascending and unique.  The result has
        ``n_cols == len(global_indices)`` and the same number of rows;
        entries outside the subset are dropped.  This is the core primitive
        behind column-wise data partitioning.
        """
        global_indices = np.asarray(global_indices, dtype=np.int64)
        if global_indices.size and np.any(np.diff(global_indices) <= 0):
            raise ValueError("global_indices must be sorted ascending and unique")
        if global_indices.size == 0:
            return CSRMatrix.empty(self.n_rows, 0)
        OP_COUNTERS.add_flops(2 * self.nnz)  # binary searches + filter
        pos = np.searchsorted(global_indices, self.indices)
        pos_clipped = np.minimum(pos, global_indices.size - 1)
        hit = global_indices[pos_clipped] == self.indices
        # new per-row lengths after filtering
        row_of = np.repeat(np.arange(self.n_rows), self.row_nnz())
        kept_rows = row_of[hit]
        lengths = np.zeros(self.n_rows, dtype=np.int64)
        np.add.at(lengths, kept_rows, 1)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        return CSRMatrix(indptr, pos_clipped[hit], self.data[hit], global_indices.size)

    def hstack_from_partitions(
        self, parts: Sequence["CSRMatrix"], assignments: Sequence[np.ndarray], n_cols: int
    ) -> "CSRMatrix":
        """Reassemble column partitions back into global coordinates.

        Inverse of ``select_columns`` applied per partition: ``parts[k]``
        holds local columns whose global ids are ``assignments[k]``.  Exists
        mainly to state the round-trip invariant in tests.  ``self`` is the
        template for the row count.
        """
        if len(parts) != len(assignments):
            raise ValueError("parts and assignments must align")
        OP_COUNTERS.add_densify(self.n_rows * n_cols)
        dense = np.zeros((self.n_rows, n_cols), dtype=np.float64)
        for part, mapping in zip(parts, assignments):
            mapping = np.asarray(mapping, dtype=np.int64)
            if part.n_rows != self.n_rows:
                raise DimensionMismatchError(self.n_rows, part.n_rows, "row count")
            rows = np.repeat(np.arange(part.n_rows), part.row_nnz())
            dense[rows, mapping[part.indices]] = part.data
        return CSRMatrix.from_dense(dense)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self):
        raise TypeError("CSRMatrix is unhashable")

    def __repr__(self) -> str:
        return "CSRMatrix(shape={}, nnz={}, density={:.4g})".format(
            self.shape, self.nnz, self.density()
        )
