"""Row blocks and the master's block queue (Fig 5, Step 1).

A :class:`Block` is a contiguous run of rows of the source dataset, the
unit the master hands to idle workers during row-to-column
transformation.  :class:`BlockQueue` is the master-side FIFO of block ids
with a simple pull protocol (idle worker asks, master assigns).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.dataset import Dataset
from repro.errors import DataError
from repro.storage.serialization import csr_matrix_bytes
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Block:
    """A contiguous slice ``[start, stop)`` of the source dataset's rows."""

    block_id: int
    start: int
    stop: int

    @property
    def n_rows(self) -> int:
        """Rows contained in this block."""
        return self.stop - self.start

    def materialize(self, dataset: Dataset) -> Dataset:
        """Read the block's rows out of the backing dataset."""
        return dataset.slice(self.start, self.stop)

    def stored_bytes(self, dataset: Dataset) -> int:
        """On-disk footprint of the block (CSR with labels).

        The block's nnz is an indptr difference — no row copies are
        materialized to answer a size query (the simulated HDFS asks
        this for every block of every dispatch).
        """
        indptr = dataset.features.indptr
        nnz = int(indptr[self.stop] - indptr[self.start])
        return csr_matrix_bytes(self.n_rows, nnz, with_labels=True)


def split_into_blocks(n_rows: int, block_size: int) -> List[Block]:
    """Cut ``n_rows`` into consecutive blocks of ``block_size`` rows.

    The last block may be short.  Block ids are dense from 0, which the
    two-phase index relies on.
    """
    check_positive(block_size, "block_size")
    if n_rows < 0:
        raise DataError("n_rows must be >= 0, got {}".format(n_rows))
    blocks = []
    start = 0
    block_id = 0
    while start < n_rows:
        stop = min(start + block_size, n_rows)
        blocks.append(Block(block_id, start, stop))
        block_id += 1
        start = stop
    return blocks


class BlockQueue:
    """Master-side FIFO of pending blocks with assignment tracking."""

    def __init__(self, blocks: List[Block]):
        ids = [b.block_id for b in blocks]
        if ids != list(range(len(blocks))):
            raise DataError("block ids must be dense and ordered from 0")
        self._blocks = list(blocks)
        self._pending = deque(self._blocks)
        self._assigned = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def n_blocks(self) -> int:
        """Total number of blocks ever enqueued."""
        return len(self._blocks)

    def next_for(self, worker_id: int) -> Optional[Block]:
        """Pop the next pending block and record its assignee.

        Returns ``None`` when the queue has drained — the worker is done.
        """
        if not self._pending:
            return None
        block = self._pending.popleft()
        self._assigned[block.block_id] = worker_id
        return block

    def assignee(self, block_id: int) -> Optional[int]:
        """Worker that was handed ``block_id`` (``None`` if unassigned)."""
        return self._assigned.get(block_id)

    def assignments(self) -> dict:
        """Snapshot of ``{block_id: worker_id}`` for completed assignments."""
        return dict(self._assigned)
