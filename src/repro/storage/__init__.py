"""Simulated distributed storage (the HDFS stand-in) and block handling.

The paper assumes training data sits in HDFS, partitioned by rows.  Data
loading experiments (Fig 7, Fig 11a) are dominated by bytes read, objects
serialized, and shuffle traffic — so this package models a row-oriented
block store with explicit byte accounting rather than real disks.
"""

from repro.storage.serialization import (
    OBJECT_OVERHEAD_BYTES,
    sparse_row_bytes,
    csr_matrix_bytes,
    dense_vector_bytes,
    sparse_vector_bytes,
    workset_bytes,
)
from repro.storage.blocks import Block, BlockQueue
from repro.storage.hdfs import SimulatedHDFS

__all__ = [
    "OBJECT_OVERHEAD_BYTES",
    "sparse_row_bytes",
    "csr_matrix_bytes",
    "dense_vector_bytes",
    "sparse_vector_bytes",
    "workset_bytes",
    "Block",
    "BlockQueue",
    "SimulatedHDFS",
]
