"""A simulated row-oriented distributed file store (the HDFS stand-in).

``SimulatedHDFS`` holds a dataset as row blocks spread round-robin over a
set of storage locations, mimicking how the paper's training files sit in
HDFS before any ML system touches them.  Reads are charged through a
disk-bandwidth cost model so data-loading experiments have a sensible
baseline read time that is *identical for every loader* — the differences
measured in Fig 7 come from shuffling and serialization, not raw reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.dataset import Dataset
from repro.errors import DataError
from repro.storage.blocks import Block, split_into_blocks
from repro.utils.validation import check_positive


class SimulatedHDFS:
    """Row blocks of a dataset distributed over storage nodes.

    Parameters
    ----------
    dataset:
        The logical file content (kept whole in memory; blocks are views).
    block_size:
        Rows per HDFS block.  The paper's block-based dispatcher reuses
        this same block granularity.
    n_locations:
        Number of storage nodes blocks are spread over (round-robin).
    read_bandwidth:
        Sequential read bandwidth per location, bytes/second.
    """

    def __init__(
        self,
        dataset: Dataset,
        block_size: int = 4096,
        n_locations: int = 1,
        read_bandwidth: float = 400e6,
    ):
        check_positive(block_size, "block_size")
        check_positive(n_locations, "n_locations")
        check_positive(read_bandwidth, "read_bandwidth")
        self.dataset = dataset
        self.block_size = int(block_size)
        self.n_locations = int(n_locations)
        self.read_bandwidth = float(read_bandwidth)
        self.blocks: List[Block] = split_into_blocks(dataset.n_rows, self.block_size)
        self._location_of: Dict[int, int] = {
            b.block_id: b.block_id % self.n_locations for b in self.blocks
        }

    @property
    def n_blocks(self) -> int:
        """Number of blocks the file is split into."""
        return len(self.blocks)

    def block(self, block_id: int) -> Block:
        """Metadata of one block."""
        if not 0 <= block_id < self.n_blocks:
            raise DataError("block id {} out of range [0, {})".format(block_id, self.n_blocks))
        return self.blocks[block_id]

    def location(self, block_id: int) -> int:
        """Storage node holding ``block_id``."""
        self.block(block_id)
        return self._location_of[block_id]

    def read_block(self, block_id: int) -> Dataset:
        """Materialise the rows of one block."""
        return self.block(block_id).materialize(self.dataset)

    def block_bytes(self, block_id: int) -> int:
        """Stored size of one block."""
        return self.block(block_id).stored_bytes(self.dataset)

    def total_bytes(self) -> int:
        """Stored size of the whole file."""
        return sum(self.block_bytes(b.block_id) for b in self.blocks)

    def read_time(self, block_id: int) -> float:
        """Seconds to sequentially read one block from its location."""
        return self.block_bytes(block_id) / self.read_bandwidth

    def scan_time(self, parallelism: Optional[int] = None) -> float:
        """Seconds for ``parallelism`` readers to scan the whole file.

        Blocks at one location are read sequentially; locations proceed in
        parallel, capped at ``parallelism`` readers (defaults to the number
        of locations).
        """
        readers = self.n_locations if parallelism is None else min(parallelism, self.n_locations)
        if readers <= 0:
            raise ValueError("parallelism must be >= 1")
        per_location = [0.0] * self.n_locations
        for b in self.blocks:
            per_location[self._location_of[b.block_id]] += self.read_time(b.block_id)
        # With fewer readers than locations, greedily pack location queues.
        if readers >= self.n_locations:
            return max(per_location) if per_location else 0.0
        lanes = [0.0] * readers
        for load in sorted(per_location, reverse=True):
            lane = min(range(readers), key=lanes.__getitem__)
            lanes[lane] += load
        return max(lanes)
