"""Byte-size model — and real codec — for everything that crosses the wire.

The paper's Fig 7 result (block dispatch beats naive row-by-row dispatch
by 3.2-7.1x) is entirely a serialization story: sending K small objects
per row pays K per-object overheads, while batching rows into CSR blocks
pays one overhead per block and compresses away the per-row headers.  We
model that with a flat per-object overhead (JVM serialization headers,
class descriptors) plus per-payload bytes.

The size functions return integer byte counts.  The codec half of this
module (``encode_payload`` / ``decode_payload``) turns the model into a
real wire format: every encoded payload starts with a 64-byte header —
exactly :data:`OBJECT_OVERHEAD_BYTES` — followed by raw array bytes at
the model's :data:`INDEX_BYTES` / :data:`VALUE_BYTES` widths, so
``len(encode_payload(p))`` equals the corresponding size function *by
construction*.  The multiprocess backend
(:mod:`repro.runtime.local`) ships these bytes through real pipes,
which is how Table-I accounting stays exact for measured traffic too.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import check_non_negative

#: Per-serialized-object overhead (headers, class descriptor, refs).
#: Roughly what Java serialization / Kryo pays per object graph.
OBJECT_OVERHEAD_BYTES = 64

#: Bytes per stored index (int32 on the wire, as LIBSVM-scale ids fit).
INDEX_BYTES = 4

#: Bytes per stored value (float64).
VALUE_BYTES = 8

#: Bytes per label.
LABEL_BYTES = 8

#: Per-record framing of a shuffle record (partition id, lengths) — far
#: cheaper than a full serialized object, which is why MLlib-Repartition
#: beats Naive-ColumnSGD in Fig 7 despite also moving every row.
SHUFFLE_RECORD_OVERHEAD_BYTES = 16


def sparse_row_bytes(nnz: int) -> int:
    """Serialized size of one labelled sparse row as a standalone object."""
    check_non_negative(nnz, "nnz")
    return OBJECT_OVERHEAD_BYTES + LABEL_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


def sparse_vector_bytes(nnz: int) -> int:
    """Serialized size of one sparse vector (no label)."""
    check_non_negative(nnz, "nnz")
    return OBJECT_OVERHEAD_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


def dense_vector_bytes(dim: int) -> int:
    """Serialized size of a dense float64 vector (models, statistics)."""
    check_non_negative(dim, "dim")
    return OBJECT_OVERHEAD_BYTES + dim * VALUE_BYTES


def csr_matrix_bytes(n_rows: int, nnz: int, with_labels: bool = False) -> int:
    """Serialized size of a CSR block: one object, indptr + indices + data."""
    check_non_negative(n_rows, "n_rows")
    check_non_negative(nnz, "nnz")
    size = OBJECT_OVERHEAD_BYTES
    size += (n_rows + 1) * INDEX_BYTES  # indptr
    size += nnz * (INDEX_BYTES + VALUE_BYTES)
    if with_labels:
        size += n_rows * LABEL_BYTES
    return size


def workset_bytes(n_rows: int, nnz: int) -> int:
    """Serialized size of one workset: (block id, labels?, CSR piece).

    Worksets carry labels only on the worker that owns the label column;
    we charge labels on every workset for simplicity — it is a few bytes
    per row and identical across dispatch strategies, so comparisons are
    unaffected.
    """
    return 8 + csr_matrix_bytes(n_rows, nnz, with_labels=True)


def int_vector_bytes(count: int) -> int:
    """Serialized size of an int64 id list (assignments, control frames).

    ``count == 0`` degenerates to the bare per-object overhead — the
    size the recovery layer charges for a HEARTBEAT probe.
    """
    check_non_negative(count, "count")
    return OBJECT_OVERHEAD_BYTES + count * 8


# ======================================================================
# the codec: byte-model-exact wire encoding
# ======================================================================
#: header layout: magic, version, payload-type code, flags, reserved,
#: then four uint64 shape fields; zero-padded to OBJECT_OVERHEAD_BYTES.
_HEADER_STRUCT = struct.Struct("<4sBBH4Q")
_HEADER_MAGIC = b"RPRO"
_HEADER_VERSION = 1
_HEADER_PAD = OBJECT_OVERHEAD_BYTES - _HEADER_STRUCT.size

_TYPE_DENSE = 1
_TYPE_SPARSE = 2
_TYPE_CSR = 3
_TYPE_WORKSET = 4
_TYPE_INTS = 5

_FLAG_FP32 = 0x01
_FLAG_LABELS = 0x02

#: value widths the codec writes, keyed by wire precision.
WIRE_PRECISIONS = ("fp64", "fp32")


@dataclass(frozen=True)
class DenseVectorPayload:
    """A dense float vector (models, statistics, gradients).

    ``precision='fp32'`` writes values as float32 — the honest model of
    the driver's ``wire_precision`` knob: the payload halves *and* a
    decode returns the float32-rounded values, exactly like
    ``ColumnSGDDriver._through_wire``.
    """

    values: np.ndarray
    precision: str = "fp64"

    def __post_init__(self):
        if self.precision not in WIRE_PRECISIONS:
            raise ValueError(
                "unknown precision {!r}; expected one of {}".format(
                    self.precision, WIRE_PRECISIONS
                )
            )

    @property
    def value_bytes(self) -> int:
        """Bytes per value on the wire."""
        return 4 if self.precision == "fp32" else VALUE_BYTES

    def encoded_bytes(self) -> int:
        """Model size of this payload (what ``len(encode)`` will be)."""
        return OBJECT_OVERHEAD_BYTES + self.values.size * self.value_bytes


@dataclass(frozen=True)
class SparseVectorPayload:
    """An (indices, values) sparse vector."""

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        if self.indices.shape != self.values.shape:
            raise ValueError("indices and values must have equal length")

    def encoded_bytes(self) -> int:
        return sparse_vector_bytes(int(self.indices.size))


@dataclass(frozen=True)
class CSRBlockPayload:
    """One CSR block (indptr, indices, data), optionally with labels."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    labels: Optional[np.ndarray] = None

    @property
    def n_rows(self) -> int:
        return int(self.indptr.size) - 1

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def encoded_bytes(self) -> int:
        return csr_matrix_bytes(
            self.n_rows, self.nnz, with_labels=self.labels is not None
        )


@dataclass(frozen=True)
class WorksetPayload:
    """A shipped workset: (block id, labelled CSR piece)."""

    block_id: int
    block: CSRBlockPayload = field()

    def __post_init__(self):
        if self.block.labels is None:
            raise ValueError("worksets always carry labels (see workset_bytes)")

    def encoded_bytes(self) -> int:
        return workset_bytes(self.block.n_rows, self.block.nnz)


@dataclass(frozen=True)
class IntVectorPayload:
    """An int64 id list (block assignments, control/heartbeat frames)."""

    values: np.ndarray

    def encoded_bytes(self) -> int:
        return int_vector_bytes(int(self.values.size))


def _header(type_code: int, flags: int, a: int = 0, b: int = 0,
            c: int = 0, d: int = 0) -> bytes:
    packed = _HEADER_STRUCT.pack(
        _HEADER_MAGIC, _HEADER_VERSION, type_code, flags, a, b, c, d
    )
    return packed + b"\x00" * _HEADER_PAD


def encode_payload(payload) -> bytes:
    """Encode a payload dataclass into its exact byte-model length.

    The invariant the codec tests pin down:
    ``len(encode_payload(p)) == p.encoded_bytes()`` for every payload
    type, with ``encoded_bytes`` defined by the size functions above —
    so real pipes move exactly the bytes the simulator charges.
    """
    if isinstance(payload, DenseVectorPayload):
        flags = _FLAG_FP32 if payload.precision == "fp32" else 0
        dtype = "<f4" if payload.precision == "fp32" else "<f8"
        body = np.ascontiguousarray(payload.values.ravel(), dtype=dtype).tobytes()
        return _header(_TYPE_DENSE, flags, payload.values.size) + body
    if isinstance(payload, SparseVectorPayload):
        idx = np.ascontiguousarray(payload.indices.ravel(), dtype="<i4").tobytes()
        val = np.ascontiguousarray(payload.values.ravel(), dtype="<f8").tobytes()
        return _header(_TYPE_SPARSE, 0, payload.indices.size) + idx + val
    if isinstance(payload, CSRBlockPayload):
        flags = _FLAG_LABELS if payload.labels is not None else 0
        parts = [
            _header(_TYPE_CSR, flags, payload.n_rows, payload.nnz),
            np.ascontiguousarray(payload.indptr.ravel(), dtype="<i4").tobytes(),
            np.ascontiguousarray(payload.indices.ravel(), dtype="<i4").tobytes(),
            np.ascontiguousarray(payload.data.ravel(), dtype="<f8").tobytes(),
        ]
        if payload.labels is not None:
            parts.append(
                np.ascontiguousarray(payload.labels.ravel(), dtype="<f8").tobytes()
            )
        return b"".join(parts)
    if isinstance(payload, WorksetPayload):
        return (
            struct.pack("<q", int(payload.block_id))
            + encode_payload(payload.block)
        )
    if isinstance(payload, IntVectorPayload):
        body = np.ascontiguousarray(payload.values.ravel(), dtype="<i8").tobytes()
        return _header(_TYPE_INTS, 0, payload.values.size) + body
    raise TypeError("cannot encode payload of type {}".format(type(payload).__name__))


def decode_payload(data: bytes):
    """Decode bytes produced by :func:`encode_payload`.

    Dense fp32 payloads decode back to float64 values that went through
    float32 rounding — the same semantics the simulated wire applies.
    """
    if len(data) >= 8 + OBJECT_OVERHEAD_BYTES and data[8:12] == _HEADER_MAGIC:
        (block_id,) = struct.unpack_from("<q", data, 0)
        return WorksetPayload(block_id=block_id, block=decode_payload(data[8:]))
    if len(data) < OBJECT_OVERHEAD_BYTES:
        raise ValueError("truncated payload: {} byte(s)".format(len(data)))
    magic, version, type_code, flags, a, b, _c, _d = _HEADER_STRUCT.unpack_from(
        data, 0
    )
    if magic != _HEADER_MAGIC:
        raise ValueError("bad payload magic {!r}".format(magic))
    if version != _HEADER_VERSION:
        raise ValueError("unsupported codec version {}".format(version))
    body = data[OBJECT_OVERHEAD_BYTES:]
    if type_code == _TYPE_DENSE:
        if flags & _FLAG_FP32:
            values = np.frombuffer(body, dtype="<f4", count=a).astype(np.float64)
            return DenseVectorPayload(values=values, precision="fp32")
        values = np.frombuffer(body, dtype="<f8", count=a).astype(np.float64)
        return DenseVectorPayload(values=values, precision="fp64")
    if type_code == _TYPE_SPARSE:
        indices = np.frombuffer(body, dtype="<i4", count=a).astype(np.int32)
        values = np.frombuffer(body, dtype="<f8", offset=a * 4, count=a).astype(
            np.float64
        )
        return SparseVectorPayload(indices=indices, values=values)
    if type_code == _TYPE_CSR:
        n_rows, nnz = a, b
        offset = 0
        indptr = np.frombuffer(body, dtype="<i4", count=n_rows + 1).astype(np.int32)
        offset += (n_rows + 1) * 4
        indices = np.frombuffer(body, dtype="<i4", offset=offset, count=nnz).astype(
            np.int32
        )
        offset += nnz * 4
        data_vals = np.frombuffer(body, dtype="<f8", offset=offset, count=nnz).astype(
            np.float64
        )
        offset += nnz * 8
        labels = None
        if flags & _FLAG_LABELS:
            labels = np.frombuffer(
                body, dtype="<f8", offset=offset, count=n_rows
            ).astype(np.float64)
        return CSRBlockPayload(
            indptr=indptr, indices=indices, data=data_vals, labels=labels
        )
    if type_code == _TYPE_INTS:
        values = np.frombuffer(body, dtype="<i8", count=a).astype(np.int64)
        return IntVectorPayload(values=values)
    raise ValueError("unknown payload type code {}".format(type_code))
