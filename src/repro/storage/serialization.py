"""Byte-size model for everything that crosses the simulated network.

The paper's Fig 7 result (block dispatch beats naive row-by-row dispatch
by 3.2-7.1x) is entirely a serialization story: sending K small objects
per row pays K per-object overheads, while batching rows into CSR blocks
pays one overhead per block and compresses away the per-row headers.  We
model that with a flat per-object overhead (JVM serialization headers,
class descriptors) plus per-payload bytes.

All functions return integer byte counts.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative

#: Per-serialized-object overhead (headers, class descriptor, refs).
#: Roughly what Java serialization / Kryo pays per object graph.
OBJECT_OVERHEAD_BYTES = 64

#: Bytes per stored index (int32 on the wire, as LIBSVM-scale ids fit).
INDEX_BYTES = 4

#: Bytes per stored value (float64).
VALUE_BYTES = 8

#: Bytes per label.
LABEL_BYTES = 8

#: Per-record framing of a shuffle record (partition id, lengths) — far
#: cheaper than a full serialized object, which is why MLlib-Repartition
#: beats Naive-ColumnSGD in Fig 7 despite also moving every row.
SHUFFLE_RECORD_OVERHEAD_BYTES = 16


def sparse_row_bytes(nnz: int) -> int:
    """Serialized size of one labelled sparse row as a standalone object."""
    check_non_negative(nnz, "nnz")
    return OBJECT_OVERHEAD_BYTES + LABEL_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


def sparse_vector_bytes(nnz: int) -> int:
    """Serialized size of one sparse vector (no label)."""
    check_non_negative(nnz, "nnz")
    return OBJECT_OVERHEAD_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


def dense_vector_bytes(dim: int) -> int:
    """Serialized size of a dense float64 vector (models, statistics)."""
    check_non_negative(dim, "dim")
    return OBJECT_OVERHEAD_BYTES + dim * VALUE_BYTES


def csr_matrix_bytes(n_rows: int, nnz: int, with_labels: bool = False) -> int:
    """Serialized size of a CSR block: one object, indptr + indices + data."""
    check_non_negative(n_rows, "n_rows")
    check_non_negative(nnz, "nnz")
    size = OBJECT_OVERHEAD_BYTES
    size += (n_rows + 1) * INDEX_BYTES  # indptr
    size += nnz * (INDEX_BYTES + VALUE_BYTES)
    if with_labels:
        size += n_rows * LABEL_BYTES
    return size


def workset_bytes(n_rows: int, nnz: int) -> int:
    """Serialized size of one workset: (block id, labels?, CSR piece).

    Worksets carry labels only on the worker that owns the label column;
    we charge labels on every workset for simplicity — it is a few bytes
    per row and identical across dispatch strategies, so comparisons are
    unaffected.
    """
    return 8 + csr_matrix_bytes(n_rows, nnz, with_labels=True)
