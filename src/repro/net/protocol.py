"""Runtime BSP protocol checker over the simulator's event log.

The static rules in :mod:`repro.lint` keep the *code* honest; this
checker keeps a *run* honest.  It hooks the network's message log and,
round by round, verifies the invariants the paper's accounting relies
on:

* **barrier isolation** — no message is sent outside an open round
  (BSP: all communication happens inside an iteration's phases);
* **push/bcast pairing** — every ``STATISTICS_PUSH`` a worker sends is
  answered by a ``STATISTICS_BCAST`` back to that worker in the *same*
  round (Algorithm 3's gather-reduce-broadcast);
* **clock monotonicity** — simulated time never runs backwards across
  a round;
* **byte accounting** — observed per-kind message counts and byte
  totals equal the analytic cost-model expectation the trainer derives
  from Table I (``expected``), so the formulas stay descriptive of the
  implementation rather than decorative.

Usage::

    checker = ProtocolChecker(cluster)
    for t in range(iterations):
        checker.begin_round(t)
        ...run the iteration...
        checker.end_round(t, expected={kind: (count, total_bytes), ...})

Trainers enable this behind their configs' ``check_protocol`` flag; a
violation raises :class:`~repro.errors.ProtocolViolationError` listing
every broken invariant of the round.

The ``expected`` declarations themselves are audited *statically* by
lint rule R010 (:mod:`repro.lint.program`): it walks each declaring
trainer's round loop at lint time and fails the build if the emitted
message kinds drift from the declared ones — so a checked run can never
be green merely because the declaration drifted along with a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ProtocolViolationError
from repro.net.message import Message, MessageKind

#: Kinds that may appear in any round without being declared in the
#: trainer's expectation: scheduling/barrier chatter plus the fault
#: layer's liveness and checkpoint traffic, whose cadence is governed by
#: :class:`~repro.core.recovery.RecoveryPolicy` rather than the trainer's
#: Table-I cost model.  Retransmissions of *checked* kinds are logged
#: under :data:`MessageKind.RETRY`, which stays checked — the engine
#: derives a retry envelope from the declared traffic (at most
#: ``max_attempts`` extra copies per declared message), so lossy runs
#: remain auditable without loosening the base-kind exact counts.
UNCHECKED_KINDS = (
    MessageKind.CONTROL,
    MessageKind.HEARTBEAT,
    MessageKind.CHECKPOINT,
)
_UNCHECKED_KINDS = UNCHECKED_KINDS


@dataclass(frozen=True)
class TrafficEnvelope:
    """Bounded per-round traffic for one message kind.

    Protocols that relax the BSP barrier (bounded staleness) cannot
    predict exact per-round traffic, but they *can* bound it: SSP with
    staleness ``s`` still commits exactly one update per round through
    the servers, while gradient bytes vary with the sampled batch's
    sparsity.  An envelope declares those bounds so such trainers are
    checked instead of exempted; an exact expectation is the degenerate
    envelope with ``min == max``.
    """

    min_messages: int
    max_messages: int
    min_bytes: int
    max_bytes: int

    def __post_init__(self):
        if not (0 <= self.min_messages <= self.max_messages):
            raise ValueError("need 0 <= min_messages <= max_messages")
        if not (0 <= self.min_bytes <= self.max_bytes):
            raise ValueError("need 0 <= min_bytes <= max_bytes")

    @classmethod
    def exact(cls, messages: int, total_bytes: int) -> "TrafficEnvelope":
        """Envelope matching exactly one (count, bytes) point."""
        return cls(messages, messages, total_bytes, total_bytes)

    def check(self, kind: MessageKind, count: int, total_bytes: int) -> List[str]:
        """Problem strings for observed traffic outside the envelope."""
        problems = []
        if not self.min_messages <= count <= self.max_messages:
            problems.append(
                "{}: envelope allows {}..{} message(s), observed {}".format(
                    kind.value, self.min_messages, self.max_messages, count
                )
            )
        if not self.min_bytes <= total_bytes <= self.max_bytes:
            problems.append(
                "{}: envelope allows {}..{} byte(s), observed {}".format(
                    kind.value, self.min_bytes, self.max_bytes, total_bytes
                )
            )
        return problems


#: One kind's expectation: an exact ``(count, bytes)`` pair or an envelope.
ExpectedTraffic = Union[Tuple[int, int], TrafficEnvelope]


class ProtocolChecker:
    """Validate per-iteration BSP invariants against the event log."""

    def __init__(self, cluster):
        self.cluster = cluster
        cluster.network.keep_log = True
        # Messages already logged (e.g. data loading) are out of scope;
        # the checker audits only what happens between begin/end calls.
        self._cursor = len(cluster.network.log)
        self._round_open = False
        self._start_clock = cluster.clock.now()
        self.rounds_checked = 0

    # ------------------------------------------------------------------
    def begin_round(self, iteration: int) -> None:
        """Open iteration ``iteration``; flags traffic since the last round."""
        if self._round_open:
            raise ProtocolViolationError(
                iteration, ["begin_round() while the previous round is still open"]
            )
        log = self.cluster.network.log
        if len(log) != self._cursor:
            stray = log[self._cursor:]
            raise ProtocolViolationError(
                iteration,
                [
                    "{} message(s) crossed the barrier before the round opened "
                    "(first: {} from {} to {})".format(
                        len(stray), stray[0].kind.value, stray[0].src, stray[0].dst
                    )
                ],
            )
        self._round_open = True
        self._start_clock = self.cluster.clock.now()

    def end_round(
        self,
        iteration: int,
        expected: Optional[Dict[MessageKind, ExpectedTraffic]] = None,
    ) -> None:
        """Close iteration ``iteration`` and verify its invariants.

        ``expected`` maps each message kind the trainer's cost model
        predicts for the round to ``(message_count, total_bytes)`` — or
        to a :class:`TrafficEnvelope` for bounded-staleness protocols
        whose per-round traffic is bracketed rather than exact.  Observed
        traffic must match, and no undeclared kind may appear
        (:data:`MessageKind.CONTROL` excepted).
        """
        if not self._round_open:
            raise ProtocolViolationError(
                iteration, ["end_round() without a matching begin_round()"]
            )
        self._round_open = False
        problems: List[str] = []

        now = self.cluster.clock.now()
        if now < self._start_clock:
            problems.append(
                "clock ran backwards: {:.6f}s at round start, {:.6f}s at end".format(
                    self._start_clock, now
                )
            )

        messages = self.cluster.network.log[self._cursor:]
        self._cursor = len(self.cluster.network.log)

        counts: Dict[MessageKind, int] = {}
        totals: Dict[MessageKind, int] = {}
        for message in messages:
            counts[message.kind] = counts.get(message.kind, 0) + 1
            totals[message.kind] = totals.get(message.kind, 0) + message.size_bytes

        problems.extend(self._check_pairing(messages))
        if expected is not None:
            problems.extend(self._check_accounting(counts, totals, expected))

        self.rounds_checked += 1
        if problems:
            raise ProtocolViolationError(iteration, problems)

    # ------------------------------------------------------------------
    def _check_pairing(self, messages: List[Message]) -> List[str]:
        """Every statistics pusher must be answered in the same round."""
        pushers = {
            m.src for m in messages if m.kind == MessageKind.STATISTICS_PUSH
        }
        answered = {
            m.dst for m in messages if m.kind == MessageKind.STATISTICS_BCAST
        }
        problems = []
        unanswered = sorted(pushers - answered)
        if unanswered:
            problems.append(
                "STATISTICS_PUSH from worker(s) {} never answered by a "
                "STATISTICS_BCAST in the same round".format(unanswered)
            )
        return problems

    def _check_accounting(
        self,
        counts: Dict[MessageKind, int],
        totals: Dict[MessageKind, int],
        expected: Dict[MessageKind, ExpectedTraffic],
    ) -> List[str]:
        """Observed counts/bytes must satisfy the analytic expectation."""
        problems = []
        for kind in counts:
            if kind not in expected and kind not in _UNCHECKED_KINDS:
                problems.append(
                    "unexpected {} traffic: {} message(s), {} byte(s)".format(
                        kind.value, counts[kind], totals[kind]
                    )
                )
        for kind, want in expected.items():
            got_count = counts.get(kind, 0)
            got_bytes = totals.get(kind, 0)
            if isinstance(want, TrafficEnvelope):
                problems.extend(want.check(kind, got_count, got_bytes))
                continue
            want_count, want_bytes = want
            if got_count != want_count:
                problems.append(
                    "{}: cost model predicts {} message(s), observed {}".format(
                        kind.value, want_count, got_count
                    )
                )
            if got_bytes != want_bytes:
                problems.append(
                    "{}: cost model predicts {} byte(s), observed {}".format(
                        kind.value, want_bytes, got_bytes
                    )
                )
        return problems
