"""Network cost model: messages, links, and collective operations.

All "time" in the reproduction's distributed experiments comes from this
package plus the compute cost model in :mod:`repro.sim.cost`.  A
:class:`NetworkModel` turns byte counts into seconds using the classic
latency + size/bandwidth model; :class:`Topology` composes link transfers
into the gather/broadcast/AllReduce patterns the five systems use.
:mod:`repro.net.faults` layers seeded per-link loss on top
(:class:`LossyNetworkModel`) without disturbing the lossless accounting.
"""

from repro.net.faults import FaultPlan, LinkFaults, LossyNetworkModel
from repro.net.message import Message, MessageKind
from repro.net.network import NetworkModel
from repro.net.protocol import ProtocolChecker, TrafficEnvelope
from repro.net.topology import StarTopology, allreduce_time

__all__ = [
    "FaultPlan",
    "LinkFaults",
    "LossyNetworkModel",
    "Message",
    "MessageKind",
    "NetworkModel",
    "ProtocolChecker",
    "StarTopology",
    "TrafficEnvelope",
    "allreduce_time",
]
