"""Communication patterns composed from point-to-point transfers.

The five systems use three patterns:

* star gather/broadcast between master and K workers (MLlib, ColumnSGD);
* sharded gather/broadcast against S parameter servers (Petuum, MXNet) —
  modelled as a star where each server handles 1/S of the bytes;
* ring AllReduce (MLlib*'s model averaging), for which we use the classic
  2(K-1)/K * size bandwidth term.

Times assume the master's NIC is the bottleneck for star patterns (it
sends/receives K messages serially over one link), matching the paper's
argument that multiple PS simply spread the same bytes over more NICs.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.message import Message, MessageKind
from repro.net.network import NetworkModel
from repro.utils.validation import check_non_negative, check_positive


def ring_allreduce_shards(size_bytes: int, n_workers: int) -> Sequence[int]:
    """Per-step message sizes of a 2(K-1)-step ring over an exact split.

    The vector is split into K shards of ``size // K`` bytes with the
    *last* shard taking the remainder, and step ``k`` of the ring moves
    shard ``k % K`` — so the accounted total is exactly
    ``2*(K-1)*(size // K) + size % K`` instead of the silent undercount
    of ``int(size / K)`` per step.  Both backends use this split, which
    is what keeps their byte ledgers comparable.
    """
    check_positive(n_workers, "n_workers")
    check_non_negative(size_bytes, "size_bytes")
    if n_workers == 1:
        return []
    shards = [int(size_bytes) // n_workers] * n_workers
    shards[-1] += int(size_bytes) % n_workers
    return [shards[step % n_workers] for step in range(2 * (n_workers - 1))]


class StarTopology:
    """Master-centred gather and broadcast over a :class:`NetworkModel`."""

    def __init__(self, network: NetworkModel, n_workers: int):
        check_positive(n_workers, "n_workers")
        self.network = network
        self.n_workers = int(n_workers)

    # ------------------------------------------------------------------
    def gather(self, kind: MessageKind, sizes: Sequence[int]) -> float:
        """Workers -> master; returns time until the *last* byte arrives.

        ``sizes[k]`` is worker k's message size.  Worker uplinks run in
        parallel but the master's downlink serialises the receives, so the
        gather takes ``latency + sum(sizes)/bandwidth`` — the paper's
        ``K * (message)`` master-side cost.
        """
        total = 0
        for worker_id, size in enumerate(sizes):
            self.network.send(Message(kind, worker_id, Message.MASTER, int(size)))
            total += int(size)
        return (
            self.network.latency
            + total / self.network.bandwidth
            + self.network.consume_extra_seconds()
        )

    def broadcast(self, kind: MessageKind, size: int) -> float:
        """Master -> all workers; time until the last worker has the data.

        The master pushes K copies through its single uplink.
        """
        for worker_id in range(self.n_workers):
            self.network.send(Message(kind, Message.MASTER, worker_id, int(size)))
        return (
            self.network.latency
            + self.n_workers * int(size) / self.network.bandwidth
            + self.network.consume_extra_seconds()
        )

    def sharded_gather(self, kind: MessageKind, sizes: Sequence[int], n_servers: int) -> float:
        """Workers -> S parameter servers, bytes split evenly across servers.

        Total bytes are unchanged (the paper's point), but the per-NIC
        serialisation is divided by S.
        """
        check_positive(n_servers, "n_servers")
        total = 0
        for worker_id, size in enumerate(sizes):
            self.network.send(Message(kind, worker_id, Message.MASTER, int(size)))
            total += int(size)
        return (
            self.network.latency
            + total / (n_servers * self.network.bandwidth)
            + self.network.consume_extra_seconds()
        )

    def sharded_broadcast(self, kind: MessageKind, size: int, n_servers: int) -> float:
        """S servers -> all workers, each server pushing its model shard."""
        check_positive(n_servers, "n_servers")
        for worker_id in range(self.n_workers):
            self.network.send(Message(kind, Message.MASTER, worker_id, int(size)))
        return (
            self.network.latency
            + self.n_workers * int(size) / (n_servers * self.network.bandwidth)
            + self.network.consume_extra_seconds()
        )


def allreduce_time(network: NetworkModel, size_bytes: int, n_workers: int) -> float:
    """Ring AllReduce of ``size_bytes`` across ``n_workers`` nodes.

    Classic cost: ``2 (K-1) steps of latency + 2 (K-1)/K * size / bandwidth``
    (reduce-scatter + all-gather).  Used by the MLlib* baseline.
    """
    check_positive(n_workers, "n_workers")
    if n_workers == 1:
        return 0.0
    steps = 2 * (n_workers - 1)
    per_step_bytes = size_bytes / n_workers
    for step, step_bytes in enumerate(ring_allreduce_shards(size_bytes, n_workers)):
        src = step % n_workers
        dst = (step + 1) % n_workers
        network.send(Message(MessageKind.MODEL_AVG, src, dst, step_bytes))
    return (
        steps * network.latency
        + steps * per_step_bytes / network.bandwidth
        + network.consume_extra_seconds()
    )
