"""Seeded per-link fault injection for the simulated network.

Real Spark/PS deployments lose messages; the simulator reproduces that
regime with a :class:`FaultPlan` — per-link probabilities of dropping,
duplicating, delaying, or corrupting a transfer — applied by
:class:`LossyNetworkModel`, a drop-in :class:`~repro.net.network.NetworkModel`
subclass.

Design constraints (and how they are met):

* **Pay-for-use** — with :meth:`FaultPlan.none` (or a plain
  ``NetworkModel``) every code path is bit-identical to the lossless
  simulator: ``send`` returns the same float, patterns add a literal
  ``0.0`` via :meth:`~repro.net.network.NetworkModel.consume_extra_seconds`.
* **Exact base accounting** — a retransmission is logged as a separate
  :data:`MessageKind.RETRY` message (same link, same size), never as a
  second copy of the original kind, so the ProtocolChecker's Table-I
  per-kind counts stay *exact* under loss; retry traffic is bounded by
  an engine-derived :class:`~repro.net.protocol.TrafficEnvelope`.
  Retransmits of unchecked kinds (control/heartbeat/checkpoint) keep
  their own kind — they are exempt either way.
* **Determinism** — each directed link owns a generator derived from the
  plan seed via the project's SplitMix64 mixing
  (:func:`repro.utils.rng.iteration_seed`), so fault sequences are
  reproducible per link regardless of interleaving across links.

Timing model: the *first* transmission's time is returned by ``send`` as
usual (patterns fold it into their analytic formulas); every retransmitted
or duplicated copy and every random link delay accrues into a pending
accumulator that the communication pattern drains once per collective via
``consume_extra_seconds()``.  A lost attempt therefore costs one extra
full store-and-forward of the message — a simple stop-and-wait ARQ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.net.network import NetworkModel
from repro.net.protocol import UNCHECKED_KINDS
from repro.utils.rng import iteration_seed, rng_from_seed
from repro.utils.validation import check_non_negative


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            "{} must be a probability in [0, 1], got {!r}".format(name, value)
        )


@dataclass(frozen=True)
class LinkFaults:
    """Per-transmission fault probabilities of one directed link.

    ``drop`` and ``corrupt`` both force a retransmission (a corrupted
    frame fails its checksum and is treated as lost by the receiver);
    they are tracked separately only for diagnostics.  ``duplicate``
    delivers one spurious extra copy of a successful transmission;
    ``delay`` adds the plan's ``delay_s`` to the transfer (reordering in
    a BSP round is indistinguishable from delay, since the barrier
    resynchronises every iteration).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0

    def __post_init__(self):
        _check_probability(self.drop, "drop")
        _check_probability(self.duplicate, "duplicate")
        _check_probability(self.delay, "delay")
        _check_probability(self.corrupt, "corrupt")
        if self.drop + self.corrupt >= 1.0:
            raise ConfigurationError(
                "drop + corrupt must be < 1 (no transmission could ever "
                "succeed), got {} + {}".format(self.drop, self.corrupt)
            )

    def any(self) -> bool:
        """True when any probability is non-zero."""
        return (self.drop or self.duplicate or self.delay or self.corrupt) != 0.0

    @property
    def loss(self) -> float:
        """Probability one transmission attempt must be retried."""
        return self.drop + self.corrupt


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault configuration for the whole cluster fabric.

    ``default`` applies to every directed link; ``links`` overrides
    specific ``(src, dst)`` pairs (node ids as in
    :class:`~repro.net.message.Message`, master = ``Message.MASTER``).
    """

    default: LinkFaults = field(default_factory=LinkFaults)
    links: Tuple[Tuple[Tuple[int, int], LinkFaults], ...] = ()
    seed: int = 0
    delay_s: float = 2e-3      #: extra seconds when a transfer is delayed
    max_attempts: int = 5      #: transmission attempts before giving up

    def __post_init__(self):
        check_non_negative(self.seed, "seed")
        check_non_negative(self.delay_s, "delay_s")
        if self.max_attempts < 1:
            raise ConfigurationError(
                "max_attempts must be >= 1, got {}".format(self.max_attempts)
            )
        # normalise dict input for the overrides to a hashable tuple form
        if isinstance(self.links, dict):
            object.__setattr__(self, "links", tuple(sorted(self.links.items())))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The lossless plan (the default everywhere)."""
        return cls()

    def any_faults(self) -> bool:
        """True when some link can misbehave."""
        return self.default.any() or any(f.any() for _, f in self.links)

    def for_link(self, src: int, dst: int) -> LinkFaults:
        """The fault profile of the directed link ``src -> dst``."""
        for key, faults in self.links:
            if key == (src, dst):
                return faults
        return self.default

    def link_seed(self, src: int, dst: int) -> int:
        """Deterministic per-link RNG seed (order-independent across links).

        Two rounds of SplitMix64 mixing keep nearby node ids uncorrelated;
        ``+ 2`` shifts ``Message.MASTER`` (= -1) into the non-negative range.
        """
        return iteration_seed(iteration_seed(self.seed, src + 2), dst + 2)


class LossyNetworkModel(NetworkModel):
    """A :class:`NetworkModel` whose links follow a :class:`FaultPlan`.

    Extra per-kind counters expose what the fault layer did:

    * ``retry_messages_by_kind`` / ``retry_bytes_by_kind`` — retransmitted
      copies, keyed by the *original* kind (the log records them as
      :data:`MessageKind.RETRY` unless the kind is unchecked);
    * ``dropped`` / ``corrupted`` / ``duplicated`` / ``delayed`` — event
      tallies across all links.
    """

    def __init__(self, fault_plan: Optional[FaultPlan] = None, **kwargs):
        super().__init__(**kwargs)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.none()
        self.retry_messages_by_kind: Dict[MessageKind, int] = {}
        self.retry_bytes_by_kind: Dict[MessageKind, int] = {}
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.delayed = 0
        self._pending_extra = 0.0
        self._link_rngs: Dict[Tuple[int, int], object] = {}

    # ------------------------------------------------------------------
    def _link_rng(self, src: int, dst: int):
        key = (src, dst)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = rng_from_seed(self.fault_plan.link_seed(src, dst))
            self._link_rngs[key] = rng
        return rng

    def _account_retry(self, message: Message) -> None:
        kind = message.kind
        self.retry_messages_by_kind[kind] = self.retry_messages_by_kind.get(kind, 0) + 1
        self.retry_bytes_by_kind[kind] = (
            self.retry_bytes_by_kind.get(kind, 0) + message.size_bytes
        )
        wire_kind = kind if kind in UNCHECKED_KINDS else MessageKind.RETRY
        copy = Message(wire_kind, message.src, message.dst, message.size_bytes)
        self._pending_extra += NetworkModel.send(self, copy)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> float:
        """Account the message, roll the link's dice, return the *base* time.

        Fault-induced extra seconds (retransmits, duplicate deliveries,
        link delay) accumulate until :meth:`consume_extra_seconds`.
        """
        base = super().send(message)
        faults = self.fault_plan.for_link(message.src, message.dst)
        if not faults.any():
            return base
        rng = self._link_rng(message.src, message.dst)
        # Stop-and-wait ARQ: attempt 1 is the base send above; each lost
        # attempt triggers one retransmitted copy, up to max_attempts.
        for _ in range(self.fault_plan.max_attempts - 1):
            roll = rng.random()
            if roll >= faults.loss:
                break
            if roll < faults.drop:
                self.dropped += 1
            else:
                self.corrupted += 1
            self._account_retry(message)
        if faults.duplicate and rng.random() < faults.duplicate:
            self.duplicated += 1
            self._account_retry(message)
        if faults.delay and rng.random() < faults.delay:
            self.delayed += 1
            self._pending_extra += self.fault_plan.delay_s
        return base

    def consume_extra_seconds(self) -> float:
        extra = self._pending_extra
        self._pending_extra = 0.0
        return extra

    # ------------------------------------------------------------------
    def retry_messages(self) -> int:
        """Total retransmitted/duplicated copies across all kinds."""
        return sum(self.retry_messages_by_kind.values())

    def retry_bytes(self) -> int:
        """Total retransmitted/duplicated bytes across all kinds."""
        return sum(self.retry_bytes_by_kind.values())

    def reset_counters(self) -> None:
        super().reset_counters()
        self.retry_messages_by_kind.clear()
        self.retry_bytes_by_kind.clear()
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.delayed = 0
        self._pending_extra = 0.0
