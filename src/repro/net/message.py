"""Typed messages with explicit payload sizes.

Every transfer in the simulator is a :class:`Message`; the event log
records them so tests can assert *exactly* which bytes each system moved
— that is how we validate Table I's communication formulas.
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass
from typing import Any, Optional


class MessageKind(enum.Enum):
    """What a message carries, following the paper's vocabulary."""

    MODEL_PULL = "model_pull"            # RowSGD: worker pulls model w
    GRADIENT_PUSH = "gradient_push"      # RowSGD: worker pushes gradient g
    STATISTICS_PUSH = "statistics_push"  # ColumnSGD: worker pushes partial stats
    STATISTICS_BCAST = "statistics_bcast"  # ColumnSGD: master broadcasts summed stats
    MODEL_AVG = "model_average"          # MLlib*: AllReduce of averaged models
    WORKSET = "workset"                  # data loading: column workset shipment
    BLOCK_ASSIGN = "block_assign"        # data loading: block id assignment
    CONTROL = "control"                  # scheduling / barrier control
    RETRY = "retry"                      # faults: retransmission of a lost/corrupt message
    HEARTBEAT = "heartbeat"              # faults: liveness probe worker -> master
    CHECKPOINT = "checkpoint"            # faults: model-partition checkpoint traffic


@dataclass(frozen=True)
class Message:
    """A single directed transfer.

    ``src``/``dst`` are node ids: worker indices ``0..K-1``, or the
    symbolic ``Message.MASTER`` (= -1) for the master/driver.  ``payload``
    is optional; the simulator only needs ``size_bytes``.
    """

    kind: MessageKind
    src: int
    dst: int
    size_bytes: int
    payload: Optional[Any] = None

    MASTER = -1

    def __post_init__(self):
        if isinstance(self.size_bytes, bool) or not isinstance(
            self.size_bytes, numbers.Integral
        ):
            raise TypeError(
                "size_bytes must be an integer byte count, got {!r}".format(
                    self.size_bytes
                )
            )
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0, got {}".format(self.size_bytes))
        if self.src == self.dst:
            raise ValueError(
                "self-send: src == dst == {} (no transfer crosses the network)".format(
                    self.src
                )
            )

    def involves_master(self) -> bool:
        """True when one endpoint is the master."""
        return self.src == Message.MASTER or self.dst == Message.MASTER
