"""The latency + bandwidth link model and traffic accounting."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.message import Message, MessageKind
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class NetworkModel:
    """Uniform full-duplex links: ``time = latency + bytes / bandwidth``.

    Parameters match the paper's clusters: Cluster 1 is 1 Gbps, Cluster 2
    is 10 Gbps; latency covers RPC round-trip setup (and, for Spark-based
    systems, is folded together with task-launch overhead which lives in
    the compute model instead).

    The model also keeps per-kind and per-node traffic counters, which is
    what the Table I validation tests read back.
    """

    bandwidth: float = 1e9 / 8  # bytes/second (1 Gbps default)
    latency: float = 0.5e-3     # seconds per message
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_sent_by_node: Counter = field(default_factory=Counter)
    bytes_received_by_node: Counter = field(default_factory=Counter)
    log: List[Message] = field(default_factory=list)
    keep_log: bool = False

    def __post_init__(self):
        check_positive(self.bandwidth, "bandwidth")
        check_non_negative(self.latency, "latency")

    # ------------------------------------------------------------------
    def transfer_time(self, size_bytes: int) -> float:
        """Seconds for one message of ``size_bytes`` over one link."""
        check_non_negative(size_bytes, "size_bytes")
        return self.latency + size_bytes / self.bandwidth

    def send(self, message: Message) -> float:
        """Account for a message and return its transfer time."""
        self.bytes_by_kind[message.kind] += message.size_bytes
        self.messages_by_kind[message.kind] += 1
        self.bytes_sent_by_node[message.src] += message.size_bytes
        self.bytes_received_by_node[message.dst] += message.size_bytes
        if self.keep_log:
            self.log.append(message)
        return self.transfer_time(message.size_bytes)

    def consume_extra_seconds(self) -> float:
        """Drain any pending fault-induced delay (retransmits, link delay).

        The base model is lossless, so this is always ``0.0``; the
        :class:`~repro.net.faults.LossyNetworkModel` override returns the
        seconds accrued by faults since the last drain.  Communication
        patterns add this to their returned times — adding ``0.0`` keeps
        the lossless path bit-identical.
        """
        return 0.0

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """All bytes ever sent."""
        return sum(self.bytes_by_kind.values())

    def total_messages(self) -> int:
        """All messages ever sent."""
        return sum(self.messages_by_kind.values())

    def bytes_of_kind(self, kind: MessageKind) -> int:
        """Bytes sent with a given :class:`MessageKind`."""
        return self.bytes_by_kind.get(kind, 0)

    def master_bytes(self) -> int:
        """Bytes the master sent plus received (Table I's master column)."""
        master = Message.MASTER
        return self.bytes_sent_by_node.get(master, 0) + self.bytes_received_by_node.get(master, 0)

    def worker_bytes(self, worker_id: int) -> int:
        """Bytes one worker sent plus received (Table I's worker column)."""
        return (
            self.bytes_sent_by_node.get(worker_id, 0)
            + self.bytes_received_by_node.get(worker_id, 0)
        )

    def reset_counters(self) -> None:
        """Zero all counters and drop the log (e.g. between iterations)."""
        self.bytes_by_kind.clear()
        self.messages_by_kind.clear()
        self.bytes_sent_by_node.clear()
        self.bytes_received_by_node.clear()
        self.log.clear()

    def snapshot(self) -> Dict[str, int]:
        """Small summary dict for reports."""
        return {
            "total_bytes": self.total_bytes(),
            "total_messages": self.total_messages(),
            "master_bytes": self.master_bytes(),
        }


def gbps(value: float) -> float:
    """Convert gigabits/second to the model's bytes/second."""
    check_positive(value, "bandwidth in Gbps")
    return value * 1e9 / 8
