"""ColumnSGD reproduction: column-oriented distributed SGD.

Reproduction of *ColumnSGD: A Column-oriented Framework for Distributed
Stochastic Gradient Descent* (Zhang et al., ICDE 2020) as a pure-Python
library running on a deterministic simulated cluster.

Quickstart::

    from repro import (
        make_classification, LogisticRegression, SGD,
        SimulatedCluster, CLUSTER1, train_columnsgd,
    )

    data = make_classification(20_000, 10_000, seed=0)
    cluster = SimulatedCluster(CLUSTER1)
    result = train_columnsgd(
        data, LogisticRegression(), SGD(learning_rate=10.0), cluster,
        batch_size=1000, iterations=100,
    )
    print(result.describe())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    DataError,
    PartitionError,
    SimulationError,
    OutOfMemoryError,
    StatisticsRecoveryError,
    TrainingError,
)
from repro.linalg import CSRMatrix, SparseVector
from repro.datasets import (
    Dataset,
    read_libsvm,
    write_libsvm,
    make_classification,
    make_regression,
    make_multiclass,
    load_profile,
    PROFILES,
)
from repro.models import (
    LogisticRegression,
    LinearSVM,
    LeastSquares,
    MultinomialLogisticRegression,
    FactorizationMachine,
    make_model,
    L1,
    L2,
)
from repro.optim import SGD, AdaGrad, Adam, make_optimizer
from repro.sim import (
    SimulatedCluster,
    ClusterSpec,
    CLUSTER1,
    CLUSTER2,
    StragglerModel,
    FailureInjector,
)
from repro.core import (
    ColumnSGDConfig,
    ColumnSGDDriver,
    train_columnsgd,
    TrainingResult,
    UserDefinedModel,
)
from repro.baselines import (
    MLlibTrainer,
    MLlibStarTrainer,
    ParameterServerTrainer,
    SparsePSTrainer,
    StaleSyncPSTrainer,
    make_trainer,
)
from repro.metrics import (
    train_test_split,
    evaluate_classifier,
    evaluate_regressor,
)
from repro.io import save_model, load_model

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DataError",
    "PartitionError",
    "SimulationError",
    "OutOfMemoryError",
    "StatisticsRecoveryError",
    "TrainingError",
    # linalg
    "CSRMatrix",
    "SparseVector",
    # datasets
    "Dataset",
    "read_libsvm",
    "write_libsvm",
    "make_classification",
    "make_regression",
    "make_multiclass",
    "load_profile",
    "PROFILES",
    # models
    "LogisticRegression",
    "LinearSVM",
    "LeastSquares",
    "MultinomialLogisticRegression",
    "FactorizationMachine",
    "make_model",
    "L1",
    "L2",
    # optim
    "SGD",
    "AdaGrad",
    "Adam",
    "make_optimizer",
    # sim
    "SimulatedCluster",
    "ClusterSpec",
    "CLUSTER1",
    "CLUSTER2",
    "StragglerModel",
    "FailureInjector",
    # core
    "ColumnSGDConfig",
    "ColumnSGDDriver",
    "train_columnsgd",
    "TrainingResult",
    "UserDefinedModel",
    # baselines
    "MLlibTrainer",
    "MLlibStarTrainer",
    "ParameterServerTrainer",
    "SparsePSTrainer",
    "StaleSyncPSTrainer",
    "make_trainer",
    # metrics & io
    "train_test_split",
    "evaluate_classifier",
    "evaluate_regressor",
    "save_model",
    "load_model",
]
