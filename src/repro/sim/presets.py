"""Named cluster scenarios beyond the paper's two testbeds.

The paper evaluates on Cluster 1 (8 x 1 Gbps) and Cluster 2 (40 x
10 Gbps); these presets extend the grid so users can ask "would the
conclusions hold on my fabric?" without hand-building specs.  All reuse
:class:`~repro.sim.cluster.ClusterSpec`; pass any of them to
:class:`~repro.sim.cluster.SimulatedCluster`.
"""

from __future__ import annotations

from typing import Dict

from repro.net.network import gbps
from repro.sim.cluster import CLUSTER1, CLUSTER2, ClusterSpec

#: Modern datacenter rack: 16 fat nodes on a 100 Gbps fabric.
MODERN_RACK = ClusterSpec(
    name="modern-rack",
    n_workers=16,
    cores_per_worker=32,
    memory_bytes_per_node=256e9,
    bandwidth_bytes_per_s=gbps(100.0),
    latency_s=0.05e-3,
)

#: Cross-availability-zone deployment: bandwidth is fine, latency hurts.
CROSS_AZ = ClusterSpec(
    name="cross-az",
    n_workers=8,
    cores_per_worker=8,
    memory_bytes_per_node=64e9,
    bandwidth_bytes_per_s=gbps(10.0),
    latency_s=5e-3,
)

#: Commodity edge boxes on consumer networking.
EDGE = ClusterSpec(
    name="edge",
    n_workers=4,
    cores_per_worker=4,
    memory_bytes_per_node=8e9,
    bandwidth_bytes_per_s=gbps(0.1),
    latency_s=10e-3,
)

PRESETS: Dict[str, ClusterSpec] = {
    "cluster1": CLUSTER1,
    "cluster2": CLUSTER2,
    "modern-rack": MODERN_RACK,
    "cross-az": CROSS_AZ,
    "edge": EDGE,
}


def load_preset(name: str) -> ClusterSpec:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(
            "unknown cluster preset {!r}; available: {}".format(name, sorted(PRESETS))
        )
    return PRESETS[key]
