"""Deterministic cluster simulator.

This package is the testbed substitute: it provides simulated time (a
:class:`SimClock` advanced by compute + network costs), per-node memory
budgets (so the paper's OOM outcomes reproduce), straggler injection, and
failure injection.  Trainers in :mod:`repro.core` and
:mod:`repro.baselines` run their *real* numerical work eagerly in-process
and charge the clock through these models.
"""

from repro.sim.clock import SimClock
from repro.sim.chaos import ChaosSchedule
from repro.sim.cost import ComputeCostModel
from repro.sim.straggler import StragglerModel
from repro.sim.failures import FailureInjector, FailureEvent, FailureKind
from repro.sim.cluster import ClusterSpec, SimulatedCluster, CLUSTER1, CLUSTER2
from repro.sim.presets import PRESETS, load_preset, MODERN_RACK, CROSS_AZ, EDGE

__all__ = [
    "ChaosSchedule",
    "SimClock",
    "ComputeCostModel",
    "StragglerModel",
    "FailureInjector",
    "FailureEvent",
    "FailureKind",
    "ClusterSpec",
    "SimulatedCluster",
    "CLUSTER1",
    "CLUSTER2",
    "PRESETS",
    "load_preset",
    "MODERN_RACK",
    "CROSS_AZ",
    "EDGE",
]
