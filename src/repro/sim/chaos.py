"""MTBF-driven chaos failure process over simulated time.

The fixed :class:`~repro.sim.failures.FailureInjector` replays the
paper's Fig 13 scenarios exactly; :class:`ChaosSchedule` complements it
for soak testing: failures arrive as a Poisson process in *sim-time*
(exponential inter-arrival with mean ``mtbf_s``), each arrival striking
a uniformly random worker with a uniformly random kind.  Because the
process is seeded and driven by the simulated clock, a chaos run is
exactly reproducible — same seed, same timing trajectory, same crashes.

A schedule quacks like a ``FailureInjector`` (``events_at`` /
``any_scheduled`` / ``validate``), so trainers accept either; it may
also wrap a fixed injector (``base=``) to overlay scripted failures on
the random background.  Trainers call :meth:`attach` at construction to
hand it the cluster whose clock and width drive the process.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.failures import FailureEvent, FailureInjector, FailureKind
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_non_negative, check_positive


class ChaosSchedule:
    """Seeded Poisson failure process composable with a fixed schedule.

    Parameters
    ----------
    mtbf_s:
        Mean time between failures, in simulated seconds.
    seed:
        Drives arrival times, victim choice, and failure kinds.
    kinds:
        Failure kinds drawn uniformly per arrival.  Master failures are
        excluded by default; add :data:`FailureKind.MASTER` to soak the
        checkpoint-restart path.
    base:
        Optional fixed :class:`FailureInjector` overlaid on the chaos
        background (its events fire in addition to the random ones).
    """

    def __init__(
        self,
        mtbf_s: float,
        seed: int = 0,
        kinds: Tuple[FailureKind, ...] = (FailureKind.TASK, FailureKind.WORKER),
        base: Optional[FailureInjector] = None,
    ):
        check_positive(mtbf_s, "mtbf_s")
        check_non_negative(seed, "seed")
        if not kinds:
            raise ConfigurationError("kinds must name at least one FailureKind")
        for kind in kinds:
            if not isinstance(kind, FailureKind):
                raise ConfigurationError(
                    "kinds must be FailureKind members, got {!r}".format(kind)
                )
        self.mtbf_s = float(mtbf_s)
        self.seed = int(seed)
        self.kinds = tuple(kinds)
        self.base = base if base is not None else FailureInjector.none()
        self._rng = rng_from_seed(self.seed)
        self._cluster = None
        self._next_arrival = float(self._rng.exponential(self.mtbf_s))

    # ------------------------------------------------------------------
    def attach(self, cluster) -> None:
        """Bind the cluster whose clock and worker count drive arrivals."""
        self._cluster = cluster

    def _require_cluster(self):
        if self._cluster is None:
            raise ConfigurationError(
                "ChaosSchedule is not attached to a cluster; trainers call "
                "attach(cluster) at construction"
            )
        return self._cluster

    # ------------------------------------------------------------------
    def events_at(self, iteration: int) -> List[FailureEvent]:
        """Scripted events plus every chaos arrival due by the sim clock.

        Arrival times are generated lazily from the seeded exponential
        stream; an arrival 'due' (``<= clock.now()``) strikes at the
        start of this iteration, mirroring how a BSP master only
        *observes* a failure at the next synchronization point.
        """
        cluster = self._require_cluster()
        events = list(self.base.events_at(iteration))
        now = cluster.clock.now()
        while self._next_arrival <= now:
            kind = self.kinds[int(self._rng.integers(len(self.kinds)))]
            worker: Optional[int] = None
            if kind != FailureKind.MASTER:
                worker = int(self._rng.integers(cluster.n_workers))
            events.append(FailureEvent(iteration, kind, worker))
            self._next_arrival += float(self._rng.exponential(self.mtbf_s))
        return events

    def any_scheduled(self) -> bool:
        """Chaos always has more failures in store."""
        return True

    def validate(self, n_workers: int) -> None:
        """Chaos victims are drawn in-range by construction; check the base."""
        self.base.validate(n_workers)

    def __repr__(self) -> str:
        return "ChaosSchedule(mtbf_s={}, seed={}, kinds={})".format(
            self.mtbf_s, self.seed, [k.value for k in self.kinds]
        )
