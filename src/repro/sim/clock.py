"""Simulated wall clock."""

from __future__ import annotations

from repro.utils.validation import check_non_negative


class SimClock:
    """Monotone simulated time in seconds.

    Trainers advance it by the duration of each BSP phase; convergence
    recorders read it to put "seconds" on the x-axis of Fig 8-style
    curves.
    """

    def __init__(self, start: float = 0.0):
        check_non_negative(start, "start")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time.

        Negative advances are protocol errors (a phase cannot take
        negative time), so they raise.
        """
        if seconds < 0:
            raise ValueError("cannot advance clock by negative time {}".format(seconds))
        self._now += float(seconds)
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Rewind for a fresh run."""
        check_non_negative(to, "to")
        self._now = float(to)

    def __repr__(self) -> str:
        return "SimClock(t={:.6f}s)".format(self._now)
