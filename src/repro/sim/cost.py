"""Compute-side cost model.

Gradient/statistics computation on sparse data is linear in the number of
non-zeros touched, so compute time is ``seconds_per_nnz * nnz`` plus a
fixed per-task overhead.  The per-task overhead is where the paper's
platform constants live: Spark-scheduled systems (MLlib, MLlib*,
ColumnSGD) pay tens of milliseconds of task-launch latency per iteration,
while parameter-server runtimes keep workers hot and pay ~a millisecond.
The paper itself attributes MXNet beating ColumnSGD on avazu to exactly
this Spark scheduling latency, so the constant is load-bearing for
reproducing that crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_non_negative


#: Task-launch overhead of a Spark-scheduled BSP round (seconds).
SPARK_TASK_OVERHEAD = 0.025

#: Per-iteration overhead of a parameter-server runtime (seconds).
PS_TASK_OVERHEAD = 0.001


class WorkLedger:
    """Records the *work volumes* behind every cost-model charge.

    :meth:`ComputeCostModel.sparse_work` and :meth:`~ComputeCostModel.dense_work`
    convert element counts into seconds; while this ledger is enabled they
    also report the raw counts here, so the engine's ``check_cost`` audit
    (:mod:`repro.engine.cost_audit`) can compare what a round *charged*
    against what the :data:`repro.linalg.counters.OP_COUNTERS` kernels
    *measured* — units against units, independent of the per-element
    second constants.  Off by default; recording never affects the
    returned seconds.
    """

    __slots__ = ("enabled", "sparse_units", "dense_units", "charges")

    def __init__(self):
        self.enabled = False
        self.sparse_units = 0.0  # sum of nnz * passes over sparse_work calls
        self.dense_units = 0.0   # sum of n_elements over dense_work calls
        self.charges = 0         # number of charge calls recorded

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.sparse_units = 0.0
        self.dense_units = 0.0
        self.charges = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "sparse_units": self.sparse_units,
            "dense_units": self.dense_units,
            "charges": self.charges,
        }

    def record_sparse(self, units: float) -> None:
        if not self.enabled:
            return
        self.sparse_units += units
        self.charges += 1

    def record_dense(self, units: float) -> None:
        if not self.enabled:
            return
        self.dense_units += units
        self.charges += 1


#: Process-wide charge ledger (the cost model is a frozen dataclass, so
#: the mutable recording state lives at module level, mirroring
#: ``repro.linalg.counters.OP_COUNTERS``).
WORK_LEDGER = WorkLedger()


@dataclass(frozen=True)
class ComputeCostModel:
    """Converts work volumes into seconds on one worker core.

    Parameters
    ----------
    seconds_per_nnz:
        Cost of touching one stored non-zero in a gradient/statistics
        kernel (multiply + add + indexing); ~4 ns on the paper's Xeons.
    seconds_per_dense_element:
        Cost of touching one dense vector element (model update, buffer
        aggregation); cheaper than sparse access.
    task_overhead:
        Fixed scheduling/launch cost charged once per BSP phase.
    """

    seconds_per_nnz: float = 4e-9
    seconds_per_dense_element: float = 1e-9
    task_overhead: float = SPARK_TASK_OVERHEAD

    def __post_init__(self):
        check_non_negative(self.seconds_per_nnz, "seconds_per_nnz")
        check_non_negative(self.seconds_per_dense_element, "seconds_per_dense_element")
        check_non_negative(self.task_overhead, "task_overhead")

    def sparse_work(self, nnz: float, passes: float = 1.0) -> float:
        """Seconds for kernels touching ``nnz`` stored entries ``passes`` times."""
        check_non_negative(nnz, "nnz")
        check_non_negative(passes, "passes")
        WORK_LEDGER.record_sparse(nnz * passes)
        return self.seconds_per_nnz * nnz * passes

    def dense_work(self, n_elements: float) -> float:
        """Seconds for touching ``n_elements`` dense values once."""
        check_non_negative(n_elements, "n_elements")
        WORK_LEDGER.record_dense(n_elements)
        return self.seconds_per_dense_element * n_elements

    def with_overhead(self, overhead: float) -> "ComputeCostModel":
        """Copy with a different per-phase task overhead."""
        return ComputeCostModel(
            seconds_per_nnz=self.seconds_per_nnz,
            seconds_per_dense_element=self.seconds_per_dense_element,
            task_overhead=overhead,
        )
