"""Compute-side cost model.

Gradient/statistics computation on sparse data is linear in the number of
non-zeros touched, so compute time is ``seconds_per_nnz * nnz`` plus a
fixed per-task overhead.  The per-task overhead is where the paper's
platform constants live: Spark-scheduled systems (MLlib, MLlib*,
ColumnSGD) pay tens of milliseconds of task-launch latency per iteration,
while parameter-server runtimes keep workers hot and pay ~a millisecond.
The paper itself attributes MXNet beating ColumnSGD on avazu to exactly
this Spark scheduling latency, so the constant is load-bearing for
reproducing that crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative


#: Task-launch overhead of a Spark-scheduled BSP round (seconds).
SPARK_TASK_OVERHEAD = 0.025

#: Per-iteration overhead of a parameter-server runtime (seconds).
PS_TASK_OVERHEAD = 0.001


@dataclass(frozen=True)
class ComputeCostModel:
    """Converts work volumes into seconds on one worker core.

    Parameters
    ----------
    seconds_per_nnz:
        Cost of touching one stored non-zero in a gradient/statistics
        kernel (multiply + add + indexing); ~4 ns on the paper's Xeons.
    seconds_per_dense_element:
        Cost of touching one dense vector element (model update, buffer
        aggregation); cheaper than sparse access.
    task_overhead:
        Fixed scheduling/launch cost charged once per BSP phase.
    """

    seconds_per_nnz: float = 4e-9
    seconds_per_dense_element: float = 1e-9
    task_overhead: float = SPARK_TASK_OVERHEAD

    def __post_init__(self):
        check_non_negative(self.seconds_per_nnz, "seconds_per_nnz")
        check_non_negative(self.seconds_per_dense_element, "seconds_per_dense_element")
        check_non_negative(self.task_overhead, "task_overhead")

    def sparse_work(self, nnz: float, passes: float = 1.0) -> float:
        """Seconds for kernels touching ``nnz`` stored entries ``passes`` times."""
        check_non_negative(nnz, "nnz")
        check_non_negative(passes, "passes")
        return self.seconds_per_nnz * nnz * passes

    def dense_work(self, n_elements: float) -> float:
        """Seconds for touching ``n_elements`` dense values once."""
        check_non_negative(n_elements, "n_elements")
        return self.seconds_per_dense_element * n_elements

    def with_overhead(self, overhead: float) -> "ComputeCostModel":
        """Copy with a different per-phase task overhead."""
        return ComputeCostModel(
            seconds_per_nnz=self.seconds_per_nnz,
            seconds_per_dense_element=self.seconds_per_dense_element,
            task_overhead=overhead,
        )
