"""Cluster specification and the simulated-cluster bundle.

A :class:`ClusterSpec` captures the paper's hardware tables; a
:class:`SimulatedCluster` instantiates the clock, network, compute model
and per-node memory ledgers that every trainer runs against.  ``CLUSTER1``
and ``CLUSTER2`` are the two testbeds of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import OutOfMemoryError
from repro.net.faults import FaultPlan, LossyNetworkModel
from repro.net.network import NetworkModel, gbps
from repro.net.topology import StarTopology
from repro.sim.clock import SimClock
from repro.sim.cost import ComputeCostModel
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware description of one testbed."""

    name: str
    n_workers: int
    cores_per_worker: int
    memory_bytes_per_node: float
    bandwidth_bytes_per_s: float
    latency_s: float = 0.5e-3
    disk_bandwidth_bytes_per_s: float = 400e6

    def __post_init__(self):
        check_positive(self.n_workers, "n_workers")
        check_positive(self.cores_per_worker, "cores_per_worker")
        check_positive(self.memory_bytes_per_node, "memory_bytes_per_node")
        check_positive(self.bandwidth_bytes_per_s, "bandwidth_bytes_per_s")
        check_non_negative(self.latency_s, "latency_s")
        check_positive(self.disk_bandwidth_bytes_per_s, "disk_bandwidth_bytes_per_s")

    def with_workers(self, n_workers: int) -> "ClusterSpec":
        """Same hardware, different node count (scalability sweeps)."""
        return replace(self, n_workers=n_workers)


#: Section V-A, Cluster 1: 8 machines, 2 CPUs, 32 GB, 1 Gbps.
CLUSTER1 = ClusterSpec(
    name="cluster1",
    n_workers=8,
    cores_per_worker=2,
    memory_bytes_per_node=32e9,
    bandwidth_bytes_per_s=gbps(1.0),
)

#: Section V-A, Cluster 2: 40 machines, 8 CPUs, 50 GB, 10 Gbps.
CLUSTER2 = ClusterSpec(
    name="cluster2",
    n_workers=40,
    cores_per_worker=8,
    memory_bytes_per_node=50e9,
    bandwidth_bytes_per_s=gbps(10.0),
)


class SimulatedCluster:
    """One master + K workers with shared clock, network, and cost model.

    Node ids: workers are ``0..K-1``; the master is
    :attr:`~repro.net.message.Message.MASTER` (-1).  Memory is tracked as a
    high-water ledger per node; exceeding a node's capacity raises
    :class:`~repro.errors.OutOfMemoryError` — that is how Table V's MXNet
    OOM reproduces.
    """

    MASTER = -1

    def __init__(
        self,
        spec: ClusterSpec,
        cost: Optional[ComputeCostModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.spec = spec
        self.clock = SimClock()
        if fault_plan is not None and fault_plan.any_faults():
            self.network: NetworkModel = LossyNetworkModel(
                fault_plan=fault_plan,
                bandwidth=spec.bandwidth_bytes_per_s,
                latency=spec.latency_s,
            )
        else:
            # FaultPlan.none() (or no plan) gets the plain model — the
            # fault layer is pay-for-use, bit-identical when lossless.
            self.network = NetworkModel(
                bandwidth=spec.bandwidth_bytes_per_s, latency=spec.latency_s
            )
        self.topology = StarTopology(self.network, spec.n_workers)
        self.cost = cost if cost is not None else ComputeCostModel()
        #: per-phase trace of the most recent engine-driven run; set by
        #: :class:`repro.engine.RoundEngine` (kept as a plain attribute so
        #: the sim layer does not import the engine layer)
        self.engine_trace = None
        self._runtime = None
        self._memory: Dict[int, float] = {self.MASTER: 0.0}
        self._memory.update({w: 0.0 for w in range(spec.n_workers)})
        self._memory_peak: Dict[int, float] = dict(self._memory)

    @property
    def n_workers(self) -> int:
        """Number of workers K."""
        return self.spec.n_workers

    @property
    def runtime(self):
        """This cluster's :class:`~repro.runtime.SimRuntime` adapter.

        Cached and stateless: it forwards to the very clock/topology
        objects above, so engine rounds through the runtime surface are
        bit-identical to direct topology calls.  Imported lazily to keep
        the sim layer importable without the runtime package.
        """
        if self._runtime is None:
            from repro.runtime.sim import SimRuntime

            self._runtime = SimRuntime(self)
        return self._runtime

    def workers(self) -> range:
        """Iterable of worker ids."""
        return range(self.n_workers)

    # ------------------------------------------------------------------
    # memory ledger
    # ------------------------------------------------------------------
    def charge_memory(self, node: int, num_bytes: float, what: str = "allocation") -> None:
        """Allocate ``num_bytes`` on ``node``; raise on exceeding capacity."""
        if node not in self._memory:
            raise ValueError("unknown node id {}".format(node))
        if num_bytes < 0:
            raise ValueError("cannot charge negative memory")
        new_level = self._memory[node] + num_bytes
        if new_level > self.spec.memory_bytes_per_node:
            label = "master" if node == self.MASTER else "worker {}".format(node)
            raise OutOfMemoryError(
                "{} ({})".format(label, what),
                required_bytes=int(new_level),
                capacity_bytes=int(self.spec.memory_bytes_per_node),
            )
        self._memory[node] = new_level
        self._memory_peak[node] = max(self._memory_peak[node], new_level)

    def release_memory(self, node: int, num_bytes: float) -> None:
        """Free a previous charge (never below zero)."""
        if node not in self._memory:
            raise ValueError("unknown node id {}".format(node))
        self._memory[node] = max(0.0, self._memory[node] - num_bytes)

    def memory_in_use(self, node: int) -> float:
        """Currently charged bytes on ``node``."""
        return self._memory[node]

    def memory_peak(self, node: int) -> float:
        """High-water mark of charged bytes on ``node``."""
        return self._memory_peak[node]

    # ------------------------------------------------------------------
    # time helpers
    # ------------------------------------------------------------------
    def bsp_compute(self, per_worker_seconds: Dict[int, float]) -> float:
        """Duration of one BSP compute phase: the slowest participant.

        Adds the cost model's task overhead once (tasks launch in
        parallel).  Returns the phase duration without advancing the
        clock; callers combine phases before advancing.
        """
        slowest = max(per_worker_seconds.values()) if per_worker_seconds else 0.0
        return self.cost.task_overhead + slowest

    def reset(self) -> None:
        """Fresh clock, counters, ledgers and engine trace for a new run."""
        self.clock.reset()
        self.network.reset_counters()
        self.engine_trace = None
        for node in self._memory:
            self._memory[node] = 0.0
            self._memory_peak[node] = 0.0
