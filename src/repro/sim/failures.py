"""Failure injection for the fault-tolerance experiments (Fig 13).

Three failure kinds, matching the paper's Section X:

* ``TASK`` — a Spark task throws; restarting it is almost free because
  the data and model partitions stay cached on the worker;
* ``WORKER`` — a worker process dies: its data shard must be reloaded and
  its model partition is lost (ColumnSGD re-initialises it to zeros and
  relies on SGD's robustness);
* ``MASTER`` — the driver dies; the whole job restarts.

An injector is a schedule of :class:`FailureEvent` keyed by iteration;
trainers query it each iteration and implement the recovery behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.utils.validation import check_non_negative


class FailureKind(enum.Enum):
    """What fails."""

    TASK = "task"
    WORKER = "worker"
    MASTER = "master"


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure: at the start of ``iteration``, on ``worker_id``.

    ``worker_id`` is ignored for master failures.
    """

    iteration: int
    kind: FailureKind
    worker_id: Optional[int] = None

    def __post_init__(self):
        check_non_negative(self.iteration, "iteration")
        if self.kind != FailureKind.MASTER and self.worker_id is None:
            raise ValueError("{} failure needs a worker_id".format(self.kind.value))


class FailureInjector:
    """A fixed schedule of failures, queried by iteration number."""

    def __init__(self, events: List[FailureEvent] = None):
        self._by_iteration: Dict[int, List[FailureEvent]] = {}
        for event in events or []:
            self._by_iteration.setdefault(event.iteration, []).append(event)

    @classmethod
    def none(cls) -> "FailureInjector":
        """No failures."""
        return cls([])

    @classmethod
    def task_failure(cls, iteration: int, worker_id: int = 0) -> "FailureInjector":
        """Single task failure at ``iteration``."""
        return cls([FailureEvent(iteration, FailureKind.TASK, worker_id)])

    @classmethod
    def worker_failure(cls, iteration: int, worker_id: int = 0) -> "FailureInjector":
        """Single worker crash at ``iteration``."""
        return cls([FailureEvent(iteration, FailureKind.WORKER, worker_id)])

    def events_at(self, iteration: int) -> List[FailureEvent]:
        """Failures scheduled for this iteration (possibly empty)."""
        return list(self._by_iteration.get(iteration, []))

    def any_scheduled(self) -> bool:
        """Whether the schedule contains any event at all."""
        return bool(self._by_iteration)
