"""Failure injection for the fault-tolerance experiments (Fig 13).

Three failure kinds, matching the paper's Section X:

* ``TASK`` — a Spark task throws; restarting it is almost free because
  the data and model partitions stay cached on the worker;
* ``WORKER`` — a worker process dies: its data shard must be reloaded and
  its model partition is lost (ColumnSGD re-initialises it to zeros and
  relies on SGD's robustness);
* ``MASTER`` — the driver dies; the whole job restarts.

An injector is a schedule of :class:`FailureEvent` keyed by iteration;
trainers query it each iteration and implement the recovery behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative


class FailureKind(enum.Enum):
    """What fails."""

    TASK = "task"
    WORKER = "worker"
    MASTER = "master"


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure: at the start of ``iteration``, on ``worker_id``.

    ``worker_id`` is ignored for master failures.
    """

    iteration: int
    kind: FailureKind
    worker_id: Optional[int] = None

    def __post_init__(self):
        check_non_negative(self.iteration, "iteration")
        if self.kind != FailureKind.MASTER and self.worker_id is None:
            raise ConfigurationError(
                "{} failure needs a worker_id".format(self.kind.value)
            )
        if self.worker_id is not None and self.worker_id < 0:
            raise ConfigurationError(
                "worker_id must be >= 0, got {}".format(self.worker_id)
            )


class FailureInjector:
    """A fixed schedule of failures, queried by iteration number.

    The schedule is defensive-copied at construction and immutable
    afterwards (``events`` exposes it as a tuple).
    """

    def __init__(self, events: Optional[Sequence[FailureEvent]] = None):
        self._events: Tuple[FailureEvent, ...] = tuple(events or ())
        for event in self._events:
            if not isinstance(event, FailureEvent):
                raise ConfigurationError(
                    "events must be FailureEvent instances, got {!r}".format(event)
                )
        self._by_iteration: Dict[int, List[FailureEvent]] = {}
        for event in self._events:
            self._by_iteration.setdefault(event.iteration, []).append(event)

    @property
    def events(self) -> Tuple[FailureEvent, ...]:
        """The full immutable schedule, in construction order."""
        return self._events

    def validate(self, n_workers: int) -> None:
        """Check every targeted worker id fits a ``n_workers`` cluster."""
        for event in self._events:
            if event.worker_id is not None and event.worker_id >= n_workers:
                raise ConfigurationError(
                    "failure at iteration {} targets worker {} but the "
                    "cluster has workers 0..{}".format(
                        event.iteration, event.worker_id, n_workers - 1
                    )
                )

    @classmethod
    def none(cls) -> "FailureInjector":
        """No failures."""
        return cls([])

    @classmethod
    def task_failure(cls, iteration: int, worker_id: int = 0) -> "FailureInjector":
        """Single task failure at ``iteration``."""
        return cls([FailureEvent(iteration, FailureKind.TASK, worker_id)])

    @classmethod
    def worker_failure(cls, iteration: int, worker_id: int = 0) -> "FailureInjector":
        """Single worker crash at ``iteration``."""
        return cls([FailureEvent(iteration, FailureKind.WORKER, worker_id)])

    @classmethod
    def master_failure(cls, iteration: int) -> "FailureInjector":
        """Single master crash at ``iteration``."""
        return cls([FailureEvent(iteration, FailureKind.MASTER)])

    def events_at(self, iteration: int) -> List[FailureEvent]:
        """Failures scheduled for this iteration (possibly empty)."""
        return list(self._by_iteration.get(iteration, []))

    def any_scheduled(self) -> bool:
        """Whether the schedule contains any event at all."""
        return bool(self._by_iteration)
