"""Straggler injection.

The paper's Section V-C simulates stragglers by randomly picking one
worker per iteration and making it sleep; *StragglerLevel* is "the ratio
between the extra time a straggler needs to finish a task and the time
that a non-straggler worker needs".  A StragglerLevel of 5 therefore
multiplies the victim's compute time by 6.

For the backup-computation experiment the paper also uses a *permanent*
straggler ("this worker is always slower ... just kill it"), which
``mode='permanent'`` reproduces: fixed victims that, under backup
computation, simply return nothing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_in, check_non_negative, check_positive


class StragglerModel:
    """Per-iteration straggler assignment.

    Parameters
    ----------
    n_workers:
        Cluster width.
    level:
        StragglerLevel; victims take ``(1 + level) x`` their normal time.
    n_stragglers:
        Victims per iteration (paper uses 1).
    mode:
        ``'none'`` — no stragglers;
        ``'random'`` — fresh random victims each iteration;
        ``'permanent'`` — the same victims every iteration.
    seed:
        Controls victim choice for reproducibility.
    """

    def __init__(
        self,
        n_workers: int,
        level: float = 0.0,
        n_stragglers: int = 1,
        mode: str = "random",
        seed=0,
    ):
        check_positive(n_workers, "n_workers")
        check_non_negative(level, "level")
        check_in(mode, ("none", "random", "permanent"), "mode")
        if mode != "none":
            check_positive(n_stragglers, "n_stragglers")
            if n_stragglers > n_workers:
                raise ValueError(
                    "n_stragglers={} exceeds n_workers={}".format(n_stragglers, n_workers)
                )
        self.n_workers = int(n_workers)
        self.level = float(level)
        self.n_stragglers = int(n_stragglers)
        self.mode = mode
        self._rng = rng_from_seed(seed)
        #: per-iteration victim cache — ``victims(i)`` must return the
        #: same set no matter how many times (or from where) it is
        #: called within a run, else ``victims(i)`` and ``slowdowns(i)``
        #: could name different workers
        self._victim_cache: Dict[int, FrozenSet[int]] = {}
        self._permanent: FrozenSet[int] = frozenset()
        if mode == "permanent":
            chosen = self._rng.choice(self.n_workers, size=self.n_stragglers, replace=False)
            self._permanent = frozenset(int(w) for w in chosen)

    @classmethod
    def none(cls, n_workers: int) -> "StragglerModel":
        """The no-straggler model (ColumnSGD-pure in Fig 9)."""
        return cls(n_workers, level=0.0, mode="none")

    # ------------------------------------------------------------------
    def victims(self, iteration: int) -> FrozenSet[int]:
        """Worker ids straggling in this iteration."""
        if self.mode == "none":
            return frozenset()
        if self.mode == "permanent":
            return self._permanent
        cached = self._victim_cache.get(iteration)
        if cached is None:
            chosen = self._rng.choice(
                self.n_workers, size=self.n_stragglers, replace=False
            )
            cached = frozenset(int(w) for w in chosen)
            self._victim_cache[iteration] = cached
        return cached

    def slowdowns(self, iteration: int) -> Dict[int, float]:
        """Multiplier on compute time per worker for this iteration.

        Non-victims get 1.0; victims get ``1 + level``.
        """
        victims = self.victims(iteration)
        return {
            w: (1.0 + self.level if w in victims else 1.0) for w in range(self.n_workers)
        }

    def permanent_victims(self) -> FrozenSet[int]:
        """Fixed victims in ``'permanent'`` mode (empty otherwise)."""
        return self._permanent
