"""Experiment harness: uniform runners and report rendering.

Thin glue between the trainers and the ``benchmarks/`` scripts: build a
system, run it on a profile's synthetic stand-in, collect
:class:`~repro.core.results.TrainingResult` objects, and render the
paper's tables/series as ASCII.
"""

from repro.experiments.runner import (
    ExperimentSpec,
    run_system,
    run_comparison,
    per_iteration_seconds,
)
from repro.experiments.report import (
    convergence_table,
    iteration_time_table,
    loss_series,
    render_curve,
)
from repro.experiments.gantt import (
    fault_timeline,
    render_engine_trace,
    render_iteration_gantt,
)
from repro.experiments.paper_report import build_report, collect_results, write_report
from repro.experiments.sweeps import (
    sweep,
    sweep_batch_sizes,
    sweep_workers,
    sweep_learning_rates,
    best_learning_rate,
)

__all__ = [
    "ExperimentSpec",
    "run_system",
    "run_comparison",
    "per_iteration_seconds",
    "convergence_table",
    "iteration_time_table",
    "loss_series",
    "render_curve",
    "sweep",
    "sweep_batch_sizes",
    "sweep_workers",
    "sweep_learning_rates",
    "best_learning_rate",
    "fault_timeline",
    "render_engine_trace",
    "render_iteration_gantt",
    "build_report",
    "collect_results",
    "write_report",
]
