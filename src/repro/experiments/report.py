"""ASCII rendering of results: tables and loss curves.

Every benchmark prints through these helpers so ``bench_output.txt``
reads like the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.results import TrainingResult
from repro.utils.format import ascii_table, format_duration


def iteration_time_table(results: Dict[str, TrainingResult], reference: str = "columnsgd") -> str:
    """Table IV/V style: per-iteration seconds + speedup vs reference."""
    ref_key = _find_key(results, reference)
    ref = results[ref_key].avg_iteration_seconds() if ref_key else None
    rows = []
    for name, result in results.items():
        seconds = result.avg_iteration_seconds()
        speedup = "-"
        if ref and name != ref_key and seconds > 0:
            speedup = "{:.1f}x".format(seconds / ref)
        rows.append((result.system, "{:.4f}".format(seconds), speedup))
    return ascii_table(["system", "per-iteration (s)", "vs ColumnSGD"], rows)


def convergence_table(results: Dict[str, TrainingResult], threshold: float) -> str:
    """Fig 8's horizontal-line comparison: time to reach a target loss."""
    rows = []
    for name, result in results.items():
        reached = result.time_to_loss(threshold)
        rows.append(
            (
                result.system,
                "{:.4f}".format(result.final_loss()) if result.final_loss() is not None else "n/a",
                format_duration(reached) if reached is not None else "never",
            )
        )
    return ascii_table(
        ["system", "final loss", "time to loss<={:g}".format(threshold)], rows
    )


def loss_series(result: TrainingResult, max_points: int = 12) -> str:
    """Compact ``t=...s loss=...`` series for one run."""
    points = result.losses()
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        points = points[::step] + [points[-1]]
    return " ".join(
        "({}, {:.4f})".format(format_duration(t), loss) for _, t, loss in points
    )


def render_curve(
    values: Sequence[float], width: int = 60, height: int = 12, label: str = ""
) -> str:
    """Plain-ASCII line chart (loss curves in bench output)."""
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(values)
    for i, v in enumerate(values):
        x = int(i * (width - 1) / max(n - 1, 1))
        y = int((hi - v) / span * (height - 1))
        grid[y][x] = "*"
    lines: List[str] = []
    for r, row in enumerate(grid):
        edge = "{:>10.4f} |".format(hi - r * span / (height - 1)) if r % 3 == 0 else "           |"
        lines.append(edge + "".join(row))
    lines.append("           +" + "-" * width)
    if label:
        lines.append("            " + label)
    return "\n".join(lines)


def _find_key(results: Dict[str, TrainingResult], reference: str):
    for key in results:
        if key.lower() == reference.lower():
            return key
    return None
