"""ASCII Gantt rendering of one BSP iteration's worker timeline.

Feeds on :attr:`ColumnSGDDriver.last_worker_seconds`: per-worker task
times of the statistics and update phases, plus the master's
gather/reduce/broadcast interlude.  The rendering makes straggler and
backup dynamics visible at a glance::

    worker 0 |############|--------|############|
    worker 1 |############|--------|############|
    worker 2 |############################################################| (straggler, killed)
    worker 3 |############|--------|############|
              computeStats  master   updateModel

``#`` = worker busy, ``-`` = waiting on the master interlude, blank =
killed / not participating.

:func:`render_engine_trace` is the engine-era complement: it draws the
per-phase lanes of a :class:`~repro.engine.trace.EngineTrace`
(``cluster.engine_trace``), making declared comm/compute overlap
visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.utils.format import format_duration


def render_iteration_gantt(
    worker_seconds: Dict[str, Dict[int, float]],
    phase_seconds: Dict[str, float],
    killed: Set[int] = frozenset(),
    width: int = 72,
) -> str:
    """Render one iteration as a fixed-width ASCII Gantt chart.

    Parameters
    ----------
    worker_seconds:
        ``{'compute_statistics': {worker: seconds}, 'update_model': ...}``
        (the driver's ``last_worker_seconds``).  ``inf`` entries (failed
        workers) render as an empty lane.
    phase_seconds:
        The driver's ``last_phase_seconds`` (for the master interlude and
        the phase boundaries).
    killed:
        Workers killed after statistics recovery (backup computation) —
        their lane stops at their own statistics finish time.
    """
    stats = worker_seconds.get("compute_statistics", {})
    updates = worker_seconds.get("update_model", {})
    finite_stats = {w: s for w, s in stats.items() if s != float("inf")}
    if not finite_stats:
        return "(no live workers)"
    interlude = (
        phase_seconds.get("gather", 0.0)
        + phase_seconds.get("reduce", 0.0)
        + phase_seconds.get("broadcast", 0.0)
    )
    # With backup computation the statistics phase ends at recovery time
    # (first finisher per group), not at the straggler's finish — use the
    # driver's actual phase length, falling back to the slowest worker.
    phase1_end = phase_seconds.get(
        "compute_statistics", max(finite_stats.values())
    )
    duration = phase1_end + interlude + (max(updates.values()) if updates else 0.0)
    if duration <= 0:
        return "(zero-length iteration)"
    # killed stragglers may have run past the iteration end before the
    # master killed them; scale so their bar still fits the width
    total = max([duration] + [finite_stats[w] for w in killed if w in finite_stats])
    scale = (width - 1) / total

    def bar(length: float) -> int:
        return max(1, int(round(length * scale)))

    lines: List[str] = []
    for worker in sorted(stats):
        if stats[worker] == float("inf"):
            lines.append("worker {:>2} | (failed)".format(worker))
            continue
        segments = "#" * bar(stats[worker])
        if worker in killed:
            label = "  <- straggler, killed after recovery"
            lines.append("worker {:>2} |{}{}".format(worker, segments, label))
            continue
        # idle until the slowest statistics task + master interlude end
        idle = (phase1_end - stats[worker]) + interlude
        segments += "-" * bar(idle) if idle > 0 else ""
        if worker in updates:
            segments += "#" * bar(updates[worker])
        lines.append("worker {:>2} |{}".format(worker, segments))
    lines.append(
        "legend: # busy, - waiting (slowest peer + master "
        "gather/reduce/broadcast); iteration = {}".format(format_duration(duration))
    )
    return "\n".join(lines)


#: one-character bar fill per phase category
_CATEGORY_FILL = {"compute": "#", "comm": "=", "master": "*"}


def fault_timeline(trace) -> str:
    """Summarize every retry/recovery episode of a run, one line each.

    The run-level complement of :func:`render_engine_trace`'s per-round
    annotations — ``bench_fig13`` prints it to show where the fault
    pipeline intervened and what each episode cost.
    """
    if trace is None or (not trace.retries and not trace.recoveries):
        return "(no fault episodes)"
    lines: List[str] = []
    for retry in trace.retries:
        lines.append(
            "round {:>3}  retry   attempt {} suspects {} deadline {} -> {}".format(
                retry.round,
                retry.attempt,
                list(retry.suspects),
                format_duration(retry.deadline_s),
                retry.resolved,
            )
        )
    for recovery in trace.recoveries:
        who = (
            "{} worker {}".format(recovery.kind, recovery.worker)
            if recovery.worker is not None
            else recovery.kind
        )
        lines.append(
            "round {:>3}  recover {} ({}) detect {} reload {} replay {} total {}".format(
                recovery.round,
                who,
                recovery.mode,
                format_duration(recovery.detect_s),
                format_duration(recovery.reload_s),
                format_duration(recovery.replay_s),
                format_duration(recovery.total_s),
            )
        )
    return "\n".join(sorted(lines))


def render_engine_trace(
    trace,
    round_index: Optional[int] = None,
    width: int = 72,
) -> str:
    """Render one round of an :class:`~repro.engine.trace.EngineTrace`.

    Each phase gets its own lane positioned at its scheduled
    ``[start, end)`` offset within the round, so comm/compute overlap
    (phases with ``after=()``) is visible as horizontally overlapping
    bars::

        round 0 (ColumnSGD, 14.2 ms)
        compute_statistics compute |########                    |
        gather             comm    |        ====                |
        ...

    Parameters
    ----------
    trace:
        The ``cluster.engine_trace`` left behind by an engine run.
    round_index:
        Which round to draw; defaults to the last round in the trace.
    """
    if trace is None or not len(trace):
        return "(no engine trace; run a round first)"
    rounds = trace.rounds()
    if round_index is None:
        round_index = rounds[-1]
    events = trace.round_events(round_index)
    if not events:
        return "(round {} not in trace; have {})".format(round_index, rounds)
    span = max(event.end for event in events)
    name_width = max(len(event.phase) for event in events)
    label_width = name_width + 1 + max(len(c) for c in _CATEGORY_FILL)
    bar_width = max(8, width - label_width - 3)
    scale = (bar_width / span) if span > 0 else 0.0

    lines = [
        "round {} ({}, {})".format(
            round_index, trace.system, format_duration(span)
        )
    ]
    for event in events:
        lead = int(round(event.start * scale))
        fill = _CATEGORY_FILL.get(event.category, "?")
        length = max(1, int(round(event.duration * scale))) if scale else 1
        lead = min(lead, bar_width - length)
        bar = " " * lead + fill * length
        label = "{:<{}} {:<7}".format(event.phase, name_width, event.category)
        kind = " ({})".format(event.kind) if event.kind else ""
        lines.append(
            "{}|{:<{}}|{}".format(label, bar, bar_width, kind)
        )
    for retry in trace.round_retries(round_index):
        lines.append(
            "  ! retry attempt {}: suspects {} at deadline {} -> {}".format(
                retry.attempt,
                list(retry.suspects),
                format_duration(retry.deadline_s),
                retry.resolved,
            )
        )
    for recovery in trace.round_recoveries(round_index):
        who = (
            "{} worker {}".format(recovery.kind, recovery.worker)
            if recovery.worker is not None
            else recovery.kind
        )
        lines.append(
            "  ! {} via {}: detect {} + reload {} + replay {} = {}".format(
                who,
                recovery.mode,
                format_duration(recovery.detect_s),
                format_duration(recovery.reload_s),
                format_duration(recovery.replay_s),
                format_duration(recovery.total_s),
            )
        )
    lines.append(
        "legend: # compute, = comm, * master; offsets are round-relative"
    )
    return "\n".join(lines)
