"""ASCII Gantt rendering of one BSP iteration's worker timeline.

Feeds on :attr:`ColumnSGDDriver.last_worker_seconds`: per-worker task
times of the statistics and update phases, plus the master's
gather/reduce/broadcast interlude.  The rendering makes straggler and
backup dynamics visible at a glance::

    worker 0 |############|--------|############|
    worker 1 |############|--------|############|
    worker 2 |############################################################| (straggler, killed)
    worker 3 |############|--------|############|
              computeStats  master   updateModel

``#`` = worker busy, ``-`` = waiting on the master interlude, blank =
killed / not participating.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.utils.format import format_duration


def render_iteration_gantt(
    worker_seconds: Dict[str, Dict[int, float]],
    phase_seconds: Dict[str, float],
    killed: Set[int] = frozenset(),
    width: int = 72,
) -> str:
    """Render one iteration as a fixed-width ASCII Gantt chart.

    Parameters
    ----------
    worker_seconds:
        ``{'compute_statistics': {worker: seconds}, 'update_model': ...}``
        (the driver's ``last_worker_seconds``).  ``inf`` entries (failed
        workers) render as an empty lane.
    phase_seconds:
        The driver's ``last_phase_seconds`` (for the master interlude and
        the phase boundaries).
    killed:
        Workers killed after statistics recovery (backup computation) —
        their lane stops at their own statistics finish time.
    """
    stats = worker_seconds.get("compute_statistics", {})
    updates = worker_seconds.get("update_model", {})
    finite_stats = {w: s for w, s in stats.items() if s != float("inf")}
    if not finite_stats:
        return "(no live workers)"
    interlude = (
        phase_seconds.get("gather", 0.0)
        + phase_seconds.get("reduce", 0.0)
        + phase_seconds.get("broadcast", 0.0)
    )
    # With backup computation the statistics phase ends at recovery time
    # (first finisher per group), not at the straggler's finish — use the
    # driver's actual phase length, falling back to the slowest worker.
    phase1_end = phase_seconds.get(
        "compute_statistics", max(finite_stats.values())
    )
    duration = phase1_end + interlude + (max(updates.values()) if updates else 0.0)
    if duration <= 0:
        return "(zero-length iteration)"
    # killed stragglers may have run past the iteration end before the
    # master killed them; scale so their bar still fits the width
    total = max([duration] + [finite_stats[w] for w in killed if w in finite_stats])
    scale = (width - 1) / total

    def bar(length: float) -> int:
        return max(1, int(round(length * scale)))

    lines: List[str] = []
    for worker in sorted(stats):
        if stats[worker] == float("inf"):
            lines.append("worker {:>2} | (failed)".format(worker))
            continue
        segments = "#" * bar(stats[worker])
        if worker in killed:
            label = "  <- straggler, killed after recovery"
            lines.append("worker {:>2} |{}{}".format(worker, segments, label))
            continue
        # idle until the slowest statistics task + master interlude end
        idle = (phase1_end - stats[worker]) + interlude
        segments += "-" * bar(idle) if idle > 0 else ""
        if worker in updates:
            segments += "#" * bar(updates[worker])
        lines.append("worker {:>2} |{}".format(worker, segments))
    lines.append(
        "legend: # busy, - waiting (slowest peer + master "
        "gather/reduce/broadcast); iteration = {}".format(format_duration(duration))
    )
    return "\n".join(lines)
