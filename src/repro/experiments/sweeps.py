"""Parameter sweeps over the uniform trainer interface.

Small helpers the ablation benches (and users exploring the design
space) share: run one system across a grid of one knob and collect
(value -> TrainingResult) maps.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.core.results import TrainingResult
from repro.datasets.dataset import Dataset
from repro.experiments.runner import ExperimentSpec, run_system


def sweep(
    spec: ExperimentSpec,
    system: str,
    values: Iterable,
    apply: Callable[[ExperimentSpec, object], ExperimentSpec],
    data: Optional[Dataset] = None,
) -> Dict[object, TrainingResult]:
    """Generic sweep: for each value, derive a spec and run ``system``.

    ``apply(spec, value)`` must return a *new* spec (specs are mutable
    dataclasses; copy before editing).  The same dataset is reused
    across the sweep unless a value changes what data means.
    """
    data = data if data is not None else spec.materialize_data()
    results: Dict[object, TrainingResult] = {}
    for value in values:
        results[value] = run_system(apply(spec, value), system, data)
    return results


def _copy(spec: ExperimentSpec, **overrides) -> ExperimentSpec:
    from dataclasses import replace

    return replace(spec, **overrides)


def sweep_batch_sizes(
    spec: ExperimentSpec, system: str, batch_sizes: List[int], data: Optional[Dataset] = None
) -> Dict[int, TrainingResult]:
    """Fig 4 style: same data and budget, varying batch size."""
    return sweep(
        spec, system, batch_sizes,
        lambda s, b: _copy(s, batch_size=int(b)),
        data=data,
    )


def sweep_workers(
    spec: ExperimentSpec, system: str, worker_counts: List[int], data: Optional[Dataset] = None
) -> Dict[int, TrainingResult]:
    """Fig 11 style: same workload across cluster widths."""
    return sweep(
        spec, system, worker_counts,
        lambda s, k: _copy(s, cluster=s.cluster.with_workers(int(k))),
        data=data,
    )


def sweep_learning_rates(
    spec: ExperimentSpec, system: str, rates: List[float], data: Optional[Dataset] = None
) -> Dict[float, TrainingResult]:
    """Grid search in the paper's Table III spirit."""
    return sweep(
        spec, system, rates,
        lambda s, lr: _copy(s, learning_rate=float(lr)),
        data=data,
    )


def best_learning_rate(
    spec: ExperimentSpec, system: str, rates: List[float], data: Optional[Dataset] = None
) -> float:
    """The rate with the lowest final training loss (ties: first)."""
    results = sweep_learning_rates(spec, system, rates, data=data)
    finite = {
        lr: r.final_loss()
        for lr, r in results.items()
        if r.final_loss() is not None
    }
    if not finite:
        raise ValueError("no sweep run evaluated a loss; set eval_every > 0")
    return min(finite, key=finite.get)
