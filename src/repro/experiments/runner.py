"""Uniform experiment runners over the five systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.registry import make_trainer
from repro.core.results import TrainingResult
from repro.datasets.dataset import Dataset
from repro.datasets.profiles import load_profile
from repro.models.registry import make_model
from repro.optim.registry import make_optimizer
from repro.sim.cluster import CLUSTER1, ClusterSpec, SimulatedCluster
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class ExperimentSpec:
    """One (dataset, model, systems) experiment configuration.

    ``dataset`` may be a profile name (synthetic stand-in generated at
    its scaled size) or an explicit :class:`Dataset` via
    ``explicit_data``.  The learning rate defaults to the profile's
    Table III entry.
    """

    dataset: str
    model: str = "lr"
    systems: List[str] = field(
        default_factory=lambda: ["columnsgd", "mllib", "mllib*", "petuum", "mxnet"]
    )
    batch_size: int = 1000
    iterations: int = 100
    eval_every: int = 10
    learning_rate: Optional[float] = None
    optimizer: str = "sgd"
    cluster: ClusterSpec = CLUSTER1
    seed: int = 0
    model_kwargs: Dict = field(default_factory=dict)
    explicit_data: Optional[Dataset] = None

    def __post_init__(self):
        check_positive(self.batch_size, "batch_size")
        check_positive(self.iterations, "iterations")
        check_non_negative(self.eval_every, "eval_every")
        check_non_negative(self.seed, "seed")

    def materialize_data(self) -> Dataset:
        """The dataset to train on (explicit or generated from profile)."""
        if self.explicit_data is not None:
            return self.explicit_data
        return load_profile(self.dataset).generate(seed=self.seed)

    def resolve_learning_rate(self) -> float:
        """Explicit rate, or the profile's Table III entry."""
        if self.learning_rate is not None:
            return self.learning_rate
        return load_profile(self.dataset).learning_rate(self.model)


def run_system(spec: ExperimentSpec, system: str, data: Optional[Dataset] = None) -> TrainingResult:
    """Run one system under ``spec`` on a fresh simulated cluster."""
    data = data if data is not None else spec.materialize_data()
    model = make_model(spec.model, **spec.model_kwargs)
    optimizer = make_optimizer(spec.optimizer, spec.resolve_learning_rate())
    cluster = SimulatedCluster(spec.cluster)
    trainer = make_trainer(
        system,
        model,
        optimizer,
        cluster,
        batch_size=spec.batch_size,
        iterations=spec.iterations,
        eval_every=spec.eval_every,
        seed=spec.seed,
    )
    trainer.load(data)
    return trainer.fit()


def run_comparison(spec: ExperimentSpec) -> Dict[str, TrainingResult]:
    """Run every system in ``spec.systems`` on the same data."""
    data = spec.materialize_data()
    return {system: run_system(spec, system, data) for system in spec.systems}


def per_iteration_seconds(spec: ExperimentSpec, system: str, data: Optional[Dataset] = None) -> float:
    """Average simulated per-iteration time (Table IV/V metric)."""
    return run_system(spec, system, data).avg_iteration_seconds()
