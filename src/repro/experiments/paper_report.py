"""Consolidated reproduction report.

Benchmarks drop one text block per artifact into
``benchmarks/results/``; this module stitches them into a single
ordered report (paper artifacts first, ablations after) so a reviewer
reads the whole reproduction top to bottom.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

#: Preferred ordering: the paper's artifacts in paper order, then extras.
ARTIFACT_ORDER = [
    "table1_paper_scale",
    "table1_validation",
    "table2_paper",
    "table2_scaled",
    "table3_learning_rates",
    "fig4a_convergence_vs_batch",
    "fig4b_time_vs_batch",
    "fig7_data_loading",
    "fig8_avazu_lr",
    "fig8_avazu_svm",
    "fig8_kddb_lr",
    "fig8_kddb_svm",
    "fig8_kdd12_lr",
    "fig8_kdd12_svm",
    "table4_analytic_paper_scale",
    "table4_simulated_scaled",
    "table5_fm_analytic",
    "table5_oom_demo",
    "fig9_stragglers",
    "fig9_gantt",
    "fig10_model_size",
    "fig11_cluster_size",
    "fig13_fault_tolerance",
    "fig13_ft_asymmetry",
]


def collect_results(results_dir) -> List[Path]:
    """Result files in report order (known artifacts first, then the
    rest alphabetically)."""
    results_dir = Path(str(results_dir))
    if not results_dir.is_dir():
        return []
    available = {p.stem: p for p in results_dir.glob("*.txt")}
    ordered = [available.pop(name) for name in ARTIFACT_ORDER if name in available]
    ordered.extend(available[name] for name in sorted(available))
    return ordered


def build_report(results_dir, title: str = "ColumnSGD reproduction report") -> str:
    """Concatenate all result blocks under one header."""
    parts = [title, "=" * len(title), ""]
    files = collect_results(results_dir)
    if not files:
        parts.append(
            "(no results found — run `pytest benchmarks/ --benchmark-only` first)"
        )
    for path in files:
        parts.append(path.read_text().strip())
        parts.append("")
    return "\n".join(parts)


def write_report(results_dir, output: Optional[str] = None) -> str:
    """Build the report and optionally persist it; returns the text."""
    text = build_report(results_dir)
    if output:
        Path(str(output)).write_text(text)
    return text
