"""Uniform trainer factory over all five systems (incl. ColumnSGD)."""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import RowSGDConfig
from repro.baselines.mllib import MLlibTrainer
from repro.baselines.mllib_star import MLlibStarTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.sparse_ps import SparsePSTrainer
from repro.baselines.ssp import StaleSyncPSTrainer
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.models.base import StatisticsModel
from repro.optim.base import Optimizer
from repro.sim.cluster import SimulatedCluster

TRAINER_REGISTRY: Dict[str, type] = {
    "mllib": MLlibTrainer,
    "mllib*": MLlibStarTrainer,
    "petuum": ParameterServerTrainer,
    "mxnet": SparsePSTrainer,
    "petuum-ssp": StaleSyncPSTrainer,
    "columnsgd": ColumnSGDDriver,
}


def make_trainer(
    name: str,
    model: StatisticsModel,
    optimizer: Optimizer,
    cluster: SimulatedCluster,
    batch_size: int = 1000,
    iterations: int = 100,
    eval_every: int = 10,
    seed: int = 0,
    **extra,
):
    """Build any of the five evaluated systems with uniform arguments.

    All returned trainers share the same interface: ``load(dataset)``
    then ``fit()`` (or ``fit(dataset)``), returning a
    :class:`~repro.core.results.TrainingResult`.
    """
    key = name.lower()
    if key not in TRAINER_REGISTRY:
        raise KeyError(
            "unknown system {!r}; available: {}".format(name, sorted(TRAINER_REGISTRY))
        )
    # fault/recovery plans are trainer arguments, not config fields
    failures = extra.pop("failures", None)
    recovery = extra.pop("recovery", None)
    if recovery is not None and key != "columnsgd":
        raise ValueError("recovery policies apply to the columnsgd driver only")
    if key == "columnsgd":
        config = ColumnSGDConfig(
            batch_size=batch_size,
            iterations=iterations,
            eval_every=eval_every,
            seed=seed,
            **extra,
        )
        return ColumnSGDDriver(
            model, optimizer, cluster, config=config,
            failures=failures, recovery=recovery,
        )
    config = RowSGDConfig(
        batch_size=batch_size,
        iterations=iterations,
        eval_every=eval_every,
        seed=seed,
        **{
            k: v
            for k, v in extra.items()
            if k in (
                "repartition", "backend", "local_processes",
                "local_timeout_s", "check_protocol",
            )
        },
    )
    kwargs = {k: v for k, v in extra.items() if k in ("n_servers", "local_steps", "staleness")}
    if failures is not None:
        kwargs["failures"] = failures
    return TRAINER_REGISTRY[key](model, optimizer, cluster, config=config, **kwargs)
