"""RowSGD (MLlib) on the local multiprocess backend.

Algorithm 2 with one real process per logical worker: the master ships
the full dense model (codec-encoded, ``MODEL_PULL``), each worker
samples its shard-local batch deterministically (the same
``(seed, iteration, worker)`` routing as
:func:`~repro.partition.row.sample_shard_batch`), computes its *sum*
gradient, and pushes it back (``GRADIENT_PUSH``).  The master sums
contributions in worker order, adds the regularizer once, and steps the
optimizer — floating-point-identical to the simulated trainer, which
runs the same code in-process.

Fault tolerance is the easy case of the pipeline in
``repro.core.localexec``: RowSGD workers are *stateless* with respect
to the model (it lives at the master; a shard is just data the master
still holds), so recovering a SIGKILLed process is respawn + nothing —
recorded as a ``mode='reload'`` :class:`~repro.engine.trace.RecoveryEvent`
— and the gradient op is a pure function of ``(model payload, t, w)``
so the re-issued exchange is numerically exact.  Stalled workers are
absorbed by the deadline/retry transport; workers silent past every
deadline raise :class:`~repro.errors.WorkerUnresponsiveError` (MLlib's
plain BSP barrier has no stale-statistics substitute).

Only the MLlib baseline is ported: it is the paper's Table-IV
comparison point, and its model lives at the master so evaluation needs
no parameter sync.  The other baselines (parameter servers, SSP,
model averaging) remain simulator-only and say so loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.results import TrainingResult
from repro.datasets.dataset import Dataset
from repro.engine import EngineTrace, PhaseEvent, RoundOutcome, run_training_loop
from repro.engine.trace import RecoveryEvent
from repro.errors import (
    ConfigurationError,
    TrainingError,
    WorkerUnresponsiveError,
)
from repro.models.base import StatisticsModel
from repro.net.message import MessageKind
from repro.net.protocol import ProtocolChecker, TrafficEnvelope
from repro.partition.row import sample_shard_batch
from repro.runtime.chaos import LocalChaos
from repro.runtime.deadline import TimeoutPolicy
from repro.runtime.local import LocalRuntime, WorkerReply
from repro.storage.serialization import (
    OBJECT_OVERHEAD_BYTES,
    DenseVectorPayload,
    decode_payload,
    encode_payload,
)

#: phase order of one local RowSGD round (pull and push share the
#: exchange's transport time evenly — the command and the reply ride
#: the same round-trip, so the split is a rendering convention)
_PHASES = ("pull", "compute_gradients", "push", "center_update")

#: bounded death-recovery attempts per exchange before escalating
_MAX_RECOVERY_ROUNDS = 3


@dataclass
class RowWorkerProgram:
    """One RowSGD worker: a horizontal shard + deterministic sampling."""

    model: StatisticsModel
    shard: Dataset
    worker: int
    n_workers: int
    base_seed: int
    batch_size: int

    def handle(self, op: str, args: dict, payload: Optional[bytes]):
        if op == "gradient":
            params = decode_payload(payload).values.reshape(args["shape"])
            local = sample_shard_batch(
                self.shard,
                base_seed=self.base_seed,
                iteration=int(args["t"]),
                batch_size=self.batch_size,
                worker=self.worker,
                n_workers=self.n_workers,
            )
            if local.n_rows:
                stats = self.model.compute_statistics(local.features, params)
                # Zero params contribute no regularization gradient (the
                # penalty is added once at the master), mirroring the
                # simulated trainer's convention.
                mean_grad = self.model.gradient_from_statistics(
                    local.features, local.labels, stats, np.zeros_like(params)
                )
                contribution = mean_grad * local.n_rows
            else:
                contribution = np.zeros_like(params)
            encoded = encode_payload(DenseVectorPayload(contribution))
            return {
                "n_rows": int(local.n_rows),
                "nnz": int(local.nnz),
                "shape": list(contribution.shape),
            }, encoded
        raise ValueError("unknown op {!r}".format(op))


def run_local_rowsgd(
    trainer,
    iterations: int,
    result: TrainingResult,
    runtime: Optional[LocalRuntime] = None,
) -> TrainingResult:
    """Drive ``iterations`` real multiprocess MLlib rounds.

    Called by :meth:`~repro.baselines.base.BaselineTrainer.fit` when the
    config says ``backend='local'``.
    """
    from repro.baselines.mllib import MLlibTrainer

    if not isinstance(trainer, MLlibTrainer):
        raise ConfigurationError(
            "backend='local' is implemented for the MLlib baseline only; "
            "{} is simulator-only".format(type(trainer).__name__)
        )
    if getattr(trainer.config, "store_dir", ""):
        raise ConfigurationError(
            "store_dir holds a *column*-shard store; the row-oriented "
            "MLlib baseline cannot read it — use the ColumnSGD driver "
            "or drop store_dir"
        )
    chaos = trainer.failures if isinstance(trainer.failures, LocalChaos) else None
    if chaos is None and trainer.failures.any_scheduled():
        raise ConfigurationError(
            "backend='local' runs real processes; simulated failure "
            "injection cannot reach them — pass a repro.runtime.LocalChaos "
            "plan for real faults, or use backend='sim'"
        )
    config = trainer.config
    K = trainer.cluster.n_workers

    def program_for(w: int) -> RowWorkerProgram:
        return RowWorkerProgram(
            model=trainer.model,
            shard=trainer._partitioner.shard(w),
            worker=w,
            n_workers=K,
            base_seed=config.seed,
            batch_size=config.batch_size,
        )

    owns_runtime = runtime is None
    if owns_runtime:
        runtime = LocalRuntime(
            K,
            processes=config.local_processes,
            timeout=TimeoutPolicy(floor_s=config.local_timeout_s),
        )
        runtime.start({w: program_for(w) for w in range(K)})
    trainer.local_runtime = runtime
    # Continue the recorded time axis: load() charged simulated seconds
    # to the cluster clock and the initial eval record carries that
    # offset, so measured rounds must accumulate on top of it.
    runtime.clock.reset(trainer.cluster.clock.now())

    trace = EngineTrace(system=result.system)
    runtime.engine_trace = trace
    trainer.cluster.engine_trace = trace
    checker = ProtocolChecker(runtime) if config.check_protocol else None

    def gradient_exchange(
        t: int,
        args: dict,
        payload: bytes,
        stall_args: Optional[Dict[int, dict]],
    ):
        """The gather, surviving worker-process death by respawn.

        Nothing to restore: the model rides in ``payload`` and the shard
        is rebuilt from the master's copy, so a recovered worker is
        whole the moment it forks (``mode='reload'``)."""
        replies: Dict[int, WorkerReply] = {}
        seconds = 0.0
        retries = 0
        targets = list(range(K))
        extra = stall_args
        failures: Dict[int, object] = {}
        for _ in range(_MAX_RECOVERY_ROUNDS):
            ex = runtime.run_all(
                "gradient",
                args=args,
                payload=payload,
                per_worker_args=extra,
                workers=targets,
                iteration=t,
                raise_on_fault=False,
            )
            replies.update(ex.replies)
            seconds += ex.seconds
            retries += ex.retries
            failures = dict(ex.failures)
            dead = runtime.dead_workers()
            if not ex.dead_workers():
                break
            respawn_s = runtime.respawn({w: program_for(w) for w in dead})
            seconds += respawn_s
            detect = ex.seconds
            for w in dead:
                trace.add_recovery(
                    RecoveryEvent(
                        round=t,
                        kind="worker",
                        mode="reload",
                        worker=w,
                        detect_s=detect,
                        reload_s=respawn_s / len(dead),
                    )
                )
                detect = 0.0
            targets = sorted(failures)
            extra = None  # injected straggler delays apply once
        else:
            raise WorkerUnresponsiveError(
                "gradient",
                dead=runtime.dead_workers(),
                silent=sorted(failures),
            )
        if failures:
            raise WorkerUnresponsiveError("gradient", silent=sorted(failures))
        return replies, seconds, retries

    def run_round(t: int) -> RoundOutcome:
        round_start = runtime.clock.now()
        stall_args = (
            runtime.inject_faults(chaos.events_at(t)) or None
            if chaos is not None
            else None
        )
        model_payload = encode_payload(DenseVectorPayload(trainer._params))
        shape = list(trainer._params.shape)
        replies, exchange_s, retries = gradient_exchange(
            t, {"t": t, "shape": shape}, model_payload, stall_args
        )
        runtime.broadcast(MessageKind.MODEL_PULL, len(model_payload))
        sizes = [len(replies[w].payload) for w in range(K)]
        runtime.gather(MessageKind.GRADIENT_PUSH, sizes)

        def center_update() -> None:
            grad_sum = np.zeros_like(trainer._params)
            batch_rows = 0
            for w in range(K):
                reply = replies[w]
                grad_sum += decode_payload(reply.payload).values.reshape(shape)
                batch_rows += reply.result["n_rows"]
            if batch_rows == 0:
                raise TrainingError("empty global batch")
            gradient = grad_sum / batch_rows + trainer.model.regularizer.gradient(
                trainer._params
            )
            trainer.optimizer.step(trainer._params, gradient, t)

        _, update_s = runtime.measure(center_update)
        compute_s = max((r.seconds for r in replies.values()), default=0.0)
        comm_s = max(0.0, exchange_s - compute_s)
        phase_seconds = {
            "pull": comm_s / 2.0,
            "compute_gradients": compute_s,
            "push": comm_s / 2.0,
            "center_update": update_s,
        }
        _trace_round(trace, t, round_start, phase_seconds)
        worker_seconds = {
            "compute_gradients": {w: r.seconds for w, r in replies.items()}
        }
        expected = {
            MessageKind.MODEL_PULL: (K, K * len(model_payload)),
            MessageKind.GRADIENT_PUSH: (K, sum(sizes)),
        }
        if retries:
            frame = OBJECT_OVERHEAD_BYTES + max(sizes + [len(model_payload)])
            expected[MessageKind.RETRY] = TrafficEnvelope(
                retries, 2 * retries, 0, 2 * retries * frame
            )
        return RoundOutcome(
            duration=exchange_s + update_s,
            phase_seconds=phase_seconds,
            worker_seconds=worker_seconds,
            chosen=set(range(K)),
            expected=expected,
        )

    try:
        run_training_loop(
            cluster=runtime,
            run_round=run_round,
            iterations=iterations,
            eval_every=config.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: trainer._record(
                result, t, duration, bytes_sent, evaluate,
                now=runtime.clock.now(),
            ),
            checker=checker,
        )
    finally:
        if owns_runtime:
            runtime.close()
    result.final_params = np.array(trainer._params, copy=True)
    return result


def _trace_round(trace, t, round_start, phase_seconds) -> None:
    offset = 0.0
    categories = {
        "pull": "comm",
        "compute_gradients": "compute",
        "push": "comm",
        "center_update": "master",
    }
    kinds = {
        "pull": MessageKind.MODEL_PULL.value,
        "push": MessageKind.GRADIENT_PUSH.value,
    }
    for name in _PHASES:
        seconds = phase_seconds[name]
        trace.add(
            PhaseEvent(
                round=t,
                phase=name,
                category=categories[name],
                start=offset,
                end=offset + seconds,
                sim_start=round_start + offset,
                sim_end=round_start + offset + seconds,
                kind=kinds.get(name),
            )
        )
        offset += seconds
