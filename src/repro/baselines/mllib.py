"""Spark MLlib baseline: single master, dense model traffic.

Every iteration the master ships the full dense model to each of the K
workers and aggregates K dense gradients back through its single NIC —
the ``2 K m`` communication of Table I that makes per-iteration time
linear in model size (Table IV's 55.8 s on kdd12).
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.base import BaselineTrainer
from repro.engine import CommPhase
from repro.net.message import MessageKind
from repro.storage.serialization import dense_vector_bytes


class MLlibTrainer(BaselineTrainer):
    """MLlib-style RowSGD (Algorithm 2 with a single master)."""

    def _system_name(self) -> str:
        return "MLlib"

    def _comm_phases(self) -> Tuple[CommPhase, ...]:
        # Table I, MLlib row: 2 K m dense traffic through the master.
        # The reads=/writes= declarations are checked against the
        # inferred effect sets by lint rule R013.
        return (
            CommPhase(
                "pull",
                kind=MessageKind.MODEL_PULL,
                pattern="broadcast",
                sizes="_model_pull_size",
                reads=("self.model_elements",),
                writes=(),
            ),
            CommPhase(
                "push",
                kind=MessageKind.GRADIENT_PUSH,
                pattern="gather",
                sizes="_gradient_push_sizes",
                reads=("self.cluster", "self.model_elements"),
                writes=(),
            ),
        )

    def _model_pull_size(self, ctx) -> int:
        return dense_vector_bytes(self.model_elements)

    def _gradient_push_sizes(self, ctx) -> list:
        model_bytes = dense_vector_bytes(self.model_elements)
        return [model_bytes] * self.cluster.n_workers

    def _center_update_seconds(self) -> float:
        # aggregate K gradients + apply the update, all dense on the master
        return self.cluster.cost.dense_work(2 * self.model_elements)

    def _charge_setup_memory(self) -> None:
        model_bytes = self.model_elements * 8
        # Table I master memory: the model plus the aggregation buffer.
        self.cluster.charge_memory(self.cluster.MASTER, 2 * model_bytes, "model+buffer")
        shard_bytes = self._dataset.nnz * 12 // self.cluster.n_workers
        for w in range(self.cluster.n_workers):
            # shard + pulled model + computed gradient
            self.cluster.charge_memory(w, shard_bytes + 2 * model_bytes, "shard+model")
