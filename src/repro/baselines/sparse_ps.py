"""MXNet-style parameter server: sparse pulls.

Like Petuum but workers pull only the coordinates their local batch
touches, so the pull volume scales with ``B/K * nnz_per_row`` instead of
``m``.  The per-iteration server-side dense scan remains — that is why
MXNet's per-iteration time still grows with model size in Table IV, and
why ColumnSGD overtakes it once models get large while losing to it on
small-model avazu.
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.parameter_server import ParameterServerTrainer
from repro.core.analysis import SPARSE_PAIR_BYTES
from repro.engine import CommPhase
from repro.net.message import MessageKind


class SparsePSTrainer(ParameterServerTrainer):
    """MXNet-style PS RowSGD (sparse pull + sparse push)."""

    def _system_name(self) -> str:
        return "MXNet"

    def _comm_phases(self) -> Tuple[CommPhase, ...]:
        # Table I, MXNet row: both directions scale with the batch's nnz.
        return (
            CommPhase(
                "pull",
                kind=MessageKind.MODEL_PULL,
                pattern="sharded_gather",
                sizes="_gradient_push_sizes",
                servers="n_servers",
            ),
            CommPhase(
                "push",
                kind=MessageKind.GRADIENT_PUSH,
                pattern="sharded_gather",
                sizes="_gradient_push_sizes",
                servers="n_servers",
            ),
        )

    def _charge_setup_memory(self) -> None:
        model_bytes = self.model_elements * 8
        # Same dense init at the driver as Petuum (KVStore init path);
        # workers only buffer the sparse rows they pull.
        self.cluster.charge_memory(self.cluster.MASTER, 2 * model_bytes, "dense model init")
        shard_bytes = self._dataset.nnz * 12 // self.cluster.n_workers
        ppf = self.model.params_per_feature()
        batch_buffer = int(
            2
            * (self.config.batch_size / self.cluster.n_workers)
            * max(self._dataset.nnz / max(self._dataset.n_rows, 1), 1.0)
            * ppf
            * SPARSE_PAIR_BYTES
        )
        server_shard = 2 * model_bytes // self.n_servers
        for w in range(self.cluster.n_workers):
            self.cluster.charge_memory(
                w, shard_bytes + batch_buffer + server_shard, "shard+buffers+server"
            )
