"""RowSGD baselines: the four systems the paper compares against.

All four re-implement the *communication pattern and model management*
of the original system on the same simulated cluster, sharing the exact
numerical kernels with ColumnSGD — so relative comparisons isolate the
partitioning strategy, which is the paper's analytical argument.

* :class:`MLlibTrainer` — Spark MLlib: one master holds the model; full
  dense model broadcast + dense gradient aggregation every iteration.
* :class:`MLlibStarTrainer` — MLlib* (Zhang et al., ICDE 2019): model
  averaging with an AllReduce; workers keep local model copies.
* :class:`ParameterServerTrainer` — Petuum-style PS: the model is
  sharded over S servers; workers pull *all* dimensions, push sparse
  gradients.
* :class:`SparsePSTrainer` — MXNet-style PS: like Petuum but workers
  pull only the coordinates their batch touches ("sparse pull").
"""

from repro.baselines.base import BaselineTrainer, RowSGDConfig
from repro.baselines.mllib import MLlibTrainer
from repro.baselines.mllib_star import MLlibStarTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.sparse_ps import SparsePSTrainer
from repro.baselines.ssp import StaleSyncPSTrainer
from repro.baselines.registry import make_trainer, TRAINER_REGISTRY

__all__ = [
    "BaselineTrainer",
    "RowSGDConfig",
    "MLlibTrainer",
    "MLlibStarTrainer",
    "ParameterServerTrainer",
    "SparsePSTrainer",
    "StaleSyncPSTrainer",
    "make_trainer",
    "TRAINER_REGISTRY",
]
