"""Shared machinery of the RowSGD baselines.

The trainers differ only in who stores the model and what crosses the
network; the numerical loop (Algorithm 2) is shared here: workers sample
``B/K`` rows from their horizontal shards, compute *sum* gradients
against the current model, the center aggregates to the mean batch
gradient, adds the regularization gradient once, and steps the
optimizer.  With the same batch, every baseline's trajectory matches
single-machine SGD exactly — the differences the paper measures are in
time and memory, not math.

Each subclass declares its communication as :class:`CommPhase` entries
(:meth:`_comm_phases`); the shared :meth:`round_spec` wraps them
between the compute and center-update phases and
:class:`~repro.engine.RoundEngine` runs the round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.results import IterationRecord, TrainingResult
from repro.datasets.dataset import Dataset
from repro.engine import (
    BarrierSync,
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    run_training_loop,
)
from repro.errors import TrainingError
from repro.linalg import CSRMatrix
from repro.models.base import StatisticsModel
from repro.optim.base import Optimizer
from repro.errors import MasterFailedError
from repro.net.protocol import ProtocolChecker
from repro.partition.dispatch import load_row_partitioned
from repro.partition.row import RowPartitioner
from repro.sim.cluster import SimulatedCluster
from repro.sim.failures import FailureInjector, FailureKind
from repro.sim.straggler import StragglerModel
from repro.runtime.base import BACKENDS
from repro.utils.validation import check_in, check_non_negative, check_positive


@dataclass(frozen=True)
class RowSGDConfig:
    """Hyper-parameters shared by all RowSGD baselines."""

    batch_size: int = 1000
    iterations: int = 100
    eval_every: int = 10
    seed: int = 0
    repartition: bool = False  # MLlib-Repartition loading for Fig 7
    check_protocol: bool = False  # verify BSP invariants every round
                                  # (see repro.net.protocol)
    check_effects: bool = False   # record per-phase attribute accesses
                                  # and fail on DAG-unordered conflicts
                                  # (see repro.engine.effects)
    check_cost: bool = False      # audit measured kernel work against
                                  # sparse_work/dense_work charges each
                                  # round (see repro.engine.cost_audit)
    backend: str = "sim"          # 'sim' or 'local' (real worker
                                  # processes, wall-clock rounds; MLlib
                                  # only — see docs/runtime.md)
    local_processes: int = 0      # OS processes hosting the K logical
                                  # workers on the local backend
                                  # (0 = one process per worker)
    local_timeout_s: float = 30.0  # deadline floor for local-backend
                                   # exchanges (alpha x median rule, see
                                   # repro.runtime.deadline)

    def __post_init__(self):
        check_positive(self.batch_size, "batch_size")
        check_positive(self.iterations, "iterations")
        check_non_negative(self.eval_every, "eval_every")
        check_non_negative(self.seed, "seed")
        check_in(self.backend, BACKENDS, "backend")
        check_non_negative(self.local_processes, "local_processes")
        check_positive(self.local_timeout_s, "local_timeout_s")
        if self.backend == "local" and (self.check_effects or self.check_cost):
            raise ValueError(
                "check_effects/check_cost audit the simulated engine; "
                "they are unavailable on backend='local'"
            )


class BaselineTrainer:
    """Template for the centralized RowSGD systems (Algorithm 2).

    Subclasses define :meth:`_system_name`, their per-iteration
    communication declarations (:meth:`_comm_phases`) and setup memory
    charges (:meth:`_charge_setup_memory`).  MLlib* overrides the whole
    :meth:`round_spec` because model averaging changes the math.
    """

    def __init__(
        self,
        model: StatisticsModel,
        optimizer: Optimizer,
        cluster: SimulatedCluster,
        config: Optional[RowSGDConfig] = None,
        straggler: Optional[StragglerModel] = None,
        failures: Optional[FailureInjector] = None,
    ):
        self.model = model
        self.optimizer = optimizer.spawn()
        self.cluster = cluster
        self.config = config if config is not None else RowSGDConfig()
        self.straggler = (
            straggler if straggler is not None else StragglerModel.none(cluster.n_workers)
        )
        self.failures = failures if failures is not None else FailureInjector.none()
        if hasattr(self.failures, "attach"):
            self.failures.attach(cluster)  # ChaosSchedule needs the clock
        if hasattr(self.failures, "validate"):
            self.failures.validate(cluster.n_workers)
        self._dataset: Optional[Dataset] = None
        self._partitioner: Optional[RowPartitioner] = None
        self._params: Optional[np.ndarray] = None
        self._engine: Optional[RoundEngine] = None
        self.load_report = None
        #: the LocalRuntime of the most recent backend='local' fit()
        self.local_runtime = None

    # ------------------------------------------------------------------
    def _system_name(self) -> str:
        raise NotImplementedError

    def _comm_phases(self) -> Tuple[CommPhase, ...]:
        """The subclass's per-iteration communication, as declarations."""
        raise NotImplementedError

    def _center_update_seconds(self) -> float:
        """Dense model-maintenance time at the master/servers."""
        raise NotImplementedError

    def _charge_setup_memory(self) -> None:
        raise NotImplementedError

    def round_spec(self) -> RoundSpec:
        """Algorithm 2 as a spec: compute sum gradients on every shard,
        run the subclass's declared communication, maintain the center."""
        return RoundSpec(
            system=self._system_name(),
            sync=BarrierSync(),
            phases=(
                ComputePhase(
                    "compute_gradients",
                    run="_phase_compute_gradients",
                    synchronized=True,
                ),
            )
            + tuple(self._comm_phases())
            + (MasterPhase("center_update", run="_phase_center_update"),),
        )

    # ------------------------------------------------------------------
    def load(self, dataset: Dataset):
        """Row-partition the data and initialise the central model."""
        self._dataset = dataset
        self._partitioner, self.load_report = load_row_partitioned(
            dataset,
            self.cluster,
            repartition=self.config.repartition,
            seed=self.config.seed,
        )
        self._params = self.model.init_params(dataset.n_features, seed=self.config.seed)
        self._charge_setup_memory()
        return self.load_report

    @property
    def model_elements(self) -> int:
        """Total scalars in the model (m * params_per_feature)."""
        if self._dataset is None:
            raise TrainingError("call load() first")
        return int(self._dataset.n_features * self.model.params_per_feature())

    # ------------------------------------------------------------------
    def fit(self, dataset: Optional[Dataset] = None, iterations: Optional[int] = None) -> TrainingResult:
        """Run Algorithm 2; returns the loss/time trace."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        iterations = iterations if iterations is not None else self.config.iterations
        check_positive(iterations, "iterations")

        result = TrainingResult(
            system=self._system_name(),
            model=self.model.name,
            dataset=self._dataset.name,
            batch_size=self.config.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.config.eval_every:
            self._record(result, -1, 0.0, 0, evaluate=True)

        if self.config.backend == "local":
            from repro.baselines.localexec import run_local_rowsgd

            return run_local_rowsgd(self, iterations, result)

        self._engine = RoundEngine(
            self, self.cluster, straggler=self.straggler,
            check_effects=self.config.check_effects,
            check_cost=self.config.check_cost,
        )
        checker = ProtocolChecker(self.cluster) if self.config.check_protocol else None
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=iterations,
            eval_every=self.config.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate
            ),
            handle_failures=self._handle_failures,
            checker=checker,
        )

        result.final_params = np.array(self._params, copy=True)
        return result

    # ------------------------------------------------------------------
    def run_round(self, t: int):
        """One engine round (used by fit(), benchmarks and tests);
        returns the :class:`~repro.engine.RoundOutcome`."""
        if self._engine is None:
            self._engine = RoundEngine(
                self, self.cluster, straggler=self.straggler,
                check_effects=self.config.check_effects,
                check_cost=self.config.check_cost,
            )
        return self._engine.run_round(t)

    # ------------------------------------------------------------------
    def _phase_compute_gradients(self, ctx) -> Dict[int, float]:
        """One Algorithm 2 compute phase: per-shard sum gradients."""
        width = self.model.statistics_width
        # RowSGD workers really hold a full dense model replica — the
        # O(d) footprint is the paper's argument against row-oriented
        # systems, and it is charged through the MODEL_PULL bytes and
        # the center's dense_work, not the worker gradient kernel.
        grad_sum = np.zeros_like(self._params)  # lint: noqa[R015,R016]
        per_worker: Dict[int, float] = {}
        batch_parts: List[Dataset] = []
        for w in range(self.cluster.n_workers):
            local = self._partitioner.sample_local_batch(
                ctx.t, self.config.batch_size, w
            )
            batch_parts.append(local)
            if local.n_rows:
                stats = self.model.compute_statistics(local.features, self._params)
                # Passing zeros as the params makes the per-shard call
                # contribute no regularization gradient (L1/L2/None all
                # vanish at 0); the penalty is added exactly once below.
                # The zero buffer is part of the same dense-replica cost
                # already accounted for above.
                mean_grad = self.model.gradient_from_statistics(
                    local.features, local.labels, stats, np.zeros_like(self._params)  # lint: noqa[R015,R016]
                )
                grad_sum += mean_grad * local.n_rows
            # StragglerLevel multiplies the whole task (launch + kernel),
            # matching the ColumnSGD driver's convention.
            task = self._task_overhead() + self.cluster.cost.sparse_work(
                local.nnz, passes=2 * width
            )
            per_worker[w] = task * ctx.slowdowns[w]

        batch = _concat_batches(batch_parts, self._dataset.n_features)
        ctx.scratch["batch"] = batch
        gradient = grad_sum / max(batch.n_rows, 1) + self.model.regularizer.gradient(
            self._params
        )
        self.optimizer.step(self._params, gradient, ctx.t)
        return per_worker

    def _phase_center_update(self, ctx) -> float:
        return self._center_update_seconds()

    def _task_overhead(self) -> float:
        return self.cluster.cost.task_overhead

    def _handle_failures(self, t: int) -> float:
        """RowSGD fault semantics: the model lives at the center, so a
        worker crash costs only a shard reload (no numeric effect); a
        master crash loses the model and aborts the job."""
        extra = 0.0
        for event in self.failures.events_at(t):
            if event.kind == FailureKind.MASTER:
                raise MasterFailedError(
                    "master failed at iteration {} — the model is lost; "
                    "RowSGD restarts from scratch".format(t)
                )
            if event.kind == FailureKind.TASK:
                extra += self.cluster.cost.task_overhead
                continue
            shard = self._partitioner.shard(event.worker_id)
            reload_bytes = shard.nnz * 12 + shard.n_rows * 8
            reload_s = (
                self.cluster.cost.task_overhead
                + reload_bytes / self.cluster.spec.disk_bandwidth_bytes_per_s
                + reload_bytes / self.cluster.network.bandwidth
            )
            extra += reload_s
            trace = getattr(self.cluster, "engine_trace", None)
            if trace is not None:
                from repro.engine import RecoveryEvent

                trace.add_recovery(
                    RecoveryEvent(
                        round=t,
                        kind="worker",
                        mode="reload",
                        worker=event.worker_id,
                        reload_s=reload_s,
                    )
                )
        return extra

    # ------------------------------------------------------------------
    def current_params(self) -> np.ndarray:
        """The central model."""
        if self._params is None:
            raise TrainingError("call load() first")
        return np.array(self._params, copy=True)

    def evaluate_loss(self, dataset: Optional[Dataset] = None) -> float:
        """Full objective on the training set (not charged to sim time)."""
        data = dataset if dataset is not None else self._dataset
        return self.model.loss(data.features, data.labels, self._params)

    def _record(self, result, iteration, duration, bytes_sent, evaluate,
                now: Optional[float] = None) -> None:
        """Append one iteration record; ``now`` overrides the timestamp
        source (the local backend passes its wall clock)."""
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "training diverged at iteration {} (loss={})".format(iteration, loss)
            )
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now() if now is None else now,
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
            )
        )


def _concat_batches(parts: List[Dataset], n_features: int) -> Dataset:
    """Stack per-worker batches into the logical global batch."""
    nonempty = [p for p in parts if p.n_rows]
    if not nonempty:
        raise TrainingError("empty global batch")
    features = CSRMatrix.vstack([p.features for p in nonempty])
    labels = np.concatenate([p.labels for p in nonempty])
    return Dataset(features, labels, name=nonempty[0].name)
