"""Petuum-style parameter server: sharded model, full pulls.

The model lives in S = K server shards (servers colocated with
workers, as the paper configures).  Workers pull *all* dimensions every
iteration — "MLlib and Petuum have to pull all dimensions, which is
apparently inefficient" — but pushes are sparse.  Total bytes match
MLlib; they are merely spread over S NICs, which is the paper's point
about PS architectures.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.base import BaselineTrainer
from repro.core.analysis import SERVER_SCAN_SECONDS_PER_ELEMENT, SPARSE_PAIR_BYTES
from repro.engine import CommPhase
from repro.net.message import MessageKind
from repro.storage.serialization import dense_vector_bytes


class ParameterServerTrainer(BaselineTrainer):
    """Petuum-style PS RowSGD (full pull, sparse push)."""

    def __init__(self, *args, n_servers: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_servers = n_servers if n_servers is not None else self.cluster.n_workers

    def _system_name(self) -> str:
        return "Petuum"

    def _task_overhead(self) -> float:
        # PS runtimes keep workers hot; no Spark task launch per iteration.
        from repro.sim.cost import PS_TASK_OVERHEAD

        return PS_TASK_OVERHEAD

    def _comm_phases(self) -> Tuple[CommPhase, ...]:
        # Table I, Petuum row: K full-model pulls + K sparse pushes.
        return (
            CommPhase(
                "pull",
                kind=MessageKind.MODEL_PULL,
                pattern="sharded_broadcast",
                sizes="_model_pull_size",
                servers="n_servers",
            ),
            CommPhase(
                "push",
                kind=MessageKind.GRADIENT_PUSH,
                pattern="sharded_gather",
                sizes="_gradient_push_sizes",
                servers="n_servers",
            ),
        )

    def _model_pull_size(self, ctx) -> int:
        return dense_vector_bytes(self.model_elements)

    def _push_sizes(self, batch) -> list:
        """Sparse gradient push bytes per worker (its batch share's nnz)."""
        ppf = self.model.params_per_feature()
        per_worker_nnz = batch.nnz / self.cluster.n_workers
        return [int(per_worker_nnz * ppf * SPARSE_PAIR_BYTES)] * self.cluster.n_workers

    def _gradient_push_sizes(self, ctx) -> list:
        return self._push_sizes(ctx.scratch["batch"])

    def _center_update_seconds(self) -> float:
        # per-iteration dense maintenance of each server's shard
        return SERVER_SCAN_SECONDS_PER_ELEMENT * self.model_elements / self.n_servers

    def _charge_setup_memory(self) -> None:
        model_bytes = self.model_elements * 8
        # PS init materialises the full dense model at the driver before
        # sharding (plus a serialization buffer) — the OOM mechanism of
        # Table V's FM F=50 run.
        self.cluster.charge_memory(self.cluster.MASTER, 2 * model_bytes, "dense model init")
        shard_bytes = self._dataset.nnz * 12 // self.cluster.n_workers
        server_shard = 2 * model_bytes // self.n_servers
        for w in range(self.cluster.n_workers):
            self.cluster.charge_memory(
                w, shard_bytes + 2 * model_bytes + server_shard, "shard+model+server"
            )
