"""MLlib* baseline: model averaging with AllReduce (Zhang et al., 2019).

Each worker keeps a local model copy; per iteration it takes a local
mini-batch, steps its own optimizer, and then all copies are averaged
with a ring AllReduce.  Statistically this is *not* mini-batch SGD — the
averaging reduces variance, which is why the paper observes MLlib*
sometimes converging to a lower loss (their Fig 8 discussion) — so this
trainer overrides the whole :meth:`round_spec` rather than just the
communication phases.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.base import BaselineTrainer
from repro.datasets.dataset import Dataset
from repro.engine import BarrierSync, CommPhase, ComputePhase, MasterPhase, RoundSpec
from repro.net.message import MessageKind
from repro.storage.serialization import dense_vector_bytes


class MLlibStarTrainer(BaselineTrainer):
    """Model-averaging RowSGD with AllReduce synchronisation.

    ``local_steps`` mini-batch updates run on each worker between
    averaging rounds (MLlib* batches work locally to trade statistical
    efficiency for hardware efficiency; with 1 local step and plain SGD
    the method degenerates to exact mini-batch SGD).
    """

    def __init__(self, *args, local_steps: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        self.local_steps = int(local_steps)

    def _system_name(self) -> str:
        return "MLlib*"

    def load(self, dataset: Dataset):
        report = super().load(dataset)
        self._local_params: List[np.ndarray] = [
            np.array(self._params, copy=True) for _ in range(self.cluster.n_workers)
        ]
        self._local_optimizers = [
            self.optimizer.spawn() for _ in range(self.cluster.n_workers)
        ]
        return report

    def round_spec(self) -> RoundSpec:
        # Ring AllReduce: 2(K-1) hops, each carrying a 1/K model chunk.
        return RoundSpec(
            system=self._system_name(),
            sync=BarrierSync(),
            phases=(
                ComputePhase(
                    "local_steps", run="_phase_local_steps", synchronized=True
                ),
                CommPhase(
                    "allreduce",
                    kind=MessageKind.MODEL_AVG,
                    pattern="allreduce",
                    sizes="_model_avg_size",
                ),
                MasterPhase("apply_average", run="_phase_apply_average"),
            ),
        )

    def _phase_local_steps(self, ctx) -> Dict[int, float]:
        width = self.model.statistics_width
        per_worker: Dict[int, float] = {}
        for w in range(self.cluster.n_workers):
            busy = 0.0
            for s in range(self.local_steps):
                local = self._partitioner.sample_local_batch(
                    ctx.t * self.local_steps + s, self.config.batch_size, w
                )
                if local.n_rows:
                    gradient = self.model.gradient(
                        local.features, local.labels, self._local_params[w]
                    )
                    self._local_optimizers[w].step(
                        self._local_params[w], gradient, ctx.t
                    )
                busy += self.cluster.cost.sparse_work(local.nnz, passes=2 * width)
            per_worker[w] = (self._task_overhead() + busy) * ctx.slowdowns[w]

        # Model averaging via ring AllReduce (the comm phase charges the
        # wire time; the numerics happen here, once, on the driver).
        averaged = np.mean(self._local_params, axis=0)
        for w in range(self.cluster.n_workers):
            self._local_params[w][...] = averaged
        self._params[...] = averaged
        return per_worker

    def _model_avg_size(self, ctx) -> int:
        return dense_vector_bytes(self.model_elements)

    def _phase_apply_average(self, ctx) -> float:
        return self.cluster.cost.dense_work(self.model_elements)

    def _comm_phases(self):  # pragma: no cover
        raise NotImplementedError("MLlib* overrides round_spec directly")

    def _center_update_seconds(self) -> float:  # pragma: no cover
        raise NotImplementedError("MLlib* overrides round_spec directly")

    def _charge_setup_memory(self) -> None:
        model_bytes = self.model_elements * 8
        shard_bytes = self._dataset.nnz * 12 // self.cluster.n_workers
        # no heavyweight master; each worker holds its local copy + buffers
        for w in range(self.cluster.n_workers):
            self.cluster.charge_memory(w, shard_bytes + 3 * model_bytes, "shard+copies")
