"""Stale-Synchronous-Parallel (SSP) parameter server.

The paper's related work (Section VI) describes the other way RowSGD
systems fight stragglers: "breaking the synchronization barrier ...
where a worker may proceed without waiting for the slowest worker"
(Petuum's bounded staleness).  ColumnSGD cannot use this trick — the
master needs *all* statistics — which is why it adopts backup
computation instead.  This trainer implements the SSP alternative so
the trade-off is measurable in one framework.

Semantics (Cui et al., ATC'14): a worker may run iteration ``t`` as
soon as the update of iteration ``t - 1 - staleness`` is committed, so
transient stragglers are absorbed by the pipeline instead of stalling
every peer.  Gradients may therefore be computed on a model up to
``staleness`` versions old; the server aggregates whatever versions
arrive.  ``staleness = 0`` degenerates to BSP and reproduces the exact
synchronous trajectory (tested).

Timing uses an explicit pipeline recurrence over per-worker completion
times; numerics replay the same recurrence to decide which historical
model version each worker saw.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.parameter_server import ParameterServerTrainer
from repro.core.analysis import SPARSE_PAIR_BYTES
from repro.core.results import TrainingResult
from repro.errors import TrainingError
from repro.net.message import Message, MessageKind
from repro.storage.serialization import dense_vector_bytes
from repro.utils.validation import check_non_negative


class StaleSyncPSTrainer(ParameterServerTrainer):
    """Petuum-style PS with bounded staleness.

    Deliberately declares no ``_round_expected``: bounded staleness lets
    messages cross the BSP barrier, so neither the runtime
    ProtocolChecker (rejected in :meth:`fit`) nor the static extractor
    (rule R010, which only audits classes that declare expected
    traffic) applies to it.
    """

    def __init__(self, *args, staleness: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        check_non_negative(staleness, "staleness")
        self.staleness = int(staleness)

    def _system_name(self) -> str:
        return "Petuum-SSP{}".format(self.staleness)

    # ------------------------------------------------------------------
    def fit(self, dataset=None, iterations: int = None) -> TrainingResult:
        """Run the pipelined SSP schedule."""
        if self.config.check_protocol:
            raise TrainingError(
                "check_protocol is unsupported for SSP: bounded staleness "
                "deliberately lets messages cross the BSP barrier"
            )
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        iterations = iterations if iterations is not None else self.config.iterations

        result = TrainingResult(
            system=self._system_name(),
            model=self.model.name,
            dataset=self._dataset.name,
            batch_size=self.config.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.config.eval_every:
            self._record(result, -1, 0.0, 0, evaluate=True)

        K = self.cluster.n_workers
        width = self.model.statistics_width
        history: List[np.ndarray] = [np.array(self._params, copy=True)]
        worker_free = [0.0] * K
        commits: List[float] = []

        for t in range(iterations):
            bytes_before = self.cluster.network.total_bytes()
            slowdowns = self.straggler.slowdowns(t)

            # --- timing: pipeline recurrence --------------------------
            gate = commits[t - 1 - self.staleness] if t - 1 - self.staleness >= 0 else 0.0
            starts = [max(worker_free[w], gate) for w in range(K)]
            grad_sum = np.zeros_like(self._params)
            batch_rows = 0
            batch_nnz = 0
            for w in range(K):
                local = self._partitioner.sample_local_batch(
                    t, self.config.batch_size, w
                )
                batch_rows += local.n_rows
                batch_nnz += local.nnz
                # --- numerics: which committed version had this worker
                # seen when it started iteration t?
                version = 0
                while version < len(commits) and commits[version] <= starts[w]:
                    version += 1
                seen = history[min(version, len(history) - 1)]
                if local.n_rows:
                    stats = self.model.compute_statistics(local.features, seen)
                    mean_grad = self.model.gradient_from_statistics(
                        local.features, local.labels, stats, np.zeros_like(seen)
                    )
                    grad_sum += mean_grad * local.n_rows
                task = (
                    self._task_overhead()
                    + self.cluster.cost.sparse_work(local.nnz, passes=2 * width)
                ) * slowdowns[w]
                worker_free[w] = starts[w] + task

            gradient = grad_sum / max(batch_rows, 1) + self.model.regularizer.gradient(
                self._params
            )
            self.optimizer.step(self._params, gradient, t)
            # Full history is kept so commit-count -> model-version
            # indexing stays direct; runs are a few hundred iterations
            # on scaled models, so this is cheap.
            history.append(np.array(self._params, copy=True))

            # --- commit: pulls + pushes + server maintenance -----------
            # Same traffic as BSP Petuum: workers pull the full dense
            # model and push sparse gradients through S server NICs.
            model_bytes = dense_vector_bytes(self.model_elements)
            push_bytes = int(
                batch_nnz / K * self.model.params_per_feature() * SPARSE_PAIR_BYTES
            )
            net = self.cluster.network
            for w in range(K):
                net.send(Message(MessageKind.MODEL_PULL, Message.MASTER, w, model_bytes))
                net.send(Message(MessageKind.GRADIENT_PUSH, w, Message.MASTER, push_bytes))
            comm = (
                net.latency + K * model_bytes / (self.n_servers * net.bandwidth)
                + net.latency + K * push_bytes / (self.n_servers * net.bandwidth)
            )
            commit_time = max(worker_free) + comm + self._center_update_seconds()
            commits.append(commit_time)

            duration = commit_time - (commits[t - 1] if t else 0.0)
            self.cluster.clock.advance(max(duration, 0.0))
            evaluate = bool(self.config.eval_every) and (
                (t + 1) % self.config.eval_every == 0 or t == iterations - 1
            )
            self._record(
                result, t, max(duration, 0.0),
                self.cluster.network.total_bytes() - bytes_before, evaluate,
            )

        result.final_params = np.array(self._params, copy=True)
        return result
