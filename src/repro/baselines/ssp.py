"""Stale-Synchronous-Parallel (SSP) parameter server.

The paper's related work (Section VI) describes the other way RowSGD
systems fight stragglers: "breaking the synchronization barrier ...
where a worker may proceed without waiting for the slowest worker"
(Petuum's bounded staleness).  ColumnSGD cannot use this trick — the
master needs *all* statistics — which is why it adopts backup
computation instead.  This trainer implements the SSP alternative so
the trade-off is measurable in one framework.

Semantics (Cui et al., ATC'14): a worker may run iteration ``t`` as
soon as the update of iteration ``t - 1 - staleness`` is committed, so
transient stragglers are absorbed by the pipeline instead of stalling
every peer.  Gradients may therefore be computed on a model up to
``staleness`` versions old; the server aggregates whatever versions
arrive.  ``staleness = 0`` degenerates to BSP and reproduces the exact
synchronous trajectory (tested).

The pipeline recurrence lives in :class:`~repro.engine.StaleSync`
(per-worker free times, commit times); the executor here replays the
same recurrence to decide which historical model version each worker
saw.  Because batch sparsity makes exact per-round gradient bytes
unpredictable under staleness, the spec declares a
:class:`~repro.engine.TrafficEnvelope` for ``GRADIENT_PUSH`` — so SSP
runs are protocol-*checked* (bounded), not exempted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.parameter_server import ParameterServerTrainer
from repro.core.analysis import SPARSE_PAIR_BYTES
from repro.core.results import TrainingResult
from repro.engine import (
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    StaleSync,
    TrafficEnvelope,
    run_training_loop,
)
from repro.errors import TrainingError
from repro.net.message import MessageKind
from repro.net.protocol import ProtocolChecker
from repro.storage.serialization import dense_vector_bytes
from repro.utils.validation import check_non_negative


class StaleSyncPSTrainer(ParameterServerTrainer):
    """Petuum-style PS with bounded staleness."""

    def __init__(self, *args, staleness: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        check_non_negative(staleness, "staleness")
        self.staleness = int(staleness)
        self._history: List[np.ndarray] = []
        self._max_row_nnz = 0

    def _system_name(self) -> str:
        return "Petuum-SSP{}".format(self.staleness)

    def load(self, dataset):
        report = super().load(dataset)
        # Worst-case rows for the GRADIENT_PUSH envelope's byte ceiling.
        self._max_row_nnz = int(self._dataset.features.row_nnz().max())
        return report

    # ------------------------------------------------------------------
    def round_spec(self) -> RoundSpec:
        # Same traffic shape as BSP Petuum: workers pull the full dense
        # model and push sparse gradients through S server NICs.  The
        # StaleSync policy (fresh per fit) turns the barrier into the
        # bounded-staleness pipeline recurrence.
        return RoundSpec(
            system=self._system_name(),
            sync=StaleSync(self.staleness, self.cluster.n_workers),
            phases=(
                ComputePhase(
                    "compute_gradients",
                    run="_phase_stale_compute",
                    synchronized=True,
                ),
                CommPhase(
                    "pull",
                    kind=MessageKind.MODEL_PULL,
                    pattern="sharded_broadcast",
                    sizes="_model_pull_size",
                    servers="n_servers",
                ),
                CommPhase(
                    "push",
                    kind=MessageKind.GRADIENT_PUSH,
                    pattern="sharded_gather",
                    sizes="_ssp_push_sizes",
                    servers="n_servers",
                ),
                MasterPhase("server_update", run="_phase_center_update"),
            ),
            envelopes="_traffic_envelopes",
        )

    def _phase_stale_compute(self, ctx) -> Dict[int, float]:
        """Per-worker gradient tasks against possibly-stale models."""
        K = self.cluster.n_workers
        width = self.model.statistics_width
        commits = ctx.sync.commits
        # Dense replica cost of the PS architecture, charged via the
        # MODEL_PULL bytes and server dense_work (see BaselineTrainer).
        grad_sum = np.zeros_like(self._params)  # lint: noqa[R015,R016]
        batch_rows = 0
        batch_nnz = 0
        per_worker: Dict[int, float] = {}
        for w in range(K):
            local = self._partitioner.sample_local_batch(
                ctx.t, self.config.batch_size, w
            )
            batch_rows += local.n_rows
            batch_nnz += local.nnz
            # --- numerics: which committed version had this worker seen
            # when it started iteration t?
            version = 0
            while version < len(commits) and commits[version] <= ctx.start_times[w]:
                version += 1
            seen = self._history[min(version, len(self._history) - 1)]
            if local.n_rows:
                stats = self.model.compute_statistics(local.features, seen)
                mean_grad = self.model.gradient_from_statistics(
                    local.features, local.labels, stats, np.zeros_like(seen)
                )
                grad_sum += mean_grad * local.n_rows
            per_worker[w] = (
                self._task_overhead()
                + self.cluster.cost.sparse_work(local.nnz, passes=2 * width)
            ) * ctx.slowdowns[w]

        gradient = grad_sum / max(batch_rows, 1) + self.model.regularizer.gradient(
            self._params
        )
        self.optimizer.step(self._params, gradient, ctx.t)
        # Full history is kept so commit-count -> model-version indexing
        # stays direct; runs are a few hundred iterations on scaled
        # models, so this is cheap.
        self._history.append(np.array(self._params, copy=True))
        ctx.scratch["batch_nnz"] = batch_nnz
        return per_worker

    def _ssp_push_sizes(self, ctx) -> list:
        K = self.cluster.n_workers
        push_bytes = int(
            ctx.scratch["batch_nnz"] / K
            * self.model.params_per_feature()
            * SPARSE_PAIR_BYTES
        )
        return [push_bytes] * K

    def _traffic_envelopes(self, ctx) -> Dict[MessageKind, TrafficEnvelope]:
        """Bounded-staleness traffic bounds (satisfied every round).

        Pull traffic is deterministic (K full-model pulls); push bytes
        vary with the sampled batch's sparsity, bounded above by every
        sampled row hitting the densest row of the dataset.
        """
        K = self.cluster.n_workers
        model_bytes = dense_vector_bytes(self.model_elements)
        max_push = int(
            self.config.batch_size
            * self._max_row_nnz
            / K
            * self.model.params_per_feature()
            * SPARSE_PAIR_BYTES
        )
        return {
            MessageKind.MODEL_PULL: TrafficEnvelope.exact(K, K * model_bytes),
            MessageKind.GRADIENT_PUSH: TrafficEnvelope(K, K, 0, K * max_push),
        }

    # ------------------------------------------------------------------
    def fit(self, dataset=None, iterations: Optional[int] = None) -> TrainingResult:
        """Run the pipelined SSP schedule."""
        if dataset is not None and self._dataset is None:
            self.load(dataset)
        if self._dataset is None:
            raise TrainingError("call load() or pass a dataset to fit()")
        iterations = iterations if iterations is not None else self.config.iterations

        result = TrainingResult(
            system=self._system_name(),
            model=self.model.name,
            dataset=self._dataset.name,
            batch_size=self.config.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.config.eval_every:
            self._record(result, -1, 0.0, 0, evaluate=True)

        self._history = [np.array(self._params, copy=True)]
        self._engine = RoundEngine(
            self, self.cluster, straggler=self.straggler,
            check_effects=self.config.check_effects,
            check_cost=self.config.check_cost,
        )
        checker = ProtocolChecker(self.cluster) if self.config.check_protocol else None
        # SSP has no failure hook: a crashed worker's pipeline slot is
        # simply re-provisioned by the PS runtime, outside our model.
        run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=iterations,
            eval_every=self.config.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate
            ),
            checker=checker,
        )

        result.final_params = np.array(self._params, copy=True)
        return result
