"""Model checkpointing: save/load parameter arrays with metadata.

The paper's system deliberately runs without checkpoints (Section X:
SGD's robustness substitutes for them), but a library user still wants
to persist a trained model and warm-start later runs.  Checkpoints are
``.npz`` files carrying the parameter array plus a small metadata
record (model name, dimensions, arbitrary user fields).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import DataError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_model(
    path: PathLike,
    model_name: str,
    params: np.ndarray,
    metadata: Optional[Dict] = None,
) -> None:
    """Write a checkpoint.

    ``metadata`` must be JSON-serialisable; dimensions and the format
    version are recorded automatically.
    """
    params = np.asarray(params, dtype=np.float64)
    record = {
        "format_version": _FORMAT_VERSION,
        "model_name": str(model_name),
        "shape": list(params.shape),
    }
    if metadata:
        overlap = set(metadata) & set(record)
        if overlap:
            raise ValueError("metadata keys {} are reserved".format(sorted(overlap)))
        record.update(metadata)
    np.savez(
        str(path),
        params=params,
        metadata=np.frombuffer(json.dumps(record).encode("utf-8"), dtype=np.uint8),
    )


def load_model(path: PathLike) -> Tuple[str, np.ndarray, Dict]:
    """Read a checkpoint; returns ``(model_name, params, metadata)``."""
    path = Path(str(path))
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(str(path)) as archive:
        if "params" not in archive or "metadata" not in archive:
            raise DataError("{} is not a repro checkpoint".format(path))
        params = np.asarray(archive["params"], dtype=np.float64)
        record = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
    if record.get("format_version") != _FORMAT_VERSION:
        raise DataError(
            "unsupported checkpoint version {!r}".format(record.get("format_version"))
        )
    if list(params.shape) != record["shape"]:
        raise DataError("checkpoint shape metadata disagrees with the array")
    model_name = record.pop("model_name")
    record.pop("format_version")
    record.pop("shape")
    return model_name, params, record
