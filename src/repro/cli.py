"""Command-line interface.

Four subcommands::

    python -m repro info                          # profiles & clusters
    python -m repro train --dataset avazu ...     # train one system
    python -m repro compare --dataset kdd12 ...   # all five systems
    python -m repro evaluate --checkpoint m.npz --dataset avazu

Datasets are either a Table II profile name (a scaled synthetic
stand-in is generated) or a path to a LIBSVM file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.baselines.registry import TRAINER_REGISTRY, make_trainer
from repro.datasets import PROFILES, load_profile, read_libsvm
from repro.datasets.dataset import Dataset
from repro.experiments.report import convergence_table, iteration_time_table, loss_series
from repro.io import load_model, save_model
from repro.metrics import evaluate_classifier, train_test_split
from repro.models.registry import MODEL_REGISTRY, make_model
from repro.optim.registry import OPTIMIZER_REGISTRY, make_optimizer
from repro.sim import SimulatedCluster
from repro.sim.presets import PRESETS as _CLUSTER_PRESETS
from repro.utils import ascii_table, format_bytes

_CLUSTERS = dict(_CLUSTER_PRESETS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ColumnSGD reproduction: train on a simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list dataset profiles, models, and clusters")

    report = sub.add_parser(
        "report", help="stitch benchmarks/results/*.txt into one report"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None,
                        help="also write the report to this path")

    desc = sub.add_parser("describe", help="structural report of a dataset")
    desc.add_argument("--dataset", required=True)
    desc.add_argument("--rows", type=int, default=None)
    desc.add_argument("--seed", type=int, default=0)

    def add_common(p):
        p.add_argument("--dataset", required=True,
                       help="profile name ({}) or LIBSVM path".format(
                           "/".join(sorted(PROFILES))))
        p.add_argument("--model", default="lr", choices=sorted(MODEL_REGISTRY))
        p.add_argument("--optimizer", default="sgd", choices=sorted(OPTIMIZER_REGISTRY))
        p.add_argument("--learning-rate", type=float, default=1.0,
                       help="default 1.0 (suits the synthetic stand-ins; the "
                            "paper's Table III rates were tuned on the real "
                            "datasets)")
        p.add_argument("--batch-size", type=int, default=1000)
        p.add_argument("--iterations", type=int, default=100)
        p.add_argument("--eval-every", type=int, default=10)
        p.add_argument("--cluster", default="cluster1", choices=sorted(_CLUSTERS))
        p.add_argument("--workers", type=int, default=None,
                       help="override the cluster preset's machine count")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rows", type=int, default=None,
                       help="rows to generate for profile datasets")
        p.add_argument("--n-factors", type=int, default=10,
                       help="FM latent factors (fm model only)")
        p.add_argument("--n-classes", type=int, default=None,
                       help="MLR class count (mlr model only)")
        p.add_argument("--n-fields", type=int, default=4,
                       help="FFM field count (ffm model only; features are "
                            "assigned to fields round-robin)")

    train = sub.add_parser("train", help="train one system")
    add_common(train)
    train.add_argument("--system", default="columnsgd", choices=sorted(TRAINER_REGISTRY))
    train.add_argument("--backend", default="sim", choices=("sim", "local"),
                       help="execution substrate: 'sim' charges modeled "
                            "time on the discrete-event simulator; 'local' "
                            "runs real worker processes and measures "
                            "wall-clock rounds (columnsgd and mllib)")
    train.add_argument("--local-processes", type=int, default=0,
                       help="OS processes hosting the workers with "
                            "--backend local (0 = one per worker)")
    train.add_argument("--backup", type=int, default=0,
                       help="S-backup computation level (columnsgd only)")
    train.add_argument("--sync-policy", default=None,
                       choices=("backup", "timeout", "retry"),
                       help="relaxed-barrier policy (columnsgd; real "
                            "measured deadlines with --backend local)")
    train.add_argument("--local-timeout-s", type=float, default=30.0,
                       help="deadline floor in seconds for --backend "
                            "local exchanges (alpha x median rule)")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       help="snapshot the model every N rounds "
                            "(columnsgd; real on-disk spills with "
                            "--backend local)")
    train.add_argument("--chaos-mtbf-rounds", type=float, default=0.0,
                       help="inject real faults on --backend local: "
                            "Poisson fault arrivals with this "
                            "mean-time-between-failures in rounds")
    train.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the --chaos-mtbf-rounds plan")
    train.add_argument("--wire-precision", default="fp64", choices=("fp64", "fp32"),
                       help="statistics wire format (columnsgd only)")
    train.add_argument("--early-stop-patience", type=int, default=0,
                       help="stop after N stagnant evaluations (columnsgd only)")
    train.add_argument("--store-dir", default=None,
                       help="shuffle the data into (or reuse) an on-disk "
                            "column-shard store here and train out-of-core "
                            "(columnsgd only; see docs/storage.md)")
    train.add_argument("--memory-budget-mb", type=float, default=0.0,
                       help="bound the store shuffle buffers and each "
                            "worker's block cache to this many MiB "
                            "(0 = unbounded; needs --store-dir)")
    train.add_argument("--save", default=None, help="checkpoint path (.npz)")

    compare = sub.add_parser("compare", help="run all five systems")
    add_common(compare)
    compare.add_argument(
        "--systems", nargs="+", default=sorted(TRAINER_REGISTRY),
        choices=sorted(TRAINER_REGISTRY),
    )

    evaluate = sub.add_parser("evaluate", help="score a checkpoint on a dataset")
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--rows", type=int, default=None)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)

    return parser


def _load_dataset(name: str, rows: Optional[int], seed: int) -> Dataset:
    if name.lower() in PROFILES:
        return load_profile(name).generate(seed=seed, rows=rows)
    path = Path(name)
    if not path.exists():
        raise SystemExit(
            "dataset {!r} is neither a profile ({}) nor a file".format(
                name, ", ".join(sorted(PROFILES))
            )
        )
    return read_libsvm(path, name=path.stem)


def _resolve_rate(args) -> float:
    return args.learning_rate


def _build_model(args, data: Dataset):
    kwargs = {}
    if args.model == "fm":
        kwargs["n_factors"] = args.n_factors
    if args.model == "mlr":
        if args.n_classes is None:
            raise SystemExit("--n-classes is required for the mlr model")
        kwargs["n_classes"] = args.n_classes
    if args.model == "ffm":
        import numpy as np

        kwargs["n_factors"] = args.n_factors
        kwargs["field_of"] = np.arange(data.n_features) % max(args.n_fields, 1)
    return make_model(args.model, **kwargs)


def _build_cluster(args) -> SimulatedCluster:
    spec = _CLUSTERS[args.cluster]
    if args.workers:
        spec = spec.with_workers(args.workers)
    return SimulatedCluster(spec)


def _run_one(args, system: str, data: Dataset):
    cluster = _build_cluster(args)
    trainer = make_trainer(
        system,
        _build_model(args, data),
        make_optimizer(args.optimizer, _resolve_rate(args)),
        cluster,
        batch_size=args.batch_size,
        iterations=args.iterations,
        eval_every=args.eval_every,
        seed=args.seed,
        backend=getattr(args, "backend", "sim"),
        local_processes=getattr(args, "local_processes", 0),
        **_fault_extras(args, system, cluster),
        **_columnsgd_extras(args, system),
    )
    trainer.load(data)
    return trainer, trainer.fit()


def _fault_extras(args, system: str, cluster) -> dict:
    extras = {}
    if getattr(args, "local_timeout_s", 30.0) != 30.0:
        extras["local_timeout_s"] = args.local_timeout_s
    if getattr(args, "checkpoint_every", 0):
        if system != "columnsgd":
            raise SystemExit("--checkpoint-every applies to columnsgd only")
        from repro.core.recovery import RecoveryPolicy

        extras["recovery"] = RecoveryPolicy(
            checkpoint_every=args.checkpoint_every
        )
    if getattr(args, "chaos_mtbf_rounds", 0.0):
        if getattr(args, "backend", "sim") != "local":
            raise SystemExit(
                "--chaos-mtbf-rounds injects real process faults and "
                "needs --backend local (simulated chaos: repro.sim.ChaosSchedule)"
            )
        from repro.runtime import LocalChaos

        extras["failures"] = LocalChaos(
            mtbf_rounds=args.chaos_mtbf_rounds,
            seed=getattr(args, "chaos_seed", 0),
            n_workers=cluster.n_workers,
        )
    return extras


def cmd_info(args, out) -> int:
    rows = [
        (p.name, "{:,}".format(p.paper_instances), "{:,}".format(p.paper_features),
         format_bytes(p.paper_size_bytes),
         "{:,} x {:,}".format(p.scaled_rows, p.scaled_features))
        for p in PROFILES.values()
    ]
    out.write("dataset profiles (Table II):\n")
    out.write(ascii_table(
        ["profile", "paper rows", "paper features", "paper size", "scaled default"],
        rows,
    ))
    out.write("\n\nmodels: {}\n".format(", ".join(sorted(MODEL_REGISTRY))))
    out.write("optimizers: {}\n".format(", ".join(sorted(OPTIMIZER_REGISTRY))))
    out.write("systems: {}\n".format(", ".join(sorted(TRAINER_REGISTRY))))
    out.write("clusters: cluster1 (8x2cpu/32GB/1Gbps), cluster2 (40x8cpu/50GB/10Gbps)\n")
    return 0


def _columnsgd_extras(args, system: str) -> dict:
    if system != "columnsgd":
        if getattr(args, "store_dir", None):
            raise SystemExit(
                "--store-dir holds a column-shard store; it applies to "
                "--system columnsgd only"
            )
        return {}
    extras = {}
    if getattr(args, "backup", 0):
        extras["backup"] = args.backup
    if getattr(args, "sync_policy", None):
        extras["sync_policy"] = args.sync_policy
    if getattr(args, "wire_precision", "fp64") != "fp64":
        extras["wire_precision"] = args.wire_precision
    if getattr(args, "early_stop_patience", 0):
        extras["early_stop_patience"] = args.early_stop_patience
    if getattr(args, "store_dir", None):
        extras["store_dir"] = args.store_dir
    if getattr(args, "memory_budget_mb", 0.0):
        if not getattr(args, "store_dir", None):
            raise SystemExit("--memory-budget-mb needs --store-dir")
        extras["memory_budget_bytes"] = int(args.memory_budget_mb * 2**20)
    return extras


def cmd_report(args, out) -> int:
    from repro.experiments.paper_report import write_report

    out.write(write_report(args.results_dir, output=args.output))
    out.write("\n")
    return 0


def cmd_describe(args, out) -> int:
    from repro.datasets.analysis import describe

    data = _load_dataset(args.dataset, args.rows, args.seed)
    out.write(describe(data).render() + "\n")
    return 0


def cmd_train(args, out) -> int:
    data = _load_dataset(args.dataset, args.rows, args.seed)
    out.write("dataset: {!r}\n".format(data))
    trainer, result = _run_one(args, args.system, data)
    out.write(result.describe() + "\n")
    timing = "wall-clock" if getattr(args, "backend", "sim") == "local" else "simulated"
    out.write("per-iteration: {:.4f}s ({})\n".format(
        result.avg_iteration_seconds(), timing))
    if result.losses():
        out.write("loss series: {}\n".format(loss_series(result)))
    if args.save:
        save_model(args.save, args.model, result.final_params,
                   metadata={"dataset": args.dataset, "system": args.system})
        out.write("checkpoint written to {}\n".format(args.save))
    return 0


def cmd_compare(args, out) -> int:
    data = _load_dataset(args.dataset, args.rows, args.seed)
    out.write("dataset: {!r}\n".format(data))
    results = {}
    for system in args.systems:
        _, results[system] = _run_one(args, system, data)
    out.write("\nper-iteration time:\n")
    out.write(iteration_time_table(results) + "\n")
    finals = [r.final_loss() for r in results.values() if r.final_loss() is not None]
    if finals:
        target = min(finals) * 1.1
        out.write("\ntime to loss <= {:.4f}:\n".format(target))
        out.write(convergence_table(results, target) + "\n")
    return 0


def cmd_evaluate(args, out) -> int:
    model_name, params, metadata = load_model(args.checkpoint)
    data = _load_dataset(args.dataset, args.rows, args.seed)
    if model_name == "fm":
        model = make_model("fm", n_factors=params.shape[1] - 1)
    elif model_name == "mlr":
        model = make_model("mlr", n_classes=params.shape[1])
    else:
        model = make_model(model_name)
    _, test = train_test_split(data, test_fraction=args.test_fraction, seed=args.seed)
    report = evaluate_classifier(model, params, test)
    out.write("checkpoint: {} (model={}, meta={})\n".format(
        args.checkpoint, model_name, metadata))
    out.write(ascii_table(
        ["metric", "value"],
        [(k, "{:.4f}".format(v)) for k, v in report.items()],
    ))
    out.write("\n")
    return 0


_COMMANDS = {
    "info": cmd_info,
    "describe": cmd_describe,
    "report": cmd_report,
    "train": cmd_train,
    "compare": cmd_compare,
    "evaluate": cmd_evaluate,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
