"""Data and model partitioning.

The paper's Section IV: column assignment schemes shared by data and
model (so they stay collocated), the block-based row-to-column
dispatcher (Algorithm 4 / Fig 5) and its naive row-by-row strawman, the
per-worker workset store, and the two-phase (block id, offset) sampling
index.  Row partitioning for the RowSGD baselines lives here too.
"""

from repro.partition.column import (
    ColumnAssignment,
    RoundRobinAssignment,
    RangeAssignment,
    HashAssignment,
    make_assignment,
)
from repro.partition.workset import Workset, WorksetStore
from repro.partition.row import RowPartitioner
from repro.partition.indexing import TwoPhaseIndex
from repro.partition.dispatch import (
    LoadReport,
    dispatch_block_based,
    dispatch_naive,
    load_row_partitioned,
)

__all__ = [
    "ColumnAssignment",
    "RoundRobinAssignment",
    "RangeAssignment",
    "HashAssignment",
    "make_assignment",
    "Workset",
    "WorksetStore",
    "RowPartitioner",
    "TwoPhaseIndex",
    "LoadReport",
    "dispatch_block_based",
    "dispatch_naive",
    "load_row_partitioned",
]
