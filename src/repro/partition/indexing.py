"""Two-phase mini-batch sampling index (Section IV-A2).

Sampling a row happens in two draws sharing a deterministic per-iteration
seed: first a block id (weighted by block size so rows stay uniform),
then an ordinal offset inside that block.  Because the seed is a pure
function of (base seed, iteration), every worker — and the master —
materialises the identical draw sequence without any communication,
which is what lets column shards of the same logical row line up across
the cluster.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.utils.rng import iteration_seed, rng_from_seed
from repro.utils.validation import check_positive


class TwoPhaseIndex:
    """Deterministic (block id, offset) sampler over a block layout.

    Parameters
    ----------
    block_sizes:
        ``{block_id: n_rows}`` — must agree across all workers (they all
        received worksets of the same blocks).
    base_seed:
        Job-level seed; combined with the iteration number via SplitMix64.
    """

    def __init__(self, block_sizes: Dict[int, int], base_seed: int = 0):
        if not block_sizes:
            raise PartitionError("cannot index an empty block layout")
        self._block_ids = np.asarray(sorted(block_sizes), dtype=np.int64)
        self._sizes = np.asarray(
            [block_sizes[int(b)] for b in self._block_ids], dtype=np.int64
        )
        if np.any(self._sizes <= 0):
            raise PartitionError("all blocks must have at least one row")
        self._weights = self._sizes / self._sizes.sum()
        self._cum_sizes = np.concatenate([[0], np.cumsum(self._sizes)])
        self.base_seed = int(base_seed)

    @property
    def n_rows(self) -> int:
        """Total rows across all blocks."""
        return int(self._sizes.sum())

    @property
    def n_blocks(self) -> int:
        """Number of indexed blocks."""
        return int(self._block_ids.size)

    def sample(self, iteration: int, batch_size: int) -> List[Tuple[int, int]]:
        """Draw ``batch_size`` (block id, offset) pairs for ``iteration``.

        Deterministic: the same (base_seed, iteration) yields the same
        draws on every caller.  Rows are sampled with replacement,
        uniformly over the logical dataset.
        """
        check_positive(batch_size, "batch_size")
        rng = rng_from_seed(iteration_seed(self.base_seed, iteration))
        block_pos = rng.choice(self.n_blocks, size=batch_size, p=self._weights)
        offsets = rng.integers(0, self._sizes[block_pos])
        return [
            (int(self._block_ids[b]), int(o)) for b, o in zip(block_pos, offsets)
        ]

    def to_global_rows(self, draws: List[Tuple[int, int]]) -> np.ndarray:
        """Convert draws into global row ids (blocks laid out in id order).

        Only valid when block ids map to contiguous ranges of the source
        dataset in ascending order — true for the dispatcher's layout.
        Used by equivalence tests and by the driver's loss evaluation.
        """
        rows = np.empty(len(draws), dtype=np.int64)
        id_to_pos = {int(b): i for i, b in enumerate(self._block_ids)}
        for i, (block_id, offset) in enumerate(draws):
            pos = id_to_pos.get(block_id)
            if pos is None:
                raise PartitionError("unknown block id {}".format(block_id))
            if not 0 <= offset < self._sizes[pos]:
                raise PartitionError(
                    "offset {} out of range for block {}".format(offset, block_id)
                )
            rows[i] = self._cum_sizes[pos] + offset
        return rows
