"""Column assignment schemes.

An assignment maps every global feature id to exactly one worker and
gives each worker a local, dense re-indexing of its columns.  Data and
model use the *same* assignment — that is the collocation property the
whole framework rests on.

Three schemes, mirroring the options the paper mentions for Algorithm 4's
"predefined partitioning scheme":

* round-robin — column ``j`` goes to worker ``j % K`` (the default; best
  balance for power-law feature popularity);
* range — contiguous ``m/K`` slabs;
* hash — ``hash(j) % K`` with a mixing function.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.utils.validation import check_in, check_positive


class ColumnAssignment:
    """Base class: global column -> worker, plus local index bookkeeping."""

    def __init__(self, n_features: int, n_workers: int):
        check_positive(n_features, "n_features")
        check_positive(n_workers, "n_workers")
        if n_workers > n_features:
            raise PartitionError(
                "cannot spread {} features over {} workers".format(n_features, n_workers)
            )
        self.n_features = int(n_features)
        self.n_workers = int(n_workers)
        self._columns_of: List[np.ndarray] = self._build_columns()
        owners = np.empty(self.n_features, dtype=np.int64)
        seen = 0
        for worker, cols in enumerate(self._columns_of):
            if cols.size and np.any(np.diff(cols) <= 0):
                raise PartitionError("columns_of({}) must be sorted unique".format(worker))
            owners[cols] = worker
            seen += cols.size
        if seen != self.n_features:
            raise PartitionError(
                "assignment covers {} of {} columns".format(seen, self.n_features)
            )
        self._owner = owners

    # -- scheme-specific -------------------------------------------------
    def _build_columns(self) -> List[np.ndarray]:
        raise NotImplementedError

    # -- shared API -------------------------------------------------------
    def columns_of(self, worker: int) -> np.ndarray:
        """Sorted global column ids owned by ``worker`` (local -> global)."""
        return self._columns_of[worker]

    def local_dim(self, worker: int) -> int:
        """Number of columns (model parameters) on ``worker``."""
        return int(self._columns_of[worker].size)

    def worker_of(self, columns) -> np.ndarray:
        """Owning worker of each global column id (vectorised)."""
        columns = np.asarray(columns, dtype=np.int64)
        return self._owner[columns]

    def local_dims(self) -> List[int]:
        """Per-worker column counts."""
        return [self.local_dim(k) for k in range(self.n_workers)]

    def imbalance(self) -> float:
        """max/mean of per-worker column counts (1.0 = perfectly even)."""
        dims = self.local_dims()
        mean = sum(dims) / len(dims)
        return max(dims) / mean if mean else 1.0

    def __repr__(self) -> str:
        return "{}(m={}, K={})".format(type(self).__name__, self.n_features, self.n_workers)


class RoundRobinAssignment(ColumnAssignment):
    """Column ``j`` -> worker ``j % K``; local index is ``j // K``."""

    def _build_columns(self) -> List[np.ndarray]:
        return [
            np.arange(k, self.n_features, self.n_workers, dtype=np.int64)
            for k in range(self.n_workers)
        ]


class RangeAssignment(ColumnAssignment):
    """Contiguous slabs of ``ceil(m/K)`` columns per worker."""

    def _build_columns(self) -> List[np.ndarray]:
        bounds = np.linspace(0, self.n_features, self.n_workers + 1).astype(np.int64)
        return [
            np.arange(bounds[k], bounds[k + 1], dtype=np.int64)
            for k in range(self.n_workers)
        ]


class HashAssignment(ColumnAssignment):
    """Column ``j`` -> ``mix(j) % K`` with a SplitMix64-style mixer."""

    def _build_columns(self) -> List[np.ndarray]:
        ids = np.arange(self.n_features, dtype=np.uint64)
        x = ids + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
        owner = (x % np.uint64(self.n_workers)).astype(np.int64)
        return [
            np.flatnonzero(owner == k).astype(np.int64) for k in range(self.n_workers)
        ]


_SCHEMES = {
    "round_robin": RoundRobinAssignment,
    "range": RangeAssignment,
    "hash": HashAssignment,
}


def make_assignment(scheme: str, n_features: int, n_workers: int) -> ColumnAssignment:
    """Factory over the three schemes (``'round_robin'`` is the default)."""
    check_in(scheme, _SCHEMES, "scheme")
    return _SCHEMES[scheme](n_features, n_workers)
