"""Row partitioning for the RowSGD baselines.

MLlib & friends shard training data by rows: worker k owns a horizontal
slice and samples its share of each mini-batch locally.  Contiguous
partitioning models HDFS locality (no shuffle); ``shuffled=True`` models
a global repartition for load balance (MLlib-Repartition in Fig 7).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import PartitionError
from repro.utils.rng import iteration_seed, rng_from_seed
from repro.utils.validation import check_positive


class RowPartitioner:
    """Split a dataset into K horizontal shards and sample batches.

    Sampling follows the RowSGD pattern: in iteration ``t`` each worker
    draws ``ceil(B/K)``-ish rows from *its own shard* (the paper's
    ``B/K`` points per worker), deterministically from (seed, t, worker).
    """

    def __init__(self, dataset: Dataset, n_workers: int, shuffled: bool = False, seed: int = 0):
        check_positive(n_workers, "n_workers")
        if n_workers > dataset.n_rows:
            raise PartitionError(
                "cannot spread {} rows over {} workers".format(dataset.n_rows, n_workers)
            )
        self.n_workers = int(n_workers)
        self.base_seed = int(seed)
        source = dataset.shuffled(rng_from_seed(seed)) if shuffled else dataset
        bounds = np.linspace(0, source.n_rows, self.n_workers + 1).astype(np.int64)
        self._shards: List[Dataset] = [
            source.slice(int(bounds[k]), int(bounds[k + 1])) for k in range(self.n_workers)
        ]

    def shard(self, worker: int) -> Dataset:
        """Worker ``worker``'s horizontal slice."""
        return self._shards[worker]

    def shard_sizes(self) -> List[int]:
        """Rows per shard."""
        return [shard.n_rows for shard in self._shards]

    def batch_share(self, batch_size: int, worker: int) -> int:
        """Rows worker ``worker`` contributes to a batch of ``batch_size``.

        Spreads the remainder over the first ``B mod K`` workers so the
        shares always sum to exactly ``batch_size``.
        """
        check_positive(batch_size, "batch_size")
        base, extra = divmod(batch_size, self.n_workers)
        return base + (1 if worker < extra else 0)

    def sample_local_batch(self, iteration: int, batch_size: int, worker: int) -> Dataset:
        """Worker-local mini-batch for iteration ``iteration``.

        Deterministic in (base seed, iteration, worker); sampling is with
        replacement, matching the column side's index semantics.
        """
        return sample_shard_batch(
            self._shards[worker],
            base_seed=self.base_seed,
            iteration=iteration,
            batch_size=batch_size,
            worker=worker,
            n_workers=self.n_workers,
        )


def sample_shard_batch(
    shard: Dataset,
    *,
    base_seed: int,
    iteration: int,
    batch_size: int,
    worker: int,
    n_workers: int,
) -> Dataset:
    """Draw worker ``worker``'s share of a batch from its own shard.

    The standalone form of :meth:`RowPartitioner.sample_local_batch`: a
    worker holding only its shard (e.g. a local-backend worker process)
    reproduces the partitioner's draws exactly from
    ``(base_seed, iteration, worker)`` — the single source of truth for
    RowSGD batch routing on every backend.
    """
    check_positive(batch_size, "batch_size")
    check_positive(n_workers, "n_workers")
    base, extra = divmod(batch_size, n_workers)
    share = base + (1 if worker < extra else 0)
    if share == 0:
        return shard.take(np.empty(0, dtype=np.int64))
    rng = rng_from_seed(iteration_seed(base_seed + 7919 * (worker + 1), iteration))
    rows = rng.integers(0, shard.n_rows, size=share)
    return shard.take(rows)
