"""Row-to-column data transformation (Section IV-A).

Three loaders are modelled, matching Fig 7's contenders:

* :func:`dispatch_block_based` — Algorithm 4: the master streams block
  ids to idle workers; each worker reads its block, splits it into K
  column *worksets*, CSR-compresses them and ships one object per
  (block, destination).  Serialization overhead is paid per block-sized
  object, so the network pipe stays full.
* :func:`dispatch_naive` — "Naive-ColumnSGD": each row is split and
  shipped as K tiny objects, paying the per-object serialization
  overhead K times per row.
* :func:`load_row_partitioned` — what MLlib does: workers parse their
  local row blocks; optionally a global repartition shuffles all rows
  (MLlib-Repartition).

The two column dispatchers produce the *identical logical result* (same
worksets, same block layout) — only their simulated cost differs, which
is exactly the paper's point.  Every loader returns a
:class:`LoadReport` with simulated seconds and traffic so Fig 7 and
Fig 11(a) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datasets.dataset import Dataset
from repro.net.message import Message, MessageKind
from repro.partition.column import ColumnAssignment
from repro.partition.row import RowPartitioner
from repro.partition.workset import Workset, WorksetStore
from repro.sim.cluster import SimulatedCluster
from repro.storage.hdfs import SimulatedHDFS
from repro.storage.serialization import (
    INDEX_BYTES,
    LABEL_BYTES,
    OBJECT_OVERHEAD_BYTES,
    SHUFFLE_RECORD_OVERHEAD_BYTES,
    VALUE_BYTES,
    sparse_row_bytes,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LoadCostModel:
    """CPU constants of the loading path (seconds).

    ``parse_seconds_per_nnz`` is text->number parsing (LIBSVM lines are
    slow to parse); ``serialize_seconds_per_object`` is the per-object
    cost of Java-style serialization that the block design amortises;
    splitting and deserializing are cheap array passes.
    """

    parse_seconds_per_nnz: float = 150e-9
    split_seconds_per_nnz: float = 25e-9
    serialize_seconds_per_object: float = 3e-6
    deserialize_seconds_per_object: float = 1e-6
    deserialize_seconds_per_nnz: float = 10e-9
    row_object_create_seconds: float = 3e-6  # building one row object in memory


@dataclass
class LoadReport:
    """Outcome of one loading strategy."""

    strategy: str
    seconds: float
    bytes_shuffled: int
    n_objects_shipped: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary for reports."""
        return "{}: {:.3f}s, {:.2f} MB shuffled, {} objects".format(
            self.strategy, self.seconds, self.bytes_shuffled / 1e6, self.n_objects_shipped
        )


def _balance(per_worker: List[float]) -> float:
    """BSP phase duration: the slowest worker."""
    return max(per_worker) if per_worker else 0.0


def _build_stores(
    dataset: Dataset,
    assignment: ColumnAssignment,
    hdfs: SimulatedHDFS,
) -> Tuple[List[WorksetStore], Dict[int, int], List[List[Workset]]]:
    """Materialise every workset once; shared by both dispatchers.

    Returns the per-destination stores, the block-size layout for the
    two-phase index, and ``worksets_by_block[block_id][dest]`` so cost
    models can read sizes without recomputing projections.
    """
    K = assignment.n_workers
    stores = [WorksetStore(k, assignment.local_dim(k)) for k in range(K)]
    columns = [assignment.columns_of(k) for k in range(K)]
    block_sizes: Dict[int, int] = {}
    worksets_by_block: List[List[Workset]] = []
    for block in hdfs.blocks:
        rows = block.materialize(dataset)
        block_sizes[block.block_id] = rows.n_rows
        per_dest = []
        for dest in range(K):
            shard = rows.features.select_columns(columns[dest])
            workset = Workset(block.block_id, shard, rows.labels)
            stores[dest].put(workset)
            per_dest.append(workset)
        worksets_by_block.append(per_dest)
    return stores, block_sizes, worksets_by_block


def dispatch_block_based(
    dataset: Dataset,
    assignment: ColumnAssignment,
    cluster: SimulatedCluster,
    block_size: int = 2048,
    costs: LoadCostModel = None,
) -> Tuple[List[WorksetStore], Dict[int, int], LoadReport]:
    """Algorithm 4: block-based column dispatching.

    Returns ``(stores, block_sizes, report)`` where ``stores[k]`` is
    worker k's workset store, ``block_sizes`` feeds the two-phase index,
    and ``report`` carries the simulated loading time.
    """
    check_positive(block_size, "block_size")
    costs = costs or LoadCostModel()
    K = cluster.n_workers
    hdfs = SimulatedHDFS(
        dataset,
        block_size=block_size,
        n_locations=K,
        read_bandwidth=cluster.spec.disk_bandwidth_bytes_per_s,
    )
    stores, block_sizes, worksets_by_block = _build_stores(dataset, assignment, hdfs)

    dispatch_busy = [0.0] * K   # read + split + serialize per dispatcher
    receive_busy = [0.0] * K    # deserialize per destination
    send_bytes = [0] * K
    recv_bytes = [0] * K
    n_objects = 0

    # The master hands blocks to idle workers; with homogeneous workers
    # that degenerates to round-robin by block id.
    for i, block in enumerate(hdfs.blocks):
        dispatcher = i % K
        block_nnz = sum(ws.features.nnz for ws in worksets_by_block[i])
        dispatch_busy[dispatcher] += hdfs.read_time(block.block_id)
        dispatch_busy[dispatcher] += block_nnz * costs.split_seconds_per_nnz
        for dest, workset in enumerate(worksets_by_block[i]):
            size = workset.serialized_bytes()
            n_objects += 1
            dispatch_busy[dispatcher] += costs.serialize_seconds_per_object
            receive_busy[dest] += (
                costs.deserialize_seconds_per_object
                + workset.features.nnz * costs.deserialize_seconds_per_nnz
            )
            if dest != dispatcher:
                # The dispatcher's own workset is a local shuffle fetch:
                # it is serialized and deserialized, but never crosses
                # the network.
                send_bytes[dispatcher] += size
                recv_bytes[dest] += size
                cluster.network.send(Message(MessageKind.WORKSET, dispatcher, dest, size))

    bandwidth = cluster.network.bandwidth
    phases = {
        "dispatch": _balance(dispatch_busy),
        "network": max(
            _balance([b / bandwidth for b in send_bytes]),
            _balance([b / bandwidth for b in recv_bytes]),
        ),
        "receive": _balance(receive_busy),
    }
    seconds = cluster.cost.task_overhead + sum(phases.values())
    cluster.clock.advance(seconds)
    report = LoadReport(
        strategy="ColumnSGD",
        seconds=seconds,
        bytes_shuffled=sum(send_bytes),
        n_objects_shipped=n_objects,
        phase_seconds=phases,
    )
    return stores, block_sizes, report


def dispatch_naive(
    dataset: Dataset,
    assignment: ColumnAssignment,
    cluster: SimulatedCluster,
    block_size: int = 2048,
    costs: LoadCostModel = None,
) -> Tuple[List[WorksetStore], Dict[int, int], LoadReport]:
    """Naive-ColumnSGD: split and ship every row as K standalone objects.

    Identical stores/block layout as the block-based dispatcher (training
    is unaffected); only the simulated cost differs — K per-object
    serializations and K object headers *per row*.
    """
    check_positive(block_size, "block_size")
    costs = costs or LoadCostModel()
    K = cluster.n_workers
    hdfs = SimulatedHDFS(
        dataset,
        block_size=block_size,
        n_locations=K,
        read_bandwidth=cluster.spec.disk_bandwidth_bytes_per_s,
    )
    stores, block_sizes, worksets_by_block = _build_stores(dataset, assignment, hdfs)

    dispatch_busy = [0.0] * K
    receive_busy = [0.0] * K
    send_bytes = [0] * K
    recv_bytes = [0] * K
    n_objects = 0

    for i, block in enumerate(hdfs.blocks):
        dispatcher = i % K
        rows = block.n_rows
        block_nnz = sum(ws.features.nnz for ws in worksets_by_block[i])
        dispatch_busy[dispatcher] += hdfs.read_time(block.block_id)
        dispatch_busy[dispatcher] += block_nnz * costs.parse_seconds_per_nnz
        for dest, workset in enumerate(worksets_by_block[i]):
            # Row-by-row: every (row, dest) pair is its own serialized
            # object, so headers and serialize calls scale with rows * K.
            piece_bytes = (
                rows * (OBJECT_OVERHEAD_BYTES + LABEL_BYTES)
                + workset.features.nnz * (INDEX_BYTES + VALUE_BYTES)
            )
            n_objects += rows
            dispatch_busy[dispatcher] += rows * costs.serialize_seconds_per_object
            receive_busy[dest] += rows * costs.deserialize_seconds_per_object
            if dest != dispatcher:
                # As in block dispatch, the local pieces never hit the wire.
                send_bytes[dispatcher] += piece_bytes
                recv_bytes[dest] += piece_bytes
                cluster.network.send(
                    Message(MessageKind.WORKSET, dispatcher, dest, piece_bytes)
                )

    bandwidth = cluster.network.bandwidth
    phases = {
        "dispatch": _balance(dispatch_busy),
        "network": max(
            _balance([b / bandwidth for b in send_bytes]),
            _balance([b / bandwidth for b in recv_bytes]),
        ),
        "receive": _balance(receive_busy),
    }
    seconds = cluster.cost.task_overhead + sum(phases.values())
    cluster.clock.advance(seconds)
    report = LoadReport(
        strategy="Naive-ColumnSGD",
        seconds=seconds,
        bytes_shuffled=sum(send_bytes),
        n_objects_shipped=n_objects,
        phase_seconds=phases,
    )
    return stores, block_sizes, report


def load_row_partitioned(
    dataset: Dataset,
    cluster: SimulatedCluster,
    repartition: bool = False,
    block_size: int = 2048,
    costs: LoadCostModel = None,
    seed: int = 0,
) -> Tuple[RowPartitioner, LoadReport]:
    """MLlib-style loading: parse local row blocks, optionally repartition.

    Without repartition, workers parse the blocks already local to them
    (HDFS locality) and no shuffle happens.  With repartition, every row
    crosses the network once as a per-row shuffle record, modelling
    MLlib-Repartition in Fig 7.
    """
    costs = costs or LoadCostModel()
    K = cluster.n_workers
    hdfs = SimulatedHDFS(
        dataset,
        block_size=block_size,
        n_locations=K,
        read_bandwidth=cluster.spec.disk_bandwidth_bytes_per_s,
    )
    parse_busy = [0.0] * K
    nnz_by_block = []
    for block in hdfs.blocks:
        owner = hdfs.location(block.block_id)
        rows = block.materialize(dataset)
        nnz_by_block.append(rows.nnz)
        parse_busy[owner] += hdfs.read_time(block.block_id)
        parse_busy[owner] += rows.nnz * costs.parse_seconds_per_nnz
        parse_busy[owner] += rows.n_rows * costs.row_object_create_seconds
    phases = {"parse": _balance(parse_busy)}
    bytes_shuffled = 0
    n_objects = 0

    if repartition:
        # Global shuffle: each row crosses the network once as a shuffle
        # record (a compact per-record header, not a full Java object).
        shuffle_busy = [0.0] * K
        recv_busy = [0.0] * K
        send_bytes = [0] * K
        avg_nnz = dataset.nnz / max(dataset.n_rows, 1)
        record_bytes = (
            sparse_row_bytes(int(avg_nnz))
            - OBJECT_OVERHEAD_BYTES
            + SHUFFLE_RECORD_OVERHEAD_BYTES
        )
        rows_per_worker = dataset.n_rows / K
        for w in range(K):
            send_bytes[w] = int(rows_per_worker * record_bytes)
            shuffle_busy[w] = rows_per_worker * costs.serialize_seconds_per_object / 3
            recv_busy[w] = rows_per_worker * costs.deserialize_seconds_per_object
            if K > 1:
                cluster.network.send(
                    Message(MessageKind.WORKSET, w, (w + 1) % K, send_bytes[w])
                )
            n_objects += int(rows_per_worker)
        bytes_shuffled = sum(send_bytes)
        phases["shuffle_cpu"] = _balance(shuffle_busy) + _balance(recv_busy)
        phases["network"] = _balance([b / cluster.network.bandwidth for b in send_bytes])

    seconds = cluster.cost.task_overhead + sum(phases.values())
    cluster.clock.advance(seconds)
    partitioner = RowPartitioner(dataset, K, shuffled=repartition, seed=seed)
    report = LoadReport(
        strategy="MLlib-Repartition" if repartition else "MLlib",
        seconds=seconds,
        bytes_shuffled=bytes_shuffled,
        n_objects_shipped=n_objects,
        phase_seconds=phases,
    )
    return partitioner, report
