"""Worksets: the unit of column-partitioned storage on each worker.

A :class:`Workset` is what one dispatch message carries (Fig 5, Step 3):
the column-projection of one block's rows for one destination worker,
in CSR with local column ids, plus the rows' labels and the originating
block id.  A :class:`WorksetStore` is the per-worker "hash map of
received worksets" (Algorithm 4, line 7) that the two-phase index
samples from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.linalg import CSRMatrix
from repro.storage.serialization import workset_bytes


@dataclass
class Workset:
    """Column shard of one block: local-id CSR + labels + provenance."""

    block_id: int
    features: CSRMatrix  # n_cols == owner's local dim
    labels: np.ndarray

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if self.labels.ndim != 1 or self.labels.size != self.features.n_rows:
            raise PartitionError(
                "workset labels ({}) do not match rows ({})".format(
                    self.labels.size, self.features.n_rows
                )
            )

    @property
    def n_rows(self) -> int:
        """Rows in the originating block."""
        return self.features.n_rows

    def serialized_bytes(self) -> int:
        """Wire size of this workset (CSR-compressed, one object)."""
        return workset_bytes(self.features.n_rows, self.features.nnz)


class WorksetStore:
    """Per-worker map ``block_id -> Workset`` with batch assembly.

    ``local_dim`` pins the column dimension every stored workset must
    share (the worker's model partition width).
    """

    def __init__(self, worker_id: int, local_dim: int):
        self.worker_id = int(worker_id)
        self.local_dim = int(local_dim)
        self._worksets: Dict[int, Workset] = {}

    def put(self, workset: Workset) -> None:
        """Insert a received workset; block ids must be unique."""
        if workset.features.n_cols != self.local_dim:
            raise PartitionError(
                "workset has {} columns but worker {} owns {}".format(
                    workset.features.n_cols, self.worker_id, self.local_dim
                )
            )
        if workset.block_id in self._worksets:
            raise PartitionError(
                "duplicate workset for block {} on worker {}".format(
                    workset.block_id, self.worker_id
                )
            )
        self._worksets[workset.block_id] = workset

    def get(self, block_id: int) -> Workset:
        """Look up one workset by block id."""
        if block_id not in self._worksets:
            raise PartitionError(
                "worker {} has no workset for block {}".format(self.worker_id, block_id)
            )
        return self._worksets[block_id]

    def block_ids(self) -> list:
        """Sorted block ids present in the store."""
        return sorted(self._worksets)

    def block_sizes(self) -> Dict[int, int]:
        """Rows per stored block (two-phase index input)."""
        return {bid: ws.n_rows for bid, ws in self._worksets.items()}

    @property
    def n_rows(self) -> int:
        """Total logical rows across all worksets."""
        return sum(ws.n_rows for ws in self._worksets.values())

    @property
    def nnz(self) -> int:
        """Total stored non-zeros in this shard."""
        return sum(ws.features.nnz for ws in self._worksets.values())

    def stored_bytes(self) -> int:
        """Memory footprint of the shard (CSR + labels)."""
        return sum(ws.serialized_bytes() for ws in self._worksets.values())

    def cache_stats(self) -> Dict[str, int]:
        """Block-cache counters; an in-memory store never misses.

        The shard-backed store (:class:`repro.store.ShardWorksetStore`)
        overrides this with real hit/miss/eviction/bytes-read tallies —
        the shared shape lets accounting code treat both uniformly.
        """
        return {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "bytes_read": 0,
            "bytes_evicted": 0,
            "resident_bytes": self.stored_bytes(),
        }

    def assemble_batch(
        self, draws: Iterable[Tuple[int, int]]
    ) -> Tuple[CSRMatrix, np.ndarray]:
        """Gather the rows named by ``(block_id, offset)`` draws.

        Returns a local-dimension CSR batch plus the labels, in draw
        order.  Every worker calling this with the same draws gets
        row-aligned shards of the same logical mini-batch — the point of
        the two-phase index.
        """
        draws = list(draws)
        if not draws:
            return CSRMatrix.empty(0, self.local_dim), np.empty(0, dtype=np.float64)
        block_ids = np.asarray([b for b, _ in draws], dtype=np.int64)
        offsets = np.asarray([o for _, o in draws], dtype=np.int64)
        # Group draws by block so each block contributes one take_rows call,
        # then restore draw order with a final gather.
        order = np.argsort(block_ids, kind="stable")
        parts = []
        labels = []
        pos = 0
        while pos < order.size:
            block_id = int(block_ids[order[pos]])
            end = pos
            while end < order.size and block_ids[order[end]] == block_id:
                end += 1
            workset = self.get(block_id)
            offs = offsets[order[pos:end]]
            if offs.size and (offs.min() < 0 or offs.max() >= workset.n_rows):
                raise PartitionError(
                    "offset out of range for block {} ({} rows)".format(
                        block_id, workset.n_rows
                    )
                )
            parts.append(workset.features.take_rows(offs))
            labels.append(workset.labels[offs])
            pos = end
        stacked = CSRMatrix.vstack(parts)
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = np.arange(order.size)
        return stacked.take_rows(inverse), np.concatenate(labels)[inverse]

    def clear(self) -> None:
        """Drop all worksets (worker failure simulation)."""
        self._worksets.clear()
