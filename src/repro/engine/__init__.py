"""repro.engine — the declarative, event-scheduled round engine.

Every trainer declares its round as a :class:`RoundSpec` — typed phases
(compute / comm / master) with per-phase message kinds and byte
formulas — and :class:`RoundEngine` schedules those phases on an event
queue over the simulated clock and network, with synchronization
semantics (BSP barrier, S-backup recovery, bounded staleness,
timeout-based suspicion) supplied by pluggable :class:`SyncPolicy`
objects.  See ``docs/engine.md`` and ``docs/faults.md``.
"""

from repro.engine.cost_audit import CostAuditor, CostReport
from repro.engine.effects import (
    EffectChecker,
    PhaseAccessLog,
    atoms_conflict,
    concurrent_pairs,
    dependency_predecessors,
    happens_before,
    vector_clocks,
)
from repro.engine.engine import RoundContext, RoundEngine, RoundOutcome
from repro.engine.events import EventQueue
from repro.engine.loop import run_training_loop
from repro.engine.policy import (
    BackupSync,
    BarrierSync,
    RetrySync,
    StaleSync,
    SyncPolicy,
    TimeoutSync,
)
from repro.engine.spec import (
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundSpec,
    TrafficEnvelope,
)
from repro.engine.trace import EngineTrace, PhaseEvent, RecoveryEvent, RetryEvent

__all__ = [
    "BackupSync",
    "BarrierSync",
    "CommPhase",
    "ComputePhase",
    "CostAuditor",
    "CostReport",
    "EffectChecker",
    "EngineTrace",
    "EventQueue",
    "MasterPhase",
    "PhaseAccessLog",
    "atoms_conflict",
    "concurrent_pairs",
    "dependency_predecessors",
    "happens_before",
    "vector_clocks",
    "PhaseEvent",
    "RecoveryEvent",
    "RetryEvent",
    "RetrySync",
    "RoundContext",
    "RoundEngine",
    "RoundOutcome",
    "RoundSpec",
    "StaleSync",
    "SyncPolicy",
    "TimeoutSync",
    "TrafficEnvelope",
    "run_training_loop",
]
