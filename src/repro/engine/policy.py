"""Pluggable synchronization policies.

The paper's Section VI framing: backup computation and bounded
staleness are not different algorithms, they are different answers to
"when may a round's synchronized compute phase end?".  A
:class:`SyncPolicy` encapsulates exactly that decision, so every
trainer shares one engine and swaps the policy:

* :class:`BarrierSync` — classic BSP: wait for the slowest worker.
* :class:`BackupSync` — the paper's S-backup recovery: the phase ends
  when every group has reported; slower replicas are killed.
* :class:`StaleSync` — SSP's bounded staleness: worker ``w`` may start
  round ``t`` once round ``t - 1 - staleness`` has committed; the
  policy carries the pipeline recurrence (per-worker free times and
  commit times) across rounds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.utils.validation import check_non_negative


class SyncPolicy:
    """Strategy hooks the engine calls around a round's phases."""

    def before_round(self, ctx) -> None:
        """Prepare round state (e.g. stale start gates) on ``ctx``."""

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        """Duration of a *synchronized* compute phase.

        ``per_worker`` maps worker id to its task seconds
        (``float('inf')`` for failed workers).  May record survivors and
        kills on ``ctx`` (``ctx.chosen`` / ``ctx.killed``).
        """
        raise NotImplementedError

    def round_duration(self, ctx, critical_path_end: float) -> float:
        """Round duration given the phase DAG's critical-path end."""
        return critical_path_end


class BarrierSync(SyncPolicy):
    """Full BSP barrier: every live worker must report."""

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        finite = [s for s in per_worker.values() if s != float("inf")]
        ctx.chosen = set(
            w for w, s in per_worker.items() if s != float("inf")
        )
        return max(finite) if finite else 0.0


class BackupSync(SyncPolicy):
    """S-backup recovery (Section IV-B): first finisher per group wins.

    With ``S = 0`` the groups are singletons and this degenerates to
    :class:`BarrierSync` semantics — which is why the plain ColumnSGD
    driver and its backup variant share one spec.
    """

    def __init__(self, groups):
        self.groups = groups

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        finish = [per_worker[w] for w in range(self.groups.n_workers)]
        chosen = self.groups.fastest_per_group(finish)
        ctx.chosen = set(chosen)
        ctx.killed = set()
        if self.groups.backup > 0:
            recovery_time = max(finish[w] for w in chosen)
            ctx.killed = {
                w
                for w in range(self.groups.n_workers)
                if finish[w] > recovery_time and w not in ctx.failed
            }
            return recovery_time
        return max(f for f in finish if f != float("inf"))


class StaleSync(SyncPolicy):
    """SSP bounded staleness (Cui et al., ATC'14) as a policy.

    Carries the pipeline recurrence across rounds: ``worker_free[w]``
    is when worker ``w``'s last task ended, ``commits[t]`` is when
    round ``t``'s update was committed at the servers.  Round ``t``'s
    compute may start at ``commits[t - 1 - staleness]``; the round's
    *duration* is the commit-to-commit delta (clamped at zero — a
    pipelined commit can land before its predecessor's wall time).

    A fresh policy instance is built per ``fit()`` (inside the
    trainer's ``round_spec()``), so the recurrence state never leaks
    between runs.
    """

    def __init__(self, staleness: int, n_workers: int):
        check_non_negative(staleness, "staleness")
        self.staleness = int(staleness)
        self.worker_free: List[float] = [0.0] * int(n_workers)
        self.commits: List[float] = []

    def before_round(self, ctx) -> None:
        t = ctx.t
        gate = (
            self.commits[t - 1 - self.staleness]
            if t - 1 - self.staleness >= 0
            else 0.0
        )
        ctx.start_times = [
            max(self.worker_free[w], gate) for w in range(len(self.worker_free))
        ]

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        for w, task in per_worker.items():
            self.worker_free[w] = ctx.start_times[w] + task
        ctx.chosen = set(per_worker)
        base = self.commits[ctx.t - 1] if ctx.t else 0.0
        # Round-relative busy span; may be negative when the pipeline
        # runs ahead of the previous commit.
        return max(self.worker_free) - base

    def round_duration(self, ctx, critical_path_end: float) -> float:
        base = self.commits[ctx.t - 1] if ctx.t else 0.0
        commit_time = base + critical_path_end
        self.commits.append(commit_time)
        return max(critical_path_end, 0.0)
