"""Pluggable synchronization policies.

The paper's Section VI framing: backup computation and bounded
staleness are not different algorithms, they are different answers to
"when may a round's synchronized compute phase end?".  A
:class:`SyncPolicy` encapsulates exactly that decision, so every
trainer shares one engine and swaps the policy:

* :class:`BarrierSync` — classic BSP: wait for the slowest worker.
* :class:`BackupSync` — the paper's S-backup recovery: the phase ends
  when every group has reported; slower replicas are killed.
* :class:`StaleSync` — SSP's bounded staleness: worker ``w`` may start
  round ``t`` once round ``t - 1 - staleness`` has committed; the
  policy carries the pipeline recurrence (per-worker free times and
  commit times) across rounds.
* :class:`TimeoutSync` / :class:`RetrySync` — timeout-based failure
  suspicion: the master waits ``alpha x median(finish)``, suspects
  missing workers, optionally retries the gather with exponential
  backoff, then degrades to group recovery / stale statistics instead
  of hanging on a dead worker.
"""

from __future__ import annotations

from statistics import median
from typing import Dict, List

from repro.errors import ConfigurationError, StatisticsRecoveryError
from repro.utils.validation import check_non_negative


class SyncPolicy:
    """Strategy hooks the engine calls around a round's phases."""

    def before_round(self, ctx) -> None:
        """Prepare round state (e.g. stale start gates) on ``ctx``."""

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        """Duration of a *synchronized* compute phase.

        ``per_worker`` maps worker id to its task seconds
        (``float('inf')`` for failed workers).  May record survivors and
        kills on ``ctx`` (``ctx.chosen`` / ``ctx.killed``).
        """
        raise NotImplementedError

    def round_duration(self, ctx, critical_path_end: float) -> float:
        """Round duration given the phase DAG's critical-path end."""
        return critical_path_end


class BarrierSync(SyncPolicy):
    """Full BSP barrier: every live worker must report."""

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        finite = [s for s in per_worker.values() if s != float("inf")]
        ctx.chosen = set(
            w for w, s in per_worker.items() if s != float("inf")
        )
        return max(finite) if finite else 0.0


class BackupSync(SyncPolicy):
    """S-backup recovery (Section IV-B): first finisher per group wins.

    With ``S = 0`` the groups are singletons and this degenerates to
    :class:`BarrierSync` semantics — which is why the plain ColumnSGD
    driver and its backup variant share one spec.
    """

    def __init__(self, groups):
        self.groups = groups

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        finish = [per_worker[w] for w in range(self.groups.n_workers)]
        chosen = self.groups.fastest_per_group(finish)
        ctx.chosen = set(chosen)
        ctx.killed = set()
        if self.groups.backup > 0:
            recovery_time = max(finish[w] for w in chosen)
            ctx.killed = {
                w
                for w in range(self.groups.n_workers)
                if finish[w] > recovery_time and w not in ctx.failed
            }
            return recovery_time
        return max(f for f in finish if f != float("inf"))


class TimeoutSync(SyncPolicy):
    """Timeout-based failure suspicion with optional gather retries.

    The master cannot see ``float('inf')`` finish times — in a real
    deployment it only observes *absence*.  This policy models that:
    it waits until a deadline of ``alpha x median(finish of arrived
    workers)`` in sim-time, then

    1. if **every** worker reported, proceeds at the last arrival
       (plain barrier semantics — no suspicion, no trace event);
    2. if workers are missing but every backup group is covered,
       proceeds at the deadline with the fastest arrived member per
       group (Fig 6's recovery rule, reached by timeout rather than
       omniscience);
    3. otherwise retries the gather up to ``max_retries`` times,
       stretching the deadline by ``backoff`` each attempt (late
       stragglers arrive during a retry window; crashed workers never
       do), and finally either raises
       :class:`~repro.errors.StatisticsRecoveryError`
       (``on_exhausted='raise'``) or marks the uncovered groups stale
       (``on_exhausted='stale'``) so the master reuses their previous
       round's contribution.

    Every deadline expiry is recorded as a
    :class:`~repro.engine.trace.RetryEvent` on ``cluster.engine_trace``
    (``resolved``: ``'retry'`` for an expiry that triggered another
    attempt, ``'arrived'`` / ``'stale'`` / ``'failed'`` for the final
    one).  Workers are never killed by suspicion — a late straggler
    keeps its partitions and rejoins the next round.

    All times here are **phase-relative**: the per-worker finish times
    are durations measured from the synchronized phase's start, so the
    deadline and the returned phase duration are too.  The engine maps
    them onto the round timeline by adding the phase's scheduled start
    offset — under an overlapped spec (``after=`` DAG) the synchronized
    phase may start mid-round, and the policy's decisions are unchanged
    by that offset.
    """

    def __init__(
        self,
        groups,
        alpha: float = 3.0,
        max_retries: int = 0,
        backoff: float = 2.0,
        on_exhausted: str = "raise",
    ):
        if alpha < 1.0:
            raise ConfigurationError(
                "alpha must be >= 1 (a deadline below the median finish "
                "would suspect half the cluster), got {}".format(alpha)
            )
        check_non_negative(max_retries, "max_retries")
        if backoff < 1.0:
            raise ConfigurationError(
                "backoff must be >= 1, got {}".format(backoff)
            )
        if on_exhausted not in ("raise", "stale"):
            raise ConfigurationError(
                "on_exhausted must be 'raise' or 'stale', got {!r}".format(on_exhausted)
            )
        self.groups = groups
        self.alpha = float(alpha)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.on_exhausted = on_exhausted

    # ------------------------------------------------------------------
    def _coverage(self, arrived):
        """(fastest arrived member per covered group, uncovered groups)."""
        chosen: List[int] = []
        missing: List[int] = []
        for g, members in enumerate(self.groups.groups()):
            present = [w for w in members if w in arrived]
            if present:
                chosen.append(min(present, key=lambda w: arrived[w]))
            else:
                missing.append(g)
        return chosen, missing

    def _record(self, ctx, attempt, suspects, deadline, resolved) -> None:
        trace = getattr(ctx.cluster, "engine_trace", None)
        if trace is not None:
            from repro.engine.trace import RetryEvent

            trace.add_retry(
                RetryEvent(
                    round=ctx.t,
                    attempt=attempt,
                    suspects=tuple(sorted(suspects)),
                    deadline_s=deadline,
                    resolved=resolved,
                )
            )

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        finish = [per_worker[w] for w in range(self.groups.n_workers)]
        finite = [f for f in finish if f != float("inf")]
        ctx.killed = set()
        deadline = self.alpha * median(finite) if finite else 0.0
        attempt = 0
        while True:
            arrived = {
                w: finish[w]
                for w in range(self.groups.n_workers)
                if finish[w] <= deadline
            }
            if len(arrived) == self.groups.n_workers:
                # nobody missing: plain barrier, no suspicion episode
                ctx.chosen = set(arrived)
                return max(finite) if attempt == 0 else max(deadline / self.backoff, max(finite))
            suspects = [w for w in range(self.groups.n_workers) if w not in arrived]
            chosen, missing = self._coverage(arrived)
            if not missing:
                self._record(ctx, attempt, suspects, deadline, "arrived")
                ctx.chosen = set(chosen)
                return deadline
            if attempt >= self.max_retries:
                if self.on_exhausted == "stale":
                    self._record(ctx, attempt, suspects, deadline, "stale")
                    ctx.chosen = set(chosen)
                    ctx.stale_groups = set(missing)
                    return deadline
                self._record(ctx, attempt, suspects, deadline, "failed")
                raise StatisticsRecoveryError(missing)
            self._record(ctx, attempt, suspects, deadline, "retry")
            attempt += 1
            deadline *= self.backoff


class RetrySync(TimeoutSync):
    """:class:`TimeoutSync` preconfigured to retry before giving up.

    The shorthand the chaos suite and the driver's
    ``sync_policy='retry'`` use: two exponential-backoff retries, then
    stale-statistics degradation instead of aborting the job.
    """

    def __init__(self, groups, alpha: float = 3.0, max_retries: int = 2,
                 backoff: float = 2.0, on_exhausted: str = "stale"):
        super().__init__(
            groups,
            alpha=alpha,
            max_retries=max_retries,
            backoff=backoff,
            on_exhausted=on_exhausted,
        )


class StaleSync(SyncPolicy):
    """SSP bounded staleness (Cui et al., ATC'14) as a policy.

    Carries the pipeline recurrence across rounds: ``worker_free[w]``
    is when worker ``w``'s last task ended, ``commits[t]`` is when
    round ``t``'s update was committed at the servers.  Round ``t``'s
    compute may start at ``commits[t - 1 - staleness]``; the round's
    *duration* is the commit-to-commit delta (clamped at zero — a
    pipelined commit can land before its predecessor's wall time).

    A fresh policy instance is built per ``fit()`` (inside the
    trainer's ``round_spec()``), so the recurrence state never leaks
    between runs.
    """

    def __init__(self, staleness: int, n_workers: int):
        check_non_negative(staleness, "staleness")
        self.staleness = int(staleness)
        self.worker_free: List[float] = [0.0] * int(n_workers)
        self.commits: List[float] = []

    def before_round(self, ctx) -> None:
        t = ctx.t
        gate = (
            self.commits[t - 1 - self.staleness]
            if t - 1 - self.staleness >= 0
            else 0.0
        )
        ctx.start_times = [
            max(self.worker_free[w], gate) for w in range(len(self.worker_free))
        ]

    def resolve(self, ctx, per_worker: Dict[int, float]) -> float:
        for w, task in per_worker.items():
            self.worker_free[w] = ctx.start_times[w] + task
        ctx.chosen = set(per_worker)
        base = self.commits[ctx.t - 1] if ctx.t else 0.0
        # Round-relative busy span; may be negative when the pipeline
        # runs ahead of the previous commit.
        return max(self.worker_free) - base

    def round_duration(self, ctx, critical_path_end: float) -> float:
        base = self.commits[ctx.t - 1] if ctx.t else 0.0
        commit_time = base + critical_path_end
        self.commits.append(commit_time)
        return max(critical_path_end, 0.0)
