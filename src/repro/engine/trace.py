"""Per-phase trace events emitted by the round engine.

Every phase the engine runs adds one :class:`PhaseEvent` carrying its
round, category, and simulated ``[start, end)`` interval — offsets are
round-relative, ``sim_start``/``sim_end`` absolute.  The trace is
attached to the cluster as ``cluster.engine_trace`` so analyses find it
next to the clock and network counters it complements, and
:func:`repro.experiments.gantt.render_engine_trace` renders it.
``SimulatedCluster.reset()`` clears it along with the other ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PhaseEvent:
    """One executed phase of one round."""

    round: int
    phase: str
    category: str            # 'compute' | 'comm' | 'master'
    start: float             # round-relative offset (s)
    end: float
    sim_start: float         # absolute simulated time (s)
    sim_end: float
    kind: Optional[str] = None  # message kind for comm phases

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RetryEvent:
    """One gather retry by a timeout-based sync policy.

    Recorded by :class:`~repro.engine.policy.TimeoutSync` every time the
    master's deadline expires with workers still missing.  ``resolved``
    tells how the episode ended: ``'arrived'`` (a retry succeeded),
    ``'stale'`` (the policy substituted cached statistics), or
    ``'failed'`` (escalated to :class:`StatisticsRecoveryError`).

    ``deadline_s`` is **phase-relative**: an offset from the start of
    the synchronized phase, not from the start of the round.  The two
    coincide in a strictly sequential spec (the synchronized compute
    phase starts at offset 0), but under an overlapped spec the phase
    may start later in the round; the deadline is still ``alpha x
    median(per-worker finish)`` measured within the phase's own window,
    and the engine places it on the round timeline by adding the
    phase's scheduled start.
    """

    round: int
    attempt: int             # 0 = the initial deadline, 1.. = retries
    suspects: Tuple[int, ...]  # workers missing at this deadline
    deadline_s: float        # phase-relative deadline that expired
    resolved: str = "arrived"


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery episode (task / worker / master) with its cost split."""

    round: int
    kind: str                # 'task' | 'worker' | 'master'
    mode: str                # 'restart' | 'replica' | 'checkpoint' | 'zero-init' | 'reload'
    worker: Optional[int]    # None for master recovery
    detect_s: float = 0.0    # failure-detection delay (heartbeat timeout)
    reload_s: float = 0.0    # state reload (disk + network)
    replay_s: float = 0.0    # master replay from last checkpoint

    @property
    def total_s(self) -> float:
        return self.detect_s + self.reload_s + self.replay_s


@dataclass
class EngineTrace:
    """Ordered phase events of an engine-driven run, plus the fault
    pipeline's retry and recovery episodes."""

    system: str = ""
    events: List[PhaseEvent] = field(default_factory=list)
    retries: List[RetryEvent] = field(default_factory=list)
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    def add(self, event: PhaseEvent) -> None:
        self.events.append(event)

    def add_retry(self, event: RetryEvent) -> None:
        self.retries.append(event)

    def add_recovery(self, event: RecoveryEvent) -> None:
        self.recoveries.append(event)

    def round_retries(self, round_index: int) -> List[RetryEvent]:
        """Retry episodes of one round, in order."""
        return [e for e in self.retries if e.round == round_index]

    def round_recoveries(self, round_index: int) -> List[RecoveryEvent]:
        """Recovery episodes of one round, in order."""
        return [e for e in self.recoveries if e.round == round_index]

    def rounds(self) -> List[int]:
        """Round indices present, in order of first appearance."""
        seen: List[int] = []
        for event in self.events:
            if event.round not in seen:
                seen.append(event.round)
        return seen

    def round_events(self, round_index: int) -> List[PhaseEvent]:
        """Events of one round, in schedule order."""
        return [e for e in self.events if e.round == round_index]

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per phase name across all rounds (time breakdown)."""
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.phase] = totals.get(event.phase, 0.0) + event.duration
        return totals

    def __len__(self) -> int:
        return len(self.events)
