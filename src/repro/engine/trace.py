"""Per-phase trace events emitted by the round engine.

Every phase the engine runs adds one :class:`PhaseEvent` carrying its
round, category, and simulated ``[start, end)`` interval — offsets are
round-relative, ``sim_start``/``sim_end`` absolute.  The trace is
attached to the cluster as ``cluster.engine_trace`` so analyses find it
next to the clock and network counters it complements, and
:func:`repro.experiments.gantt.render_engine_trace` renders it.
``SimulatedCluster.reset()`` clears it along with the other ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PhaseEvent:
    """One executed phase of one round."""

    round: int
    phase: str
    category: str            # 'compute' | 'comm' | 'master'
    start: float             # round-relative offset (s)
    end: float
    sim_start: float         # absolute simulated time (s)
    sim_end: float
    kind: Optional[str] = None  # message kind for comm phases

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EngineTrace:
    """Ordered phase events of an engine-driven run."""

    system: str = ""
    events: List[PhaseEvent] = field(default_factory=list)

    def add(self, event: PhaseEvent) -> None:
        self.events.append(event)

    def rounds(self) -> List[int]:
        """Round indices present, in order of first appearance."""
        seen: List[int] = []
        for event in self.events:
            if event.round not in seen:
                seen.append(event.round)
        return seen

    def round_events(self, round_index: int) -> List[PhaseEvent]:
        """Events of one round, in schedule order."""
        return [e for e in self.events if e.round == round_index]

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per phase name across all rounds (time breakdown)."""
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.phase] = totals.get(event.phase, 0.0) + event.duration
        return totals

    def __len__(self) -> int:
        return len(self.events)
