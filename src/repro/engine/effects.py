"""Dynamic phase-effect recording and vector-clock race checking.

The engine executes a :class:`~repro.engine.spec.RoundSpec`'s phases in
declaration order even when the ``after=`` dependency graph says two
phases overlap in simulated time.  That makes overlap *cheap* — no real
concurrency — but also *dangerous*: a phase that reads state written by
a phase it is declared concurrent with is a logical race that the
sequential execution silently hides, and that would corrupt the run on
a real cluster where the phases genuinely interleave.

This module is the runtime half of the defence (the static half is lint
rule R012 in :mod:`repro.lint.effects`).  With ``check_effects=True``
the engine routes every phase executor through recording views of the
trainer and the :class:`~repro.engine.engine.RoundContext`: attribute
reads/writes — including ``ctx.scratch`` accesses at key granularity —
are logged per phase.  After the round, phases are compared pairwise
under the happens-before relation induced by the spec's ``after=``
edges, encoded as vector clocks; two *concurrent* phases whose access
sets conflict (write/read or write/write on the same atom) raise
:class:`~repro.errors.EffectRaceError` naming the witness atoms.

Effect atoms are attribute-rooted strings::

    self._workers            # trainer attribute
    ctx.chosen               # round-context attribute
    ctx.scratch[reduced]     # one scratch key
    ctx.scratch[*]           # whole-dict access (iteration, len, ...)

``ctx.trainer`` is normalised back to ``self`` so both spellings land
on the same atom.  Method *calls* are not reads: ``self._helper()``
re-binds the class function onto the recording view, so the helper's
own attribute accesses are logged under the calling phase — the dynamic
mirror of the static analyzer's interprocedural inlining.  Deep
mutation of objects reached through a recorded read (e.g. the worker
objects inside ``self._workers``) is *not* observed here; the static
analyzer over-approximates those as writes, so the dynamic log is
always a subset of the static effect set — the agreement the
``check_effects`` test suite pins for every trainer.
"""

from __future__ import annotations

import types
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import EffectRaceError

#: atom spelling for whole-scratch access (iteration, len, clear, ...)
SCRATCH_WILDCARD = "ctx.scratch[*]"


def scratch_atom(key: object) -> str:
    """The effect atom for one ``ctx.scratch`` subscript."""
    if isinstance(key, str):
        return "ctx.scratch[{}]".format(key)
    return SCRATCH_WILDCARD


def atoms_conflict(a: str, b: str) -> bool:
    """Two atoms touch the same state (equal, or wildcard overlap)."""
    if a == b:
        return True
    if a == SCRATCH_WILDCARD and b.startswith("ctx.scratch["):
        return True
    if b == SCRATCH_WILDCARD and a.startswith("ctx.scratch["):
        return True
    return False


# ----------------------------------------------------------------------
# happens-before from after= edges, as vector clocks
# ----------------------------------------------------------------------
def dependency_predecessors(phases: Sequence) -> Dict[str, Tuple[str, ...]]:
    """Direct predecessor names per phase, with ``after=`` defaults
    resolved: ``None`` chains to the previously declared phase, ``()``
    starts at round offset zero with no ordering constraints."""
    preds: Dict[str, Tuple[str, ...]] = {}
    previous: Optional[str] = None
    for phase in phases:
        if phase.after is None:
            preds[phase.name] = (previous,) if previous is not None else ()
        else:
            preds[phase.name] = tuple(phase.after)
        previous = phase.name
    return preds


def vector_clocks(phases: Sequence) -> Dict[str, Tuple[int, ...]]:
    """One clock per phase over declaration-indexed components.

    ``clock[p][i] == 1`` iff phase ``i`` happens-before ``p`` (or is
    ``p`` itself), so componentwise dominance *is* the happens-before
    relation and incomparable clocks mean concurrent phases.
    """
    names = [phase.name for phase in phases]
    preds = dependency_predecessors(phases)
    ancestors: Dict[str, Set[str]] = {}
    for name in names:  # predecessors are always declared earlier
        anc: Set[str] = set()
        for dep in preds[name]:
            anc.add(dep)
            anc |= ancestors[dep]
        ancestors[name] = anc
    clocks: Dict[str, Tuple[int, ...]] = {}
    for name in names:
        marked = ancestors[name] | {name}
        clocks[name] = tuple(1 if n in marked else 0 for n in names)
    return clocks


def happens_before(clocks: Dict[str, Tuple[int, ...]], a: str, b: str) -> bool:
    """Vector-clock dominance: ``a`` is ordered before ``b``."""
    if a == b:
        return False
    ca, cb = clocks[a], clocks[b]
    return all(x <= y for x, y in zip(ca, cb))


def concurrent_pairs(phases: Sequence) -> List[Tuple[str, str]]:
    """All declaration-ordered phase pairs left unordered by ``after=``."""
    clocks = vector_clocks(phases)
    names = [phase.name for phase in phases]
    pairs: List[Tuple[str, str]] = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if not happens_before(clocks, a, b) and not happens_before(clocks, b, a):
                pairs.append((a, b))
    return pairs


# ----------------------------------------------------------------------
# per-phase access logs and the recording views
# ----------------------------------------------------------------------
class PhaseAccessLog:
    """Attribute atoms one phase read and wrote during one round."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()


class _ScratchView:
    """Recording wrapper around ``ctx.scratch`` (key-granular atoms)."""

    __slots__ = ("_target", "_log")

    def __init__(self, target: dict, log: PhaseAccessLog):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_log", log)

    def __getitem__(self, key):
        self._log.reads.add(scratch_atom(key))
        return self._target[key]

    def __setitem__(self, key, value) -> None:
        self._log.writes.add(scratch_atom(key))
        self._target[key] = value

    def __delitem__(self, key) -> None:
        self._log.writes.add(scratch_atom(key))
        del self._target[key]

    def __contains__(self, key) -> bool:
        self._log.reads.add(scratch_atom(key))
        return key in self._target

    def get(self, key, default=None):
        self._log.reads.add(scratch_atom(key))
        return self._target.get(key, default)

    def setdefault(self, key, default=None):
        self._log.reads.add(scratch_atom(key))
        self._log.writes.add(scratch_atom(key))
        return self._target.setdefault(key, default)

    def pop(self, key, *default):
        self._log.writes.add(scratch_atom(key))
        return self._target.pop(key, *default)

    def update(self, *args, **kwargs) -> None:
        self._log.writes.add(SCRATCH_WILDCARD)
        self._target.update(*args, **kwargs)

    def clear(self) -> None:
        self._log.writes.add(SCRATCH_WILDCARD)
        self._target.clear()

    def keys(self):
        self._log.reads.add(SCRATCH_WILDCARD)
        return self._target.keys()

    def values(self):
        self._log.reads.add(SCRATCH_WILDCARD)
        return self._target.values()

    def items(self):
        self._log.reads.add(SCRATCH_WILDCARD)
        return self._target.items()

    def __iter__(self):
        self._log.reads.add(SCRATCH_WILDCARD)
        return iter(self._target)

    def __len__(self) -> int:
        self._log.reads.add(SCRATCH_WILDCARD)
        return len(self._target)


class _TrainerView:
    """Recording proxy for the trainer (``self`` inside executors).

    Class functions are re-bound onto the view so transitive
    ``self.method()`` calls stay recorded; everything else is logged as
    an attribute read/write and delegated to the real trainer.
    """

    def __init__(self, target, log: PhaseAccessLog):
        object.__setattr__(self, "_effects_target", target)
        object.__setattr__(self, "_effects_log", log)

    def __getattr__(self, name: str):
        target = object.__getattribute__(self, "_effects_target")
        log = object.__getattribute__(self, "_effects_log")
        if name not in target.__dict__:
            for klass in type(target).__mro__:
                member = klass.__dict__.get(name)
                if member is None:
                    continue
                if isinstance(member, types.FunctionType):
                    return types.MethodType(member, self)
                break
        log.reads.add("self.{}".format(name))
        return getattr(target, name)

    def __setattr__(self, name: str, value) -> None:
        target = object.__getattribute__(self, "_effects_target")
        log = object.__getattribute__(self, "_effects_log")
        log.writes.add("self.{}".format(name))
        setattr(target, name, value)


class _CtxView:
    """Recording proxy for the :class:`RoundContext`.

    ``ctx.scratch`` hands out the key-granular scratch view and
    ``ctx.trainer`` the trainer view (so ``ctx.trainer.x`` lands on the
    ``self.x`` atom); both indirections are free of their own atom.
    """

    def __init__(self, target, log: PhaseAccessLog, trainer_view: _TrainerView):
        object.__setattr__(self, "_effects_target", target)
        object.__setattr__(self, "_effects_log", log)
        object.__setattr__(self, "_effects_trainer", trainer_view)
        object.__setattr__(self, "_effects_scratch", _ScratchView(target.scratch, log))

    def __getattr__(self, name: str):
        if name == "scratch":
            return object.__getattribute__(self, "_effects_scratch")
        if name == "trainer":
            return object.__getattribute__(self, "_effects_trainer")
        target = object.__getattribute__(self, "_effects_target")
        log = object.__getattribute__(self, "_effects_log")
        log.reads.add("ctx.{}".format(name))
        return getattr(target, name)

    def __setattr__(self, name: str, value) -> None:
        target = object.__getattribute__(self, "_effects_target")
        log = object.__getattribute__(self, "_effects_log")
        log.writes.add("ctx.{}".format(name))
        setattr(target, name, value)


# ----------------------------------------------------------------------
# the checker the engine drives
# ----------------------------------------------------------------------
class EffectChecker:
    """Record per-phase effects and validate them against the DAG.

    One instance serves an engine for the lifetime of a training run;
    ``logs`` always holds the most recent round's per-phase access
    logs, which the agreement tests compare to the static effect sets.
    """

    def __init__(self, spec):
        self.spec = spec
        self.clocks = vector_clocks(spec.phases)
        self.pairs = concurrent_pairs(spec.phases)
        self.logs: Dict[str, PhaseAccessLog] = {}

    def begin_round(self) -> None:
        self.logs = {phase.name: PhaseAccessLog() for phase in self.spec.phases}

    def views(self, phase_name: str, trainer, ctx) -> Tuple[_TrainerView, _CtxView]:
        """Recording stand-ins for (trainer, ctx) during one phase."""
        log = self.logs[phase_name]
        trainer_view = _TrainerView(trainer, log)
        return trainer_view, _CtxView(ctx, log, trainer_view)

    def finish_round(self, t: int) -> None:
        """Raise :class:`EffectRaceError` on any concurrent conflict."""
        problems: List[str] = []
        for a, b in self.pairs:
            log_a, log_b = self.logs[a], self.logs[b]
            for first, second, fl, sl in ((a, b, log_a, log_b), (b, a, log_b, log_a)):
                for written in sorted(fl.writes):
                    touched = sorted(
                        atom
                        for atom in (sl.reads | sl.writes)
                        if atoms_conflict(written, atom)
                    )
                    for atom in touched:
                        kind = "writes" if atom in sl.writes else "reads"
                        problems.append(
                            "concurrent phases {!r} and {!r} conflict: "
                            "{!r} writes {} which {!r} {} {}".format(
                                first, second, first, written, second, kind, atom
                            )
                        )
        if problems:
            raise EffectRaceError(t, problems)
