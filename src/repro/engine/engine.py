"""The discrete-event round engine.

One :class:`RoundEngine` executes a trainer's
:class:`~repro.engine.spec.RoundSpec` round by round: it schedules each
phase on an :class:`~repro.engine.events.EventQueue` at the offset its
dependencies dictate, runs compute executors on the trainer, emits
communication through the :class:`~repro.runtime.Runtime` transport
surface (clock + gather/broadcast/allreduce + traffic counters — the
simulated star topology behind :class:`~repro.runtime.SimRuntime`),
lets the spec's :class:`~repro.engine.policy.SyncPolicy` resolve
synchronized phases and the round duration, and records one
:class:`~repro.engine.trace.PhaseEvent` per phase.

Because the engine both *emits* a comm phase's messages and *derives*
the round's expected traffic from the very same declaration, the
``(count, bytes)`` expectation handed to the runtime
:class:`~repro.net.protocol.ProtocolChecker` cannot drift from the
emissions — the drift class that lint rule R010 and PRs 1-2's checker
were built to police is gone by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.engine.cost_audit import CostAuditor
from repro.engine.effects import EffectChecker
from repro.engine.events import EventQueue
from repro.engine.spec import CommPhase, ComputePhase, MasterPhase, RoundSpec
from repro.engine.trace import EngineTrace, PhaseEvent
from repro.net.message import MessageKind


class RoundContext:
    """Mutable per-round state shared by a round's phase executors."""

    def __init__(self, t: int, trainer, cluster, slowdowns=None):
        self.t = t
        self.trainer = trainer
        self.cluster = cluster
        #: per-worker straggler multipliers for this round (None when the
        #: trainer has no straggler model)
        self.slowdowns = slowdowns
        #: free-form phase-to-phase hand-off (statistics buffers, batch
        #: metadata, message sizes, ...)
        self.scratch: Dict[str, object] = {}
        #: workers whose statistics the sync policy selected
        self.chosen: Set[int] = set()
        #: stragglers the policy killed after recovery
        self.killed: Set[int] = set()
        #: permanently failed workers (set by the compute executor)
        self.failed: frozenset = frozenset()
        #: backup groups whose statistics never arrived this round; the
        #: master substitutes their previous contribution (TimeoutSync /
        #: RetrySync with ``on_exhausted='stale'``)
        self.stale_groups: Set[int] = set()
        #: per-worker start offsets (set by StaleSync.before_round)
        self.start_times = None
        #: the round's sync policy, for executors that need its state
        #: (SSP's version selection reads the commit history)
        self.sync = None


@dataclass
class RoundOutcome:
    """Everything one engine round produced, for the loop and analyses."""

    duration: float
    phase_seconds: Dict[str, float]
    worker_seconds: Dict[str, Dict[int, float]]
    killed: Set[int] = field(default_factory=set)
    chosen: Set[int] = field(default_factory=set)
    #: per-kind expected traffic — exact ``(count, bytes)`` tuples
    #: derived from the comm phases, overridden by the spec's envelopes
    expected: Dict[MessageKind, object] = field(default_factory=dict)


class RoundEngine:
    """Execute a trainer's RoundSpec on an execution runtime.

    The engine talks to the substrate only through the
    :class:`~repro.runtime.Runtime` surface; by default it uses the
    cluster's :attr:`~repro.sim.cluster.SimulatedCluster.runtime`
    (a :class:`~repro.runtime.SimRuntime`), which forwards every call
    to the same topology/clock objects the engine used to touch
    directly — so trajectories are bit-identical to the pre-runtime
    code path.  Pass ``runtime=`` to substitute another backend.

    Construction attaches a fresh :class:`EngineTrace` to
    ``cluster.engine_trace`` (replacing any previous run's trace;
    ``SimulatedCluster.reset()`` clears it).
    """

    def __init__(self, trainer, cluster, spec: Optional[RoundSpec] = None,
                 straggler=None, check_effects: bool = False,
                 check_cost: bool = False, runtime=None):
        self.trainer = trainer
        self.cluster = cluster
        self.runtime = runtime if runtime is not None else cluster.runtime
        self.spec = spec if spec is not None else trainer.round_spec()
        self.straggler = straggler
        self.trace = EngineTrace(system=self.spec.system)
        #: per-phase access recorder + vector-clock race checker (the
        #: runtime twin of lint rule R012); None when not requested
        self.effects: Optional[EffectChecker] = (
            EffectChecker(self.spec) if check_effects else None
        )
        #: measured-vs-charged kernel work audit (the runtime twin of
        #: lint rule R016); None when not requested
        self.cost_audit: Optional[CostAuditor] = (
            CostAuditor() if check_cost else None
        )
        cluster.engine_trace = self.trace

    # ------------------------------------------------------------------
    def run_round(self, t: int) -> RoundOutcome:
        """Execute round ``t``; does not advance the cluster clock."""
        ctx = RoundContext(
            t,
            self.trainer,
            self.cluster,
            slowdowns=self.straggler.slowdowns(t) if self.straggler is not None else None,
        )
        sync = self.spec.sync
        ctx.sync = sync
        sync.before_round(ctx)

        round_start = self.runtime.clock.now()
        queue = EventQueue()
        ends: Dict[str, float] = {}
        phase_seconds: Dict[str, float] = {}
        worker_seconds: Dict[str, Dict[int, float]] = {}
        expected: Dict[MessageKind, tuple] = {}

        if self.effects is not None:
            self.effects.begin_round()
        if self.cost_audit is not None:
            self.cost_audit.begin_round()

        previous = None
        for phase in self.spec.phases:
            if phase.after is None:
                start = ends[previous] if previous is not None else 0.0
            elif len(phase.after) == 0:
                start = 0.0  # overlaps everything declared before it
            else:
                start = max(ends[dep] for dep in phase.after)
            if self.effects is not None:
                trainer_view, ctx_view = self.effects.views(
                    phase.name, self.trainer, ctx
                )
            else:
                trainer_view, ctx_view = self.trainer, ctx
            duration = self._execute(
                phase, ctx_view, expected, worker_seconds, trainer_view
            )
            ends[phase.name] = start + duration
            phase_seconds[phase.name] = duration
            queue.push(start, (phase, start, start + duration))
            previous = phase.name

        if self.effects is not None:
            self.effects.finish_round(t)
        if self.cost_audit is not None:
            self.cost_audit.finish_round(t)

        critical_end = max(ends.values()) if ends else 0.0
        duration = sync.round_duration(ctx, critical_end)

        for _, (phase, start, end) in queue.drain():
            self.trace.add(
                PhaseEvent(
                    round=t,
                    phase=phase.name,
                    category=_CATEGORY[type(phase)],
                    start=start,
                    end=end,
                    sim_start=round_start + start,
                    sim_end=round_start + end,
                    kind=phase.kind.value if isinstance(phase, CommPhase) else None,
                )
            )

        if self.spec.envelopes is not None:
            expected.update(getattr(self.trainer, self.spec.envelopes)(ctx))
        self._expect_retries(expected)
        return RoundOutcome(
            duration=duration,
            phase_seconds=phase_seconds,
            worker_seconds=worker_seconds,
            killed=set(ctx.killed),
            chosen=set(ctx.chosen),
            expected=expected,
        )

    # ------------------------------------------------------------------
    def _execute(self, phase, ctx, expected, worker_seconds, trainer=None) -> float:
        trainer = trainer if trainer is not None else self.trainer
        if isinstance(phase, ComputePhase):
            per_worker = getattr(trainer, phase.run)(ctx)
            worker_seconds[phase.name] = dict(per_worker)
            if phase.synchronized:
                return self.spec.sync.resolve(ctx, per_worker)
            finite = [s for s in per_worker.values() if s != float("inf")]
            return max(finite) if finite else 0.0
        if isinstance(phase, MasterPhase):
            return float(getattr(trainer, phase.run)(ctx))
        return self._execute_comm(phase, ctx, expected, trainer)

    def _execute_comm(self, phase: CommPhase, ctx, expected, trainer=None) -> float:
        trainer = trainer if trainer is not None else self.trainer
        runtime = self.runtime
        sizes = getattr(trainer, phase.sizes)(ctx)
        if phase.pattern == "gather":
            sizes = [int(s) for s in sizes]
            seconds = runtime.gather(phase.kind, sizes)
            self._expect(expected, phase.kind, len(sizes), sum(sizes))
        elif phase.pattern == "sharded_gather":
            sizes = [int(s) for s in sizes]
            servers = getattr(trainer, phase.servers)
            seconds = runtime.sharded_gather(phase.kind, sizes, servers)
            self._expect(expected, phase.kind, len(sizes), sum(sizes))
        elif phase.pattern == "broadcast":
            size = int(sizes)
            seconds = runtime.broadcast(phase.kind, size)
            self._expect(expected, phase.kind, runtime.n_workers,
                         runtime.n_workers * size)
        elif phase.pattern == "sharded_broadcast":
            size = int(sizes)
            servers = getattr(trainer, phase.servers)
            seconds = runtime.sharded_broadcast(phase.kind, size, servers)
            self._expect(expected, phase.kind, runtime.n_workers,
                         runtime.n_workers * size)
        else:  # allreduce
            size = int(sizes)
            n = runtime.n_workers
            seconds = runtime.allreduce(phase.kind, size)
            steps = 2 * (n - 1)
            if steps:
                self._expect(expected, phase.kind, steps, steps * int(size / n))
        return seconds

    @staticmethod
    def _expect(expected, kind, count, total_bytes) -> None:
        have_count, have_bytes = expected.get(kind, (0, 0))
        expected[kind] = (have_count + count, have_bytes + total_bytes)

    def _expect_retries(self, expected) -> None:
        """Bound RETRY traffic when the fabric is lossy.

        The fault layer retransmits under :data:`MessageKind.RETRY`, so
        every base-kind expectation above stays *exact*; this derives
        the matching retry envelope — at most ``max_attempts`` extra
        copies of every declared message (stop-and-wait retries plus one
        duplicate), at least zero.  On a lossless network no envelope is
        added and any stray RETRY message is flagged as undeclared.
        """
        plan = getattr(self.runtime.network, "fault_plan", None)
        if plan is None or not plan.any_faults():
            return
        from repro.net.protocol import TrafficEnvelope

        max_messages = 0
        max_bytes = 0
        for want in expected.values():
            if isinstance(want, TrafficEnvelope):
                max_messages += want.max_messages
                max_bytes += want.max_bytes
            else:
                count, total = want
                max_messages += count
                max_bytes += total
        cap = plan.max_attempts
        expected[MessageKind.RETRY] = TrafficEnvelope(
            0, cap * max_messages, 0, cap * max_bytes
        )


_CATEGORY = {
    ComputePhase: "compute",
    CommPhase: "comm",
    MasterPhase: "master",
}
