"""The shared training loop over engine rounds.

Every trainer's ``fit()`` used to hand-roll the same per-iteration
scaffolding: snapshot traffic, open the protocol checker's round, apply
failures, run the round, advance the clock, close the round, record,
maybe stop early.  :func:`run_training_loop` is that scaffolding, once.
Trainers keep only what is genuinely theirs — result metadata, the
recording callback, and failure/early-stop hooks.
"""

from __future__ import annotations

from typing import Callable, Optional


def run_training_loop(
    *,
    cluster,
    run_round: Callable[[int], object],
    iterations: int,
    eval_every: int,
    record: Callable[[int, float, int, bool], None],
    handle_failures: Optional[Callable[[int], float]] = None,
    checker=None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Optional[int]:
    """Drive ``iterations`` engine rounds; returns the early-stop
    iteration, or ``None`` when the loop ran to completion.

    ``run_round(t)`` must return a
    :class:`~repro.engine.engine.RoundOutcome`;
    ``record(t, duration, bytes_sent, evaluate)`` appends the iteration
    to the trainer's result; ``handle_failures(t)``, when given, runs
    *before* the round and returns extra recovery seconds;
    ``should_stop()`` is consulted only at evaluation points.

    ``cluster`` is any execution substrate exposing ``clock`` and
    ``network`` — a :class:`~repro.sim.cluster.SimulatedCluster` (whose
    clock advances by modeled seconds) or a
    :class:`~repro.runtime.LocalRuntime` (whose clock accumulates
    measured wall seconds); the loop's scaffolding is identical.
    """
    for t in range(iterations):
        bytes_before = cluster.network.total_bytes()
        if checker is not None:
            checker.begin_round(t)
        extra = handle_failures(t) if handle_failures is not None else 0.0
        outcome = run_round(t)
        duration = extra + outcome.duration
        cluster.clock.advance(duration)
        if checker is not None:
            checker.end_round(t, expected=outcome.expected)
        bytes_sent = cluster.network.total_bytes() - bytes_before
        evaluate = bool(eval_every) and (
            (t + 1) % eval_every == 0 or t == iterations - 1
        )
        record(t, duration, bytes_sent, evaluate)
        if evaluate and should_stop is not None and should_stop():
            return t
    return None
