"""Runtime kernel-cost audit — the dynamic twin of lint rule R016.

The simulator *charges* compute time through
:meth:`repro.sim.cost.ComputeCostModel.sparse_work` /
:meth:`~repro.sim.cost.ComputeCostModel.dense_work`, and the static
analysis (:mod:`repro.lint.sparsity`) proves the *shape* of the code
behind those charges is O(nnz).  This module closes the remaining gap:
with ``check_cost=True`` the :class:`CostAuditor` measures, per engine
round, the work the :mod:`repro.linalg` kernels actually performed
(op counters: flops + allocated elements) and compares it against the
work volume the round charged (the :data:`~repro.sim.cost.WORK_LEDGER`
units).  Measured work exceeding ``FACTOR x charged + SLACK`` raises
:class:`~repro.errors.CostDriftError` — a regression that densifies a
gradient or loops over ``dim`` instead of ``nnz`` blows the bound
immediately instead of silently corrupting reproduced figures.

The multiplicative ``FACTOR`` absorbs the constant-factor gap between
"one charged unit" (one stored non-zero touched once) and the handful
of element-operations a vectorised kernel spends per non-zero (gather,
multiply, scatter-add, validation scans).  The additive ``SLACK``
absorbs per-round buffers whose size is independent of nnz — the
O(B) statistics arrays and the O(d/K) partition-gradient buffers that
:func:`repro.linalg.ops.accumulate_rows` legitimately allocates — which
dominate only at toy problem sizes.  Neither constant can hide an
asymptotic drift: densifying a billion-dimensional gradient is not a
constant factor.

Counting never touches numeric payloads, so trajectories are
bit-identical with the audit on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CostDriftError
from repro.linalg.counters import OP_COUNTERS
from repro.sim.cost import WORK_LEDGER

#: Allowed element-operations per charged work unit.
COST_DRIFT_FACTOR = 16.0

#: Additive allowance (elements) for nnz-independent per-round buffers.
COST_DRIFT_SLACK = 65536.0


@dataclass(frozen=True)
class CostReport:
    """Measured-vs-charged work volumes for one engine round."""

    round: int
    flops: int
    alloc_elements: int
    densify_events: int
    peak_alloc_elements: int
    sparse_units: float
    dense_units: float

    @property
    def measured(self) -> float:
        """Element-operations the kernels actually performed."""
        return float(self.flops + self.alloc_elements)

    @property
    def charged(self) -> float:
        """Work units the round charged through the cost model."""
        return self.sparse_units + self.dense_units


class CostAuditor:
    """Per-round measured-vs-charged kernel work comparison.

    The engine calls :meth:`begin_round` before the first phase executes
    and :meth:`finish_round` after the last one, so the audited window
    covers exactly the round's executors — evaluation passes between
    rounds are not measured (nor charged).
    """

    def __init__(self, factor: float = COST_DRIFT_FACTOR,
                 slack: float = COST_DRIFT_SLACK):
        self.factor = factor
        self.slack = slack
        self.reports: List[CostReport] = []

    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        OP_COUNTERS.reset()
        OP_COUNTERS.enable()
        WORK_LEDGER.reset()
        WORK_LEDGER.enable()

    def finish_round(self, t: int) -> None:
        OP_COUNTERS.disable()
        WORK_LEDGER.disable()
        report = CostReport(
            round=t,
            flops=OP_COUNTERS.flops,
            alloc_elements=OP_COUNTERS.alloc_elements,
            densify_events=OP_COUNTERS.densify_events,
            peak_alloc_elements=OP_COUNTERS.peak_alloc_elements,
            sparse_units=WORK_LEDGER.sparse_units,
            dense_units=WORK_LEDGER.dense_units,
        )
        self.reports.append(report)
        budget = self.factor * report.charged + self.slack
        if report.measured > budget:
            raise CostDriftError(
                t,
                [
                    "measured kernel work {:.0f} element-ops "
                    "(flops={}, allocs={}, densify_events={}) exceeds "
                    "{:.0f}x charged work {:.0f} units + {:.0f} slack "
                    "(sparse={:.0f}, dense={:.0f})".format(
                        report.measured,
                        report.flops,
                        report.alloc_elements,
                        report.densify_events,
                        self.factor,
                        report.charged,
                        self.slack,
                        report.sparse_units,
                        report.dense_units,
                    )
                ],
            )
