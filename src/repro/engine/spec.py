"""Declarative round specifications.

A :class:`RoundSpec` is a trainer's complete statement of what one
training round *is*: an ordered tuple of typed phases — compute on the
workers, communication through the simulated network, bookkeeping on the
master — plus the :class:`~repro.engine.policy.SyncPolicy` that decides
how worker finish times combine into phase durations.

Phases name their executors as *method names on the trainer* rather
than bound callables, for two reasons: the spec stays a pure
declaration (picklable, comparable, printable), and the static
extractor (lint rule R010) can resolve the named methods in the AST and
audit their message emissions against the declared kinds without
running anything.

The engine derives the per-round expected traffic — the dict the
runtime :class:`~repro.net.protocol.ProtocolChecker` verifies — from
the same ``CommPhase`` declarations it executes, so declaration and
emission cannot drift: there is exactly one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.engine.policy import BarrierSync, SyncPolicy
from repro.net.message import MessageKind
from repro.net.protocol import TrafficEnvelope  # noqa: F401  (re-export)

#: Communication patterns a CommPhase may use; each maps onto the
#: matching StarTopology / allreduce primitive.
COMM_PATTERNS = (
    "gather",
    "broadcast",
    "sharded_gather",
    "sharded_broadcast",
    "allreduce",
)


@dataclass(frozen=True)
class ComputePhase:
    """Worker-side compute: ``run(ctx)`` returns per-worker seconds.

    ``synchronized`` phases are resolved by the round's
    :class:`SyncPolicy` (which may pick survivors, kill stragglers, or
    gate starts on stale commits); unsynchronized ones simply wait for
    the slowest returned worker.
    """

    name: str
    run: str
    synchronized: bool = False
    #: names of phases this one starts after; ``None`` means "after the
    #: previous phase in the spec", ``()`` means "at round start"
    #: (overlapping everything before it).
    after: Optional[Tuple[str, ...]] = None
    #: optional declared effect sets — attribute atoms such as
    #: ``"self._workers"`` or ``"ctx.scratch[stats_by_worker]"``.  When
    #: present, lint rule R013 cross-checks them against the effects the
    #: analyzer infers from the executor bodies.
    reads: Optional[Tuple[str, ...]] = None
    writes: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class CommPhase:
    """Network phase: the engine emits the messages and charges the time.

    ``sizes`` names a trainer method ``(ctx) -> Sequence[int]`` for
    gather patterns (one entry per sender) or ``(ctx) -> int`` for
    broadcast/allreduce patterns.  ``servers`` names a trainer attribute
    holding S for the sharded patterns.
    """

    name: str
    kind: MessageKind
    pattern: str
    sizes: str
    servers: Optional[str] = None
    after: Optional[Tuple[str, ...]] = None
    reads: Optional[Tuple[str, ...]] = None
    writes: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.pattern not in COMM_PATTERNS:
            raise ValueError(
                "unknown comm pattern {!r}; expected one of {}".format(
                    self.pattern, COMM_PATTERNS
                )
            )
        if self.pattern.startswith("sharded") and self.servers is None:
            raise ValueError("{} needs a servers attribute name".format(self.pattern))


@dataclass(frozen=True)
class MasterPhase:
    """Master-side bookkeeping: ``run(ctx)`` returns its seconds."""

    name: str
    run: str
    after: Optional[Tuple[str, ...]] = None
    reads: Optional[Tuple[str, ...]] = None
    writes: Optional[Tuple[str, ...]] = None


Phase = (ComputePhase, CommPhase, MasterPhase)


@dataclass(frozen=True)
class RoundSpec:
    """One trainer's declared round structure.

    ``envelopes`` optionally names a trainer method
    ``(ctx) -> Dict[MessageKind, TrafficEnvelope]`` whose entries
    *override* the engine-derived exact expectations — the hook that
    lets bounded-staleness protocols declare traffic brackets instead of
    exact counts and stay protocol-checked.
    """

    system: str
    phases: Tuple = ()
    sync: SyncPolicy = field(default_factory=BarrierSync)
    envelopes: Optional[str] = None

    def __post_init__(self):
        if not self.phases:
            raise ValueError("a RoundSpec needs at least one phase")
        seen = set()
        for phase in self.phases:
            if not isinstance(phase, Phase):
                raise TypeError(
                    "phase {!r} is not a ComputePhase/CommPhase/MasterPhase".format(
                        phase
                    )
                )
            if phase.name in seen:
                raise ValueError("duplicate phase name {!r}".format(phase.name))
            if phase.after:
                unknown = [d for d in phase.after if d not in seen]
                if unknown:
                    raise ValueError(
                        "phase {!r} depends on unknown/later phase(s) {}".format(
                            phase.name, unknown
                        )
                    )
                if len(set(phase.after)) != len(phase.after):
                    duplicated = sorted(
                        {d for d in phase.after if phase.after.count(d) > 1}
                    )
                    raise ValueError(
                        "phase {!r} lists duplicate dependency(ies) {}".format(
                            phase.name, duplicated
                        )
                    )
            seen.add(phase.name)

    def comm_kinds(self) -> Tuple[MessageKind, ...]:
        """Message kinds this round declares, in phase order."""
        kinds = []
        for phase in self.phases:
            if isinstance(phase, CommPhase) and phase.kind not in kinds:
                kinds.append(phase.kind)
        return tuple(kinds)
