"""Deterministic discrete-event queue for the round engine.

A minimal priority queue over simulated time with a strict FIFO
tie-break: events pushed earlier pop earlier among equals.  The engine
schedules each round phase as one event at its computed start offset and
drains the queue in time order, which is what makes overlapping phases
(``after=()``) interleave correctly with the sequential chain while
keeping replays bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Tuple


class EventQueue:
    """Min-heap of ``(time, payload)`` with deterministic ordering."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at simulated offset ``time``."""
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Earliest event as ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Tuple[float, Any]]:
        """Pop every event in time order."""
        while self._heap:
            yield self.pop()
