"""ColumnSGD master: statistics aggregation and recovery.

The master is deliberately lightweight (the paper's headline design
point): it never sees the model, only per-batch statistics buffers of
shape ``(B, statistics_width)``.  With backup computation it additionally
runs the recovery rule: inspect arrivals until every group is covered,
then kill the rest.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.backup import BackupGroups
from repro.errors import SimulationError


class ColumnMaster:
    """Aggregates per-group statistics (Algorithm 3, reduceStatistics)."""

    def __init__(self, groups: BackupGroups):
        self.groups = groups

    def reduce(
        self,
        stats_by_worker: Dict[int, Optional[np.ndarray]],
        finish_times: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Sum one contribution per group into the complete statistics.

        ``stats_by_worker[w]`` is worker w's aggregated group statistics,
        or ``None`` for workers that never reported (killed stragglers,
        crashes).  When ``finish_times`` is given, the earliest finisher
        of each group is chosen (the paper's recovery rule); otherwise
        the first live member wins.
        """
        if finish_times is not None:
            adjusted = [
                finish_times[w] if stats_by_worker.get(w) is not None else float("inf")
                for w in range(self.groups.n_workers)
            ]
            chosen = self.groups.fastest_per_group(adjusted)
        else:
            dead = frozenset(
                w
                for w in range(self.groups.n_workers)
                if stats_by_worker.get(w) is None
            )
            chosen = self.groups.select_survivors(dead)

        total = None
        for worker in chosen:
            contribution = stats_by_worker[worker]
            if contribution is None:
                raise SimulationError(
                    "chosen worker {} has no statistics".format(worker)
                )
            total = contribution.copy() if total is None else total + contribution
        if total is None:
            raise SimulationError("no statistics to reduce")
        return total
