"""ColumnSGD master: statistics aggregation and recovery.

The master is deliberately lightweight (the paper's headline design
point): it never sees the model, only per-batch statistics buffers of
shape ``(B, statistics_width)``.  With backup computation it additionally
runs the recovery rule: inspect arrivals until every group is covered,
then kill the rest.  Under timeout-based suspicion
(:class:`~repro.engine.policy.TimeoutSync` with ``on_exhausted='stale'``)
the master may also substitute a group's *previous* contribution for one
that never arrived — enabled by setting :attr:`cache_contributions`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.core.backup import BackupGroups
from repro.errors import SimulationError, StatisticsRecoveryError


class ColumnMaster:
    """Aggregates per-group statistics (Algorithm 3, reduceStatistics)."""

    def __init__(self, groups: BackupGroups):
        self.groups = groups
        #: keep each group's last contribution so a stale round can
        #: substitute it; off by default (costs one buffer per group)
        self.cache_contributions = False
        self._last_contribution: Dict[int, np.ndarray] = {}

    def reduce(
        self,
        stats_by_worker: Dict[int, Optional[np.ndarray]],
        finish_times: Optional[Sequence[float]] = None,
        stale_groups: Optional[Set[int]] = None,
    ) -> np.ndarray:
        """Sum one contribution per group into the complete statistics.

        ``stats_by_worker[w]`` is worker w's aggregated group statistics,
        or ``None`` for workers that never reported (killed stragglers,
        crashes).  When ``finish_times`` is given, the earliest finisher
        of each group is chosen (the paper's recovery rule); otherwise
        the first live member wins.  Groups listed in ``stale_groups``
        contribute their cached previous statistics instead (requires
        :attr:`cache_contributions`); a stale group with no cached
        contribution yet (the first rounds) falls back to its live
        statistics — the master waits for the straggler this once.
        """
        stale = stale_groups if stale_groups is not None else set()
        contributions = []  # (group, contribution) in group order
        missing = []
        used_cache = set()
        for g, members in enumerate(self.groups.groups()):
            if g in stale:
                cached = self._last_contribution.get(g)
                if cached is not None:
                    contributions.append((g, cached))
                    used_cache.add(g)
                    continue
                # nothing cached yet — fall through to the live path
            if finish_times is not None:
                adjusted = {
                    w: (
                        finish_times[w]
                        if stats_by_worker.get(w) is not None
                        else float("inf")
                    )
                    for w in members
                }
                best = min(members, key=lambda w: adjusted[w])
                if adjusted[best] == float("inf"):
                    missing.append(g)
                    continue
                chosen = best
            else:
                alive = [w for w in members if stats_by_worker.get(w) is not None]
                if not alive:
                    missing.append(g)
                    continue
                chosen = alive[0]
            contribution = stats_by_worker[chosen]
            if contribution is None:
                raise SimulationError(
                    "chosen worker {} has no statistics".format(chosen)
                )
            contributions.append((g, contribution))
        if missing:
            raise StatisticsRecoveryError(missing)

        total = None
        for g, contribution in contributions:
            if self.cache_contributions and g not in used_cache:
                self._last_contribution[g] = np.array(contribution, copy=True)
            total = contribution.copy() if total is None else total + contribution
        if total is None:
            raise SimulationError("no statistics to reduce")
        return total
