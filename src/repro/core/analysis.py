"""Analytic cost model — Table I and paper-scale time prediction.

Two layers:

* :func:`rowsgd_overheads` / :func:`columnsgd_overheads` implement
  Table I verbatim: memory and communication *element counts* per node
  as functions of (m, B, K, rho, data size S).  Tests validate the
  communication entries against the simulator's measured bytes.
* :func:`predict_iteration_time` turns the same structure into seconds
  for each of the five evaluated systems using a
  :class:`~repro.net.network.NetworkModel` and
  :class:`~repro.sim.cost.ComputeCostModel`.  Running it at the paper's
  true dataset scales regenerates Table IV / Table V / Fig 10 without
  materialising billion-dimension data.

Calibrated constants (documented in EXPERIMENTS.md):

* Spark-scheduled systems pay one task-launch overhead per BSP stage;
  ColumnSGD runs *two* stages per iteration (computeStatistics +
  updateModel), MLlib runs one.
* Parameter servers keep a dense shard per server and touch it once per
  iteration (lazy-update/bookkeeping scan) at
  ``SERVER_SCAN_SECONDS_PER_ELEMENT`` — this is what makes MXNet's
  per-iteration time grow with model size in Table IV even though its
  pulls are sparse.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import dataclass

from repro.net.network import NetworkModel
from repro.sim.cost import PS_TASK_OVERHEAD, ComputeCostModel
from repro.utils.validation import check_in, check_positive, check_probability

#: Dense per-element maintenance cost on each parameter server, per
#: iteration (seconds).  Calibrated against Table IV's MXNet column.
SERVER_SCAN_SECONDS_PER_ELEMENT = 30e-9

#: Wire bytes per transferred model/gradient element (float64).
VALUE_BYTES = 8

#: Wire bytes per sparse (index, value) pair.
SPARSE_PAIR_BYTES = 12


@dataclass(frozen=True)
class OverheadEstimate:
    """Table I entries for one system, in *elements* (not bytes)."""

    system: str
    master_memory: float
    worker_memory: float
    master_communication: float
    worker_communication: float

    def as_row(self):
        """Row for a Table I style report."""
        return (
            self.system,
            "{:.3g}".format(self.master_memory),
            "{:.3g}".format(self.worker_memory),
            "{:.3g}".format(self.master_communication),
            "{:.3g}".format(self.worker_communication),
        )


def _phi(rho: float, exponent: float) -> float:
    """Expected non-zero fraction of a batch: ``1 - rho**exponent``."""
    return 1.0 - rho ** exponent


def rowsgd_overheads(
    m: int, batch_size: int, n_workers: int, sparsity: float, data_elements: float
) -> OverheadEstimate:
    """Table I, RowSGD column.

    ``data_elements`` is the stored size S of the training data
    (labels + non-zeros), in elements.
    """
    check_positive(m, "m")
    check_positive(batch_size, "batch_size")
    check_positive(n_workers, "n_workers")
    check_probability(sparsity, "sparsity")
    phi1 = _phi(sparsity, batch_size / n_workers)
    phi2 = _phi(sparsity, batch_size)
    return OverheadEstimate(
        system="RowSGD",
        master_memory=m + m * phi2,
        worker_memory=data_elements / n_workers + 2 * m * phi1,
        master_communication=2 * n_workers * m * phi1,
        worker_communication=2 * m * phi1,
    )


def columnsgd_overheads(
    m: int, batch_size: int, n_workers: int, sparsity: float, data_elements: float
) -> OverheadEstimate:
    """Table I, ColumnSGD column."""
    check_positive(m, "m")
    check_positive(batch_size, "batch_size")
    check_positive(n_workers, "n_workers")
    check_probability(sparsity, "sparsity")
    return OverheadEstimate(
        system="ColumnSGD",
        master_memory=batch_size,
        worker_memory=data_elements / n_workers + 2 * batch_size + m / n_workers,
        master_communication=2 * n_workers * batch_size,
        worker_communication=2 * batch_size,
    )


_SYSTEMS = ("mllib", "mllib*", "petuum", "mxnet", "columnsgd")


def predict_iteration_time(
    system: str,
    m: int,
    batch_size: int,
    n_workers: int,
    avg_nnz_per_row: float,
    network: NetworkModel = None,
    cost: ComputeCostModel = None,
    statistics_width: int = 1,
    params_per_feature: int = 1,
    n_servers: Optional[int] = None,
) -> float:
    """Predicted per-iteration seconds for one system at given scale.

    Communication structure per system:

    * ``mllib`` — single master ships the full dense model to K workers
      and aggregates K dense gradients: ``2 K m'`` bytes through one NIC
      (``m' = m * params_per_feature``), plus a dense master update.
    * ``mllib*`` — model averaging over a ring AllReduce of the dense
      model: ``2 (K-1)/K * m'`` bytes per link.
    * ``petuum`` — PS with full pulls: ``K m'`` pull bytes spread over S
      server NICs, sparse gradient pushes, dense server scan.
    * ``mxnet`` — PS with sparse pulls: only the batch's non-zero
      coordinates move, but the dense server scan remains.
    * ``columnsgd`` — two statistics transfers of ``B * width`` values
      through the master NIC; two Spark stages of task overhead.
    """
    check_in(system.lower(), _SYSTEMS, "system")
    check_positive(m, "m")
    check_positive(batch_size, "batch_size")
    check_positive(n_workers, "n_workers")
    check_positive(avg_nnz_per_row, "avg_nnz_per_row")
    network = network if network is not None else NetworkModel()
    cost = cost if cost is not None else ComputeCostModel()
    key = system.lower()
    K = n_workers
    servers = n_servers if n_servers is not None else K
    model_elements = m * params_per_feature
    model_bytes = model_elements * VALUE_BYTES
    batch_nnz = batch_size * avg_nnz_per_row
    # gradient math touches every stored non-zero once per statistic/pass
    compute = cost.sparse_work(batch_nnz / K, passes=2 * statistics_width)

    if key == "columnsgd":
        stats_bytes = batch_size * statistics_width * VALUE_BYTES
        comm = 2 * (network.latency + K * stats_bytes / network.bandwidth)
        return 2 * cost.task_overhead + compute + comm

    if key == "mllib":
        comm = 2 * (network.latency + K * model_bytes / network.bandwidth)
        master_update = cost.dense_work(2 * model_elements)
        return cost.task_overhead + compute + comm + master_update

    if key == "mllib*":
        steps = 2 * (K - 1)
        comm = steps * network.latency + steps * model_bytes / (K * network.bandwidth)
        local_update = cost.dense_work(model_elements)
        return cost.task_overhead + compute + comm + local_update

    scan = SERVER_SCAN_SECONDS_PER_ELEMENT * model_elements / servers
    if key == "petuum":
        # full dense pull; sparse push of the batch gradient
        pull = network.latency + K * model_bytes / (servers * network.bandwidth)
        push_bytes = batch_nnz / K * params_per_feature * SPARSE_PAIR_BYTES
        push = network.latency + K * push_bytes / (servers * network.bandwidth)
        return PS_TASK_OVERHEAD + compute + pull + push + scan

    # mxnet: sparse pull and push of only the needed coordinates
    sparse_bytes = batch_nnz / K * params_per_feature * SPARSE_PAIR_BYTES
    pull = network.latency + K * sparse_bytes / (servers * network.bandwidth)
    push = network.latency + K * sparse_bytes / (servers * network.bandwidth)
    return PS_TASK_OVERHEAD + compute + pull + push + scan
