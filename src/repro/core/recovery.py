"""Heartbeat failure detection, checkpointing, and recovery execution.

The paper's Section X describes three recovery behaviours (task restart,
worker reload, master restart); PRs before this one hand-rolled the
first two inside ``ColumnSGDDriver._handle_failures`` and aborted on the
third.  :class:`RecoveryManager` centralises all three behind one
:class:`RecoveryPolicy`:

* **detection** — a heartbeat failure detector: every live worker sends
  one :data:`~repro.net.message.MessageKind.HEARTBEAT` probe per
  iteration; a failure is *observed* only after
  ``heartbeat_timeout_beats`` silent intervals, so every recovery pays a
  detection delay of ``heartbeat_interval_s x heartbeat_timeout_beats``
  seconds (zero when heartbeats are disabled — the legacy omniscient
  detector).
* **checkpointing** — every ``checkpoint_every`` iterations each model
  partition's ``(params, optimizer state)`` is snapshotted to simulated
  stable storage, charged at disk + network bandwidth and accounted as
  :data:`~repro.net.message.MessageKind.CHECKPOINT` traffic (unchecked
  by the protocol's Table-I envelopes, like control chatter).
* **recovery modes** — per lost model partition, in preference order:
  ``'replica'`` (a backup-group peer still holds the shared
  :class:`~repro.core.worker.PartitionState` — free), ``'checkpoint'``
  (restore the last snapshot), ``'zero-init'`` (the legacy Section X
  fallback: zeros + optimizer reset).
* **master restart** — with ``master_restart=True`` a MASTER failure no
  longer raises :class:`~repro.errors.MasterFailedError`: the driver
  restarts, restores *every* partition from the last checkpoint, and
  replays the missed iterations (deterministic sampling makes the
  replay exact), charging reload + replay time and recording the
  breakdown as a :class:`~repro.engine.trace.RecoveryEvent`.

The default :meth:`RecoveryPolicy.disabled` is pay-for-use: no
heartbeats, no checkpoints, and recovery costs bit-identical to the
pre-manager driver formulas.
"""

from __future__ import annotations

import copy
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.backup import BackupGroups
from repro.core.worker import ColumnWorker, PartitionState
from repro.engine.trace import RecoveryEvent
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.storage.serialization import OBJECT_OVERHEAD_BYTES, dense_vector_bytes
from repro.utils.validation import check_non_negative

#: Dense vectors per partition snapshot: the params themselves plus one
#: params-sized optimizer slot vector (every optimizer in repro.optim
#: keeps at most one dense slot per parameter — momentum, Adagrad
#: accumulator, ...).
CHECKPOINT_VECTORS = 2


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the failure detector and checkpoint/recovery pipeline."""

    checkpoint_every: int = 0       #: snapshot cadence in iterations (0 = never)
    heartbeat_interval_s: float = 0.0  #: probe period in sim-seconds (0 = disabled)
    heartbeat_timeout_beats: int = 3   #: silent probes before suspicion
    master_restart: bool = False       #: restart-from-checkpoint on MASTER failure

    def __post_init__(self):
        check_non_negative(self.checkpoint_every, "checkpoint_every")
        check_non_negative(self.heartbeat_interval_s, "heartbeat_interval_s")
        if self.heartbeat_timeout_beats < 1:
            raise ConfigurationError(
                "heartbeat_timeout_beats must be >= 1, got {}".format(
                    self.heartbeat_timeout_beats
                )
            )
        if self.master_restart and not self.checkpoint_every:
            raise ConfigurationError(
                "master_restart requires checkpoint_every > 0 — with no "
                "checkpoint there is nothing to restart from"
            )

    @classmethod
    def disabled(cls) -> "RecoveryPolicy":
        """No heartbeats, no checkpoints: the legacy recovery behaviour."""
        return cls()

    @property
    def detection_delay_s(self) -> float:
        """Seconds between a crash and the master observing it."""
        return self.heartbeat_interval_s * self.heartbeat_timeout_beats


class CheckpointStore:
    """Per-partition snapshots on simulated stable storage.

    A snapshot is ``(iteration, params copy, optimizer deep-copy)`` per
    partition; writing is charged at the slower of disk and network, in
    parallel across workers (each primary replica streams its own
    partitions).
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self._snapshots: Dict[int, Tuple[int, np.ndarray, object]] = {}
        self.last_iteration: Optional[int] = None
        self.writes = 0

    # ------------------------------------------------------------------
    def partition_bytes(self, state: PartitionState) -> int:
        """Snapshot wire/disk footprint of one partition (params + state)."""
        return CHECKPOINT_VECTORS * dense_vector_bytes(int(state.params.size))

    def write(
        self,
        iteration: int,
        partitions: List[PartitionState],
        groups: BackupGroups,
        workers: List[ColumnWorker],
    ) -> float:
        """Snapshot every partition from its primary live replica.

        Returns the charge in seconds: workers stream concurrently, so
        the wall time is the slowest worker's ``bytes/disk + bytes/net``.
        """
        network = self.cluster.network
        per_worker_bytes: Dict[int, int] = {}
        for state in partitions:
            primary = None
            for w in groups.replicas_of_partition(state.partition_id):
                if not workers[w].failed:
                    primary = w
                    break
            if primary is None:
                continue  # whole group dead; nothing to snapshot from
            self._snapshots[state.partition_id] = (
                iteration,
                np.array(state.params, copy=True),
                copy.deepcopy(state.optimizer),
            )
            size = self.partition_bytes(state)
            network.send(
                Message(MessageKind.CHECKPOINT, primary, Message.MASTER, size)
            )
            per_worker_bytes[primary] = per_worker_bytes.get(primary, 0) + size
        self.last_iteration = iteration
        self.writes += 1
        if not per_worker_bytes:
            return network.consume_extra_seconds()
        slowest = max(per_worker_bytes.values())
        disk = self.cluster.spec.disk_bandwidth_bytes_per_s
        return (
            slowest / disk
            + slowest / network.bandwidth
            + network.consume_extra_seconds()
        )

    # ------------------------------------------------------------------
    def snapshot_of(self, partition_id: int):
        """``(iteration, params, optimizer)`` or ``None``."""
        return self._snapshots.get(partition_id)

    def has_snapshot(self, partition_id: int) -> bool:
        return partition_id in self._snapshots

    def read_seconds(self, num_bytes: int) -> float:
        """Charge for pulling ``num_bytes`` back from stable storage."""
        return (
            num_bytes / self.cluster.spec.disk_bandwidth_bytes_per_s
            + num_bytes / self.cluster.network.bandwidth
        )


class LocalCheckpointStore:
    """Real on-disk snapshots for the local backend.

    The simulated :class:`CheckpointStore` *charges* for stable-storage
    writes; this one actually performs them.  A snapshot is one file per
    model partition holding ``(iteration, shape, wire-codec params
    bytes, pickled optimizer)`` — the codec bytes are exactly what the
    worker process shipped over its pipe, so restore is decode +
    optimizer-state reload, the real counterpart of the simulator's
    rollback-to-snapshot (no replay).  Writes go through a temp file and
    ``os.replace`` so a crash mid-write cannot corrupt the last good
    snapshot.
    """

    def __init__(self, directory: Optional[str] = None):
        self._owns_dir = directory is None
        self.directory = (
            tempfile.mkdtemp(prefix="repro-ckpt-") if directory is None else directory
        )
        os.makedirs(self.directory, exist_ok=True)
        self._iterations: Dict[int, int] = {}
        self.last_iteration: Optional[int] = None
        self.writes = 0
        self.bytes_written = 0

    def _path(self, partition_id: int) -> str:
        return os.path.join(self.directory, "p{:05d}.ckpt".format(partition_id))

    def write(
        self,
        iteration: int,
        partition_id: int,
        shape,
        params_payload: bytes,
        optimizer_blob: bytes,
    ) -> int:
        """Persist one partition snapshot; returns bytes written."""
        check_non_negative(iteration, "iteration")
        blob = pickle.dumps(
            (int(iteration), tuple(shape), bytes(params_payload), bytes(optimizer_blob)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self._path(partition_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        self._iterations[partition_id] = int(iteration)
        self.last_iteration = int(iteration)
        self.writes += 1
        self.bytes_written += len(blob)
        return len(blob)

    def has_snapshot(self, partition_id: int) -> bool:
        return partition_id in self._iterations

    def snapshot_iteration(self, partition_id: int) -> Optional[int]:
        return self._iterations.get(partition_id)

    def read(self, partition_id: int) -> Tuple[int, tuple, bytes, bytes]:
        """``(iteration, shape, params payload, optimizer blob)``."""
        if not self.has_snapshot(partition_id):
            raise ConfigurationError(
                "no snapshot on disk for partition {}".format(partition_id)
            )
        with open(self._path(partition_id), "rb") as fh:
            return pickle.loads(fh.read())

    def close(self) -> None:
        """Delete the snapshot directory when this store created it."""
        if self._owns_dir and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)
        self._iterations = {}

    def __enter__(self) -> "LocalCheckpointStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RecoveryManager:
    """Execute the :class:`RecoveryPolicy` for one ColumnSGD job.

    Owns the heartbeat cadence, the :class:`CheckpointStore`, and the
    three recovery paths; every episode is recorded as a
    :class:`~repro.engine.trace.RecoveryEvent` on
    ``cluster.engine_trace`` so :mod:`repro.experiments.gantt` can
    render it.
    """

    def __init__(
        self,
        cluster,
        groups: BackupGroups,
        policy: RecoveryPolicy,
        workers: List[ColumnWorker],
        partitions: List[PartitionState],
        replay_fn: Optional[Callable[[int], float]] = None,
    ):
        self.cluster = cluster
        self.groups = groups
        self.policy = policy
        self.workers = workers
        self.partitions = partitions
        self.replay_fn = replay_fn
        self.checkpoints = CheckpointStore(cluster)

    # ------------------------------------------------------------------
    def _record(self, event: RecoveryEvent) -> None:
        trace = getattr(self.cluster, "engine_trace", None)
        if trace is not None:
            trace.add_recovery(event)

    def on_iteration(self, t: int) -> float:
        """Per-iteration upkeep: heartbeats and periodic checkpoints.

        Returns the extra seconds charged to the round (checkpoint
        writes; heartbeats ride the existing RPC fabric for free).
        """
        extra = 0.0
        network = self.cluster.network
        if self.policy.heartbeat_interval_s > 0:
            for worker in self.workers:
                if worker.failed:
                    continue
                network.send(
                    Message(
                        MessageKind.HEARTBEAT,
                        worker.worker_id,
                        Message.MASTER,
                        OBJECT_OVERHEAD_BYTES,
                    )
                )
            extra += network.consume_extra_seconds()
        if self.policy.checkpoint_every and t % self.policy.checkpoint_every == 0:
            extra += self.checkpoints.write(
                t, self.partitions, self.groups, self.workers
            )
        return extra

    # ------------------------------------------------------------------
    def restart_task(self, t: int) -> float:
        """TASK failure: Spark relaunches the task on cached state."""
        seconds = self.policy.detection_delay_s + self.cluster.cost.task_overhead
        self._record(
            RecoveryEvent(
                round=t,
                kind="task",
                mode="restart",
                worker=None,
                detect_s=self.policy.detection_delay_s,
                reload_s=self.cluster.cost.task_overhead,
            )
        )
        return seconds

    def recover_worker(self, worker_id: int, iteration: int = -1) -> float:
        """WORKER crash: reload the shard, then restore the model
        partition by the best available mode (replica / checkpoint /
        zero-init).  Returns the recovery seconds."""
        worker = self.workers[worker_id]
        worker.fail()
        owned = self.groups.partitions_of_worker(worker_id)
        reload_bytes = sum(
            self.partitions[p].store.stored_bytes() for p in owned
        )
        seconds = (
            self.policy.detection_delay_s
            + self.cluster.cost.task_overhead
            + reload_bytes / self.cluster.spec.disk_bandwidth_bytes_per_s
            + reload_bytes / self.cluster.network.bandwidth
        )
        partitions = []
        mode = "replica"
        for p in owned:
            state = self.partitions[p]
            if self.groups.backup > 0:
                # group peers share the PartitionState — nothing lost
                pass
            elif self.checkpoints.has_snapshot(p):
                mode = "checkpoint"
                _, params, optimizer = self.checkpoints.snapshot_of(p)
                state.params[...] = params
                state.optimizer = copy.deepcopy(optimizer)
                seconds += self.checkpoints.read_seconds(
                    self.checkpoints.partition_bytes(state)
                )
            else:
                # No replica, no snapshot: the Section X fallback — re-init
                # to zeros and rely on SGD's robustness.
                mode = "zero-init"
                state.params[...] = 0.0
                state.optimizer.reset()
            partitions.append(state)
        worker.recover(partitions)
        self._record(
            RecoveryEvent(
                round=iteration,
                kind="worker",
                mode=mode,
                worker=worker_id,
                detect_s=self.policy.detection_delay_s,
                reload_s=seconds - self.policy.detection_delay_s,
            )
        )
        return seconds

    def recover_master(self, iteration: int) -> float:
        """MASTER crash: restart the driver, restore every partition from
        the last checkpoint, and replay the missed iterations.

        The replay is numerically exact — deterministic per-iteration
        sampling means re-running iterations ``c..t-1`` from checkpoint
        ``c`` reproduces the pre-crash trajectory — so a recovered job
        converges like a fault-free one.  Raises
        :class:`~repro.errors.MasterFailedError` when no checkpoint
        exists to restart from.
        """
        from repro.errors import MasterFailedError

        c = self.checkpoints.last_iteration
        if c is None:
            raise MasterFailedError(
                "master failed at iteration {} with no checkpoint to "
                "restart from".format(iteration)
            )
        detect = self.policy.detection_delay_s
        restart = self.cluster.cost.task_overhead

        # reload: every worker pulls its partitions' snapshots in parallel
        per_worker_bytes: Dict[int, int] = {}
        for state in self.partitions:
            snap = self.checkpoints.snapshot_of(state.partition_id)
            if snap is None:
                continue
            _, params, optimizer = snap
            state.params[...] = params
            state.optimizer = copy.deepcopy(optimizer)
            size = self.checkpoints.partition_bytes(state)
            for w in self.groups.replicas_of_partition(state.partition_id):
                per_worker_bytes[w] = per_worker_bytes.get(w, 0) + size
        reload_s = restart + (
            max(self.checkpoints.read_seconds(b) for b in per_worker_bytes.values())
            if per_worker_bytes
            else 0.0
        )

        replay_s = 0.0
        if self.replay_fn is not None:
            for tau in range(c, iteration):
                replay_s += float(self.replay_fn(tau))

        self._record(
            RecoveryEvent(
                round=iteration,
                kind="master",
                mode="restart",
                worker=None,
                detect_s=detect,
                reload_s=reload_s,
                replay_s=replay_s,
            )
        )
        return detect + reload_s + replay_s
