"""ColumnSGD — the paper's primary contribution.

One master + K workers; training data *and* model are partitioned by
columns with the same assignment, so each worker's (data shard, model
partition) pair is collocated.  Per iteration (Algorithm 3): workers
compute partial statistics, the master sums and broadcasts them, workers
recover gradients locally and update their partitions.  Communication is
``O(B * statistics_width)`` per worker — independent of model size.

Entry points: :class:`ColumnSGDDriver` (full control) and
:func:`train_columnsgd` (one-call convenience).
"""

from repro.core.results import IterationRecord, TrainingResult
from repro.core.backup import BackupGroups
from repro.core.worker import ColumnWorker, PartitionState
from repro.core.master import ColumnMaster
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver, train_columnsgd
from repro.core.interface import UserDefinedModel
from repro.core.recovery import CheckpointStore, RecoveryManager, RecoveryPolicy
from repro.core.analysis import (
    OverheadEstimate,
    rowsgd_overheads,
    columnsgd_overheads,
    predict_iteration_time,
)

__all__ = [
    "IterationRecord",
    "TrainingResult",
    "BackupGroups",
    "ColumnWorker",
    "PartitionState",
    "ColumnMaster",
    "ColumnSGDConfig",
    "ColumnSGDDriver",
    "train_columnsgd",
    "UserDefinedModel",
    "CheckpointStore",
    "RecoveryManager",
    "RecoveryPolicy",
    "OverheadEstimate",
    "rowsgd_overheads",
    "columnsgd_overheads",
    "predict_iteration_time",
]
