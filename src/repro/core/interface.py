"""The user-facing programming interface of Section IX (Fig 12).

The paper exposes four callbacks — ``initModel``, ``computeStat``,
``reduceStat``, ``updateModel`` — that users implement to train a custom
model on ColumnSGD.  :class:`UserDefinedModel` adapts that callback style
onto :class:`~repro.models.base.StatisticsModel`, so user code plugs into
the same driver, baselines and tests as the built-in models.

The ``examples/custom_model.py`` script ports Fig 12's Scala LR code to
this interface nearly line for line.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.linalg import CSRMatrix
from repro.models.base import StatisticsModel
from repro.models.regularizers import Regularizer

InitModelFn = Callable[[int], np.ndarray]
ComputeStatFn = Callable[[CSRMatrix, np.ndarray], np.ndarray]
UpdateFn = Callable[[CSRMatrix, np.ndarray, np.ndarray, np.ndarray], np.ndarray]
LossFn = Callable[[np.ndarray, np.ndarray], float]


class UserDefinedModel(StatisticsModel):
    """Wrap the paper's four callbacks into a trainable model.

    Parameters
    ----------
    init_model:
        ``init_model(local_dim) -> params`` (Fig 12's ``initModel``).
    compute_stat:
        ``compute_stat(batch, params) -> (B, width)`` partial statistics
        (``computeStat``).  Must be additive across column shards.
    compute_gradient:
        ``compute_gradient(batch, labels, complete_stats, params) ->
        gradient`` — the gradient-from-statistics step inside Fig 12's
        ``updateModel`` (the optimizer applies the step itself).
    loss:
        ``loss(complete_stats, labels) -> float`` mean batch loss, used
        for convergence reporting.
    statistics_width:
        Statistics per example (1 for GLM-style models).
    reduce_stat:
        Master-side combiner of two partial-statistics arrays; defaults
        to elementwise sum (Fig 12's ``reduceStat``).  Supplied for
        completeness; the master applies it pairwise.
    """

    name = "user_defined"

    def __init__(
        self,
        init_model: InitModelFn,
        compute_stat: ComputeStatFn,
        compute_gradient: UpdateFn,
        loss: LossFn,
        statistics_width: int = 1,
        reduce_stat: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        regularizer: Regularizer = None,
    ):
        super().__init__(regularizer)
        if statistics_width < 1:
            raise ValueError("statistics_width must be >= 1")
        self._init_model = init_model
        self._compute_stat = compute_stat
        self._compute_gradient = compute_gradient
        self._loss = loss
        self._reduce_stat = reduce_stat
        self.statistics_width = int(statistics_width)

    # -- layout ---------------------------------------------------------
    def param_shape(self, n_features: int) -> tuple:
        return np.asarray(self._init_model(n_features)).shape

    def init_params(self, n_features: int, seed=None) -> np.ndarray:
        return np.asarray(self._init_model(n_features), dtype=np.float64)

    # -- decomposition ----------------------------------------------------
    def compute_statistics(self, features, params):
        stats = np.asarray(self._compute_stat(features, params), dtype=np.float64)
        if stats.ndim == 1:
            stats = stats.reshape(-1, 1)
        if stats.shape != (features.n_rows, self.statistics_width):
            raise ValueError(
                "compute_stat returned shape {}, expected {}".format(
                    stats.shape, (features.n_rows, self.statistics_width)
                )
            )
        return stats

    def reduce_statistics(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Master-side pairwise combiner (defaults to sum)."""
        if self._reduce_stat is not None:
            return np.asarray(self._reduce_stat(left, right), dtype=np.float64)
        return left + right

    def gradient_from_statistics(self, features, labels, statistics, params):
        grad = np.asarray(
            self._compute_gradient(features, labels, np.asarray(statistics), params),
            dtype=np.float64,
        )
        if grad.shape != params.shape:
            raise ValueError(
                "compute_gradient returned shape {}, expected {}".format(
                    grad.shape, params.shape
                )
            )
        return grad + self.regularizer.gradient(params)

    def loss_from_statistics(self, statistics, labels) -> float:
        return float(self._loss(np.asarray(statistics), np.asarray(labels)))

    def predict_from_statistics(self, statistics) -> np.ndarray:
        return np.asarray(statistics)[:, 0]
