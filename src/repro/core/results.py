"""Training results shared by ColumnSGD and every baseline.

A :class:`TrainingResult` is the uniform output of all trainers: the
loss-versus-(iteration, simulated time) curve that regenerates Fig 4(a),
Fig 8 and Fig 13, plus per-iteration timing and traffic for Table IV/V
and Figs 9-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """One SGD iteration's bookkeeping."""

    iteration: int
    sim_time: float        # simulated clock *after* the iteration (s)
    duration: float        # simulated length of this iteration (s)
    loss: Optional[float]  # full-train loss, when evaluated this iteration
    bytes_sent: int        # network bytes this iteration (all nodes)
    eval_loss: Optional[float] = None  # held-out loss, when tracked


@dataclass
class TrainingResult:
    """Outcome of one training run on one system."""

    system: str
    model: str
    dataset: str
    batch_size: int
    n_workers: int
    records: List[IterationRecord] = field(default_factory=list)
    final_params: Optional[np.ndarray] = None
    total_sim_time: float = 0.0
    notes: str = ""

    # ------------------------------------------------------------------
    def add(self, record: IterationRecord) -> None:
        """Append one iteration record."""
        self.records.append(record)
        self.total_sim_time = record.sim_time

    @property
    def n_iterations(self) -> int:
        """Completed iterations."""
        return len(self.records)

    def losses(self) -> List[tuple]:
        """``(iteration, sim_time, loss)`` for iterations with a loss eval."""
        return [
            (r.iteration, r.sim_time, r.loss) for r in self.records if r.loss is not None
        ]

    def final_loss(self) -> Optional[float]:
        """Last evaluated training loss."""
        evaluated = self.losses()
        return evaluated[-1][2] if evaluated else None

    def avg_iteration_seconds(self, skip_first: int = 1) -> float:
        """Mean simulated per-iteration time (Table IV/V's metric).

        Skips warm-up iterations (loading/first-touch effects), as the
        paper's averages do.
        """
        durations = [r.duration for r in self.records[skip_first:]]
        if not durations:
            durations = [r.duration for r in self.records]
        return float(np.mean(durations)) if durations else 0.0

    def time_to_loss(self, threshold: float) -> Optional[float]:
        """First simulated time at which train loss <= threshold.

        This is the "horizontal line" comparison of Fig 8.  ``None`` when
        the run never reached the threshold.
        """
        for _, sim_time, loss in self.losses():
            if loss <= threshold:
                return sim_time
        return None

    def eval_losses(self) -> List[tuple]:
        """``(iteration, sim_time, held-out loss)`` where tracked."""
        return [
            (r.iteration, r.sim_time, r.eval_loss)
            for r in self.records
            if r.eval_loss is not None
        ]

    def total_bytes(self) -> int:
        """Total network bytes over the run."""
        return sum(r.bytes_sent for r in self.records)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_csv(self, path) -> None:
        """Write the per-iteration trace as CSV (metadata in # comments).

        Columns: iteration, sim_time, duration, loss, bytes_sent,
        eval_loss.  Unevaluated losses are empty cells.
        """
        with open(str(path), "w", encoding="utf-8") as stream:
            stream.write("# system={}\n# model={}\n# dataset={}\n".format(
                self.system, self.model, self.dataset))
            stream.write("# batch_size={}\n# n_workers={}\n".format(
                self.batch_size, self.n_workers))
            stream.write("iteration,sim_time,duration,loss,bytes_sent,eval_loss\n")
            for r in self.records:
                stream.write("{},{:.9f},{:.9f},{},{},{}\n".format(
                    r.iteration, r.sim_time, r.duration,
                    "" if r.loss is None else repr(r.loss),
                    r.bytes_sent,
                    "" if r.eval_loss is None else repr(r.eval_loss),
                ))

    @classmethod
    def from_csv(cls, path) -> "TrainingResult":
        """Reload a trace written by :meth:`to_csv` (no final_params)."""
        meta = {}
        records = []
        with open(str(path), "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    key, _, value = line[1:].strip().partition("=")
                    meta[key.strip()] = value.strip()
                    continue
                if line.startswith("iteration,"):
                    continue
                cells = line.split(",")
                records.append(
                    IterationRecord(
                        iteration=int(cells[0]),
                        sim_time=float(cells[1]),
                        duration=float(cells[2]),
                        loss=float(cells[3]) if cells[3] else None,
                        bytes_sent=int(cells[4]),
                        eval_loss=float(cells[5]) if len(cells) > 5 and cells[5] else None,
                    )
                )
        result = cls(
            system=meta.get("system", "?"),
            model=meta.get("model", "?"),
            dataset=meta.get("dataset", "?"),
            batch_size=int(meta.get("batch_size", 0)),
            n_workers=int(meta.get("n_workers", 0)),
        )
        for record in records:
            result.add(record)
        return result

    def describe(self) -> str:
        """One-line summary for reports."""
        loss = self.final_loss()
        return "{} on {}/{}: {} iters, {:.3f}s sim, loss={}".format(
            self.system,
            self.model,
            self.dataset,
            self.n_iterations,
            self.total_sim_time,
            "{:.4f}".format(loss) if loss is not None else "n/a",
        )
