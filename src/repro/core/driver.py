"""The ColumnSGD driver: load, partition, and run Algorithm 3.

The driver executes the real numerics (statistics, gradients, updates)
in-process while charging simulated time for compute (cost model x
straggler slowdowns), network (statistics gather/broadcast through the
master), and BSP barriers (two Spark-scheduled stages per iteration:
computeStatistics and updateModel).

The round itself is declared as a :class:`~repro.engine.RoundSpec` —
computeStatistics, gather, reduce, broadcast, updateModel — and
executed by :class:`~repro.engine.RoundEngine`; S-backup recovery is
the spec's :class:`~repro.engine.BackupSync` policy (S = 0 degenerates
to the plain barrier).

Exactness invariant: with no failures, the parameter trajectory is
identical (to float tolerance) to single-machine mini-batch SGD on the
same draw sequence — tests assert this for every model and optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.backup import BackupGroups
from repro.core.master import ColumnMaster
from repro.core.recovery import RecoveryManager, RecoveryPolicy
from repro.core.results import IterationRecord, TrainingResult
from repro.core.worker import ColumnWorker, PartitionState
from repro.datasets.dataset import Dataset
from repro.engine import (
    BackupSync,
    CommPhase,
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundOutcome,
    RoundSpec,
    TimeoutSync,
    run_training_loop,
)
from repro.errors import ConfigurationError, MasterFailedError, TrainingError
from repro.models.base import StatisticsModel
from repro.net.message import MessageKind
from repro.net.protocol import ProtocolChecker
from repro.optim.base import Optimizer
from repro.partition.column import make_assignment
from repro.partition.dispatch import dispatch_block_based, dispatch_naive, LoadReport
from repro.partition.indexing import TwoPhaseIndex
from repro.runtime.base import BACKENDS
from repro.sim.cluster import SimulatedCluster
from repro.sim.failures import FailureInjector, FailureKind
from repro.sim.straggler import StragglerModel
from repro.storage.serialization import OBJECT_OVERHEAD_BYTES, dense_vector_bytes
from repro.utils.validation import check_in, check_non_negative, check_positive


@dataclass(frozen=True)
class ColumnSGDConfig:
    """Hyper-parameters and protocol knobs of one ColumnSGD job."""

    batch_size: int = 1000
    iterations: int = 100
    backup: int = 0          # S in S-backup computation
    eval_every: int = 10     # full-train-loss cadence (0 = never)
    seed: int = 0
    block_size: int = 2048
    scheme: str = "round_robin"
    loader: str = "block"    # 'block' (Algorithm 4) or 'naive'
    wire_precision: str = "fp64"  # 'fp32' halves statistics traffic
                                  # (values are rounded through float32)
    early_stop_patience: int = 0  # stop after this many consecutive
                                  # evaluations without min_improvement
                                  # (0 disables; needs eval_every > 0)
    early_stop_min_improvement: float = 1e-4
    check_protocol: bool = False  # verify BSP invariants every round
                                  # (see repro.net.protocol)
    sync_policy: str = "backup"   # 'backup' (Fig 6 recovery), 'timeout'
                                  # (suspect by deadline), or 'retry'
                                  # (timeout + backoff retries)
    sync_alpha: float = 3.0       # deadline = alpha * median(finish)
    sync_max_retries: int = 2     # gather retries before degrading
    sync_backoff: float = 2.0     # deadline multiplier per retry
    sync_on_exhausted: str = "stale"  # 'stale' reuses cached group
                                      # statistics; 'raise' escalates
    overlap: bool = True          # overlap reduce with the statistics
                                  # gather and prefetch the next batch
                                  # (after= DAG proven race-free by
                                  # lint rule R012); False restores the
                                  # strictly sequential round
    check_effects: bool = False   # record per-phase attribute accesses
                                  # and fail on DAG-unordered conflicts
                                  # (see repro.engine.effects)
    check_cost: bool = False      # audit measured kernel work against
                                  # sparse_work/dense_work charges each
                                  # round (see repro.engine.cost_audit)
    backend: str = "sim"          # execution substrate: 'sim' runs the
                                  # discrete-event simulator, 'local'
                                  # runs real worker processes with
                                  # measured wall-clock rounds (see
                                  # repro.runtime and docs/runtime.md)
    local_processes: int = 0      # OS processes hosting the K logical
                                  # workers on the local backend
                                  # (0 = one process per worker)
    local_timeout_s: float = 30.0  # deadline floor for local-backend
                                   # exchanges; the effective deadline is
                                   # max(floor, sync_alpha * median of
                                   # measured exchange seconds), backed
                                   # off by sync_backoff per retry (see
                                   # repro.runtime.deadline)
    store_dir: str = ""           # when set, load() shuffles the data
                                  # into (or reopens) an on-disk
                                  # column-shard store there and workers
                                  # read their shards out-of-core (see
                                  # repro.store and docs/storage.md)
    memory_budget_bytes: int = 0  # bounds the shuffle writer's tracked
                                  # buffers and each worker's decoded-
                                  # block LRU cache (0 = unbounded)

    def __post_init__(self):
        check_positive(self.batch_size, "batch_size")
        check_positive(self.iterations, "iterations")
        check_non_negative(self.backup, "backup")
        check_non_negative(self.eval_every, "eval_every")
        check_non_negative(self.seed, "seed")
        check_positive(self.block_size, "block_size")
        check_in(self.loader, ("block", "naive"), "loader")
        check_in(self.wire_precision, ("fp64", "fp32"), "wire_precision")
        check_non_negative(self.early_stop_patience, "early_stop_patience")
        check_non_negative(self.early_stop_min_improvement, "early_stop_min_improvement")
        check_in(self.sync_policy, ("backup", "timeout", "retry"), "sync_policy")
        check_positive(self.sync_alpha, "sync_alpha")
        check_non_negative(self.sync_max_retries, "sync_max_retries")
        check_positive(self.sync_backoff, "sync_backoff")
        check_in(self.sync_on_exhausted, ("raise", "stale"), "sync_on_exhausted")
        check_in(self.backend, BACKENDS, "backend")
        check_non_negative(self.local_processes, "local_processes")
        check_positive(self.local_timeout_s, "local_timeout_s")
        check_non_negative(self.memory_budget_bytes, "memory_budget_bytes")
        if self.store_dir and self.loader != "block":
            raise ValueError(
                "store_dir requires loader='block'; the shard store is "
                "laid out block by block"
            )
        if self.early_stop_patience and not self.eval_every:
            raise ValueError("early stopping requires eval_every > 0")
        if self.backend == "local":
            # sync_policy, checkpointing (RecoveryPolicy), and chaos
            # (repro.runtime.LocalChaos) all run for real on the local
            # backend; only genuinely simulator-bound features remain
            # rejected.
            if self.backup:
                raise ValueError(
                    "backend='local' supports backup=0 only; backup "
                    "computation is a simulator feature"
                )
            if self.check_effects or self.check_cost:
                raise ValueError(
                    "check_effects/check_cost audit the simulated engine; "
                    "they are unavailable on backend='local'"
                )

    @property
    def wire_value_bytes(self) -> int:
        """Bytes per statistics value on the wire."""
        return 4 if self.wire_precision == "fp32" else 8


class ColumnSGDDriver:
    """One master + K workers running column-partitioned SGD."""

    def __init__(
        self,
        model: StatisticsModel,
        optimizer: Optimizer,
        cluster: SimulatedCluster,
        config: Optional[ColumnSGDConfig] = None,
        straggler: Optional[StragglerModel] = None,
        failures: Optional[FailureInjector] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.config = config if config is not None else ColumnSGDConfig()
        self.straggler = (
            straggler if straggler is not None else StragglerModel.none(cluster.n_workers)
        )
        self.failures = failures if failures is not None else FailureInjector.none()
        if hasattr(self.failures, "attach"):
            self.failures.attach(cluster)  # ChaosSchedule needs the clock
        if hasattr(self.failures, "validate"):
            self.failures.validate(cluster.n_workers)
        self.recovery_policy = recovery if recovery is not None else RecoveryPolicy.disabled()
        self.recovery_manager: Optional[RecoveryManager] = None
        self.groups = BackupGroups(cluster.n_workers, self.config.backup)
        self.master = ColumnMaster(self.groups)
        if self.config.sync_policy != "backup" and self.config.sync_on_exhausted == "stale":
            self.master.cache_contributions = True

        self._dataset: Optional[Dataset] = None
        self._assignment = None
        self._partitions: List[PartitionState] = []
        self._workers: List[ColumnWorker] = []
        self._index: Optional[TwoPhaseIndex] = None
        self._engine: Optional[RoundEngine] = None
        #: the ColumnShardStore behind a store-backed load (else None)
        self._store = None
        self._n_features: int = 0
        self._dataset_name: str = ""
        self._data_rows: int = 0
        self._data_nnz: int = 0
        #: per-worker shard cache counters of the most recent
        #: backend='local' fit() (worker id -> partition id -> stats)
        self.store_read_stats: Dict[int, Dict[int, Dict[str, int]]] = {}
        #: the LocalRuntime of the most recent backend='local' fit()
        self.local_runtime = None
        self.load_report: Optional[LoadReport] = None
        #: phase durations of the most recent iteration (seconds), keyed
        #: by phase name — the input to time-breakdown analyses
        self.last_phase_seconds: Dict[str, float] = {}
        #: per-worker task times of the most recent iteration, keyed by
        #: phase ('compute_statistics' / 'update_model'); killed or
        #: failed workers are absent from 'update_model'
        self.last_worker_seconds: Dict[str, Dict[int, float]] = {}
        #: workers the master killed after recovery in the last iteration
        self.last_killed: set = set()

    # ------------------------------------------------------------------
    # loading (Algorithm 3 lines 2-3 + Section IV transformation)
    # ------------------------------------------------------------------
    def load(self, dataset: Dataset) -> LoadReport:
        """Transform row-stored data to column partitions and init models.

        With ``config.store_dir`` set, the row→column transformation
        runs as an out-of-core disk shuffle into a column-shard store
        (reused if the directory already holds a matching one) and the
        workers read their shards lazily through mmap — same block
        layout, same simulated load cost, bit-identical training.
        """
        K = self.cluster.n_workers
        self._dataset = dataset
        self._n_features = dataset.n_features
        self._dataset_name = dataset.name
        self._data_rows = dataset.n_rows
        self._data_nnz = dataset.nnz
        self._assignment = make_assignment(self.config.scheme, dataset.n_features, K)
        if self.config.store_dir:
            from repro.store import store_backed_dispatch

            self._store, stores, block_sizes, report = store_backed_dispatch(
                dataset,
                self.cluster,
                self.config.store_dir,
                scheme=self.config.scheme,
                block_size=self.config.block_size,
                memory_budget_bytes=self.config.memory_budget_bytes,
            )
        else:
            dispatch = (
                dispatch_block_based if self.config.loader == "block" else dispatch_naive
            )
            stores, block_sizes, report = dispatch(
                dataset, self._assignment, self.cluster, block_size=self.config.block_size
            )
        self.load_report = report
        self._init_partitions(stores, block_sizes)
        return report

    def load_from_store(self, store_dir: Optional[str] = None) -> LoadReport:
        """Load straight from an existing column-shard store, no dataset.

        The store's manifest supplies the shapes; the simulated load
        cost replays from shard footers (:class:`~repro.store.StoreModel`),
        so the run is indistinguishable from :meth:`load` on the original
        dataset.  Full-loss evaluation (``eval_every``) reassembles the
        dataset lazily on first use.
        """
        from repro.store import store_backed_dispatch

        target = store_dir if store_dir is not None else self.config.store_dir
        if not target:
            raise ConfigurationError(
                "load_from_store() needs a store directory (argument or "
                "config.store_dir)"
            )
        self._store, stores, block_sizes, report = store_backed_dispatch(
            None,
            self.cluster,
            target,
            scheme=self.config.scheme,
            block_size=self.config.block_size,
            memory_budget_bytes=self.config.memory_budget_bytes,
        )
        manifest = self._store.manifest
        self._dataset = None
        self._n_features = manifest.n_features
        self._dataset_name = manifest.name
        self._data_rows = manifest.n_rows
        self._data_nnz = manifest.nnz
        self._assignment = make_assignment(
            self.config.scheme, manifest.n_features, self.cluster.n_workers
        )
        self.load_report = report
        self._init_partitions(stores, block_sizes)
        return report

    def _init_partitions(self, stores, block_sizes) -> None:
        """Shared load tail: index, initModel, workers, memory, recovery."""
        K = self.cluster.n_workers
        self._index = TwoPhaseIndex(block_sizes, base_seed=self.config.seed)

        # initModel: one global init, sliced per partition so distributed
        # initialisation matches a single-machine init exactly.
        full_init = self.model.init_params(self._n_features, seed=self.config.seed)
        self._partitions = []
        for p in range(K):
            columns = self._assignment.columns_of(p)
            self._partitions.append(
                PartitionState(
                    partition_id=p,
                    store=stores[p],
                    columns=columns,
                    params=np.array(full_init[columns], dtype=np.float64, copy=True),
                    optimizer=self.optimizer.spawn(),
                )
            )
        self._workers = [
            ColumnWorker(
                w,
                self.model,
                [self._partitions[p] for p in self.groups.partitions_of_worker(w)],
            )
            for w in range(K)
        ]
        self._charge_setup_memory()
        self.recovery_manager = RecoveryManager(
            self.cluster,
            self.groups,
            self.recovery_policy,
            self._workers,
            self._partitions,
            replay_fn=self._replay_iteration,
        )

    def _charge_setup_memory(self) -> None:
        """Table I memory shape: master holds B-sized buffers, workers
        hold shard + model partition + two batch-sized temporaries."""
        B, width = self.config.batch_size, self.model.statistics_width
        stats_bytes = dense_vector_bytes(B * width)
        self.cluster.charge_memory(self.cluster.MASTER, 2 * stats_bytes, "statistics buffers")
        for worker in self._workers:
            footprint = (
                worker.stored_bytes()
                + worker.model_elements() * 8
                + 2 * stats_bytes
            )
            self.cluster.charge_memory(worker.worker_id, footprint, "shard+model")

    # ------------------------------------------------------------------
    # training loop (Algorithm 3 lines 4-8)
    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: Optional[Dataset] = None,
        iterations: Optional[int] = None,
        eval_dataset: Optional[Dataset] = None,
    ) -> TrainingResult:
        """Run SGD; returns the loss/time trace and final parameters.

        ``eval_dataset`` enables held-out loss tracking: at every
        evaluation point the record additionally carries the loss on
        that dataset (``TrainingResult.eval_losses()``), without
        charging simulated time.
        """
        if dataset is not None and self._index is None:
            self.load(dataset)
        if self._index is None:
            raise TrainingError(
                "call load()/load_from_store() or pass a dataset to fit()"
            )
        self._eval_dataset = eval_dataset
        iterations = iterations if iterations is not None else self.config.iterations
        check_positive(iterations, "iterations")

        result = TrainingResult(
            system="ColumnSGD" if self.config.backup == 0 else
            "ColumnSGD-backup{}".format(self.config.backup),
            model=self.model.name,
            dataset=self._dataset_name,
            batch_size=self.config.batch_size,
            n_workers=self.cluster.n_workers,
        )
        if self.config.eval_every:
            self._record(result, iteration=-1, duration=0.0, bytes_sent=0, evaluate=True)

        if self.config.backend == "local":
            from repro.core.localexec import run_local_columnsgd

            return run_local_columnsgd(self, iterations, result)

        self._engine = RoundEngine(
            self,
            self.cluster,
            straggler=self.straggler,
            check_effects=self.config.check_effects,
            check_cost=self.config.check_cost,
        )
        checker = ProtocolChecker(self.cluster) if self.config.check_protocol else None
        stopped_at = run_training_loop(
            cluster=self.cluster,
            run_round=self.run_round,
            iterations=iterations,
            eval_every=self.config.eval_every,
            record=lambda t, duration, bytes_sent, evaluate: self._record(
                result, t, duration, bytes_sent, evaluate
            ),
            handle_failures=self._handle_failures,
            checker=checker,
            should_stop=lambda: self._should_stop_early(result),
        )
        if stopped_at is not None:
            result.notes = "early stop at iteration {}".format(stopped_at)

        result.final_params = self.current_params()
        return result

    def _should_stop_early(self, result: TrainingResult) -> bool:
        """Plateau detection over the evaluated-loss series."""
        patience = self.config.early_stop_patience
        if not patience:
            return False
        losses = [loss for _, _, loss in result.losses()]
        if len(losses) <= patience:
            return False
        best_before = min(losses[:-patience])
        recent_best = min(losses[-patience:])
        return recent_best > best_before - self.config.early_stop_min_improvement

    # ------------------------------------------------------------------
    # the round, declared (Algorithm 3's phases) and executed by the engine
    # ------------------------------------------------------------------
    def round_spec(self) -> RoundSpec:
        """Algorithm 3 as a declarative spec: two Spark stages
        (computeStatistics, updateModel) around the master's
        gather-reduce-broadcast interlude.  Table I, ColumnSGD row:
        K pushes + K broadcasts of ``B * width`` values per round.

        With ``config.overlap`` (the default) the spec declares real
        ``after=`` overlap — streaming reduce concurrent with the
        statistics gather, next-batch prefetch concurrent with the
        whole network interlude — see :meth:`_overlap_round_spec`."""
        if self.config.overlap:
            return self._overlap_round_spec()
        return RoundSpec(
            system="ColumnSGD",
            sync=self._sync_policy(),
            phases=(
                ComputePhase(
                    "compute_statistics",
                    run="_phase_compute_statistics",
                    synchronized=True,
                ),
                CommPhase(
                    "gather",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_statistics_push_sizes",
                ),
                MasterPhase("reduce", run="_phase_reduce"),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.STATISTICS_BCAST,
                    pattern="broadcast",
                    sizes="_statistics_size",
                ),
                ComputePhase("update_model", run="_phase_update_model"),
            ),
        )

    def _overlap_round_spec(self) -> RoundSpec:
        """The same round with the race-free overlap made explicit.

        Two ``after=`` relaxations, both proven conflict-free by lint
        rule R012 (and guarded at runtime by ``check_effects``):

        * ``reduce`` depends only on ``compute_statistics`` — the master
          reduces contributions as they stream in, concurrently with the
          tail of the gather.  The round's critical path drops from
          ``gather + reduce`` to ``max(gather, reduce)``.
        * ``prefetch_batch`` starts at round offset zero (``after=()``)
          and overlaps everything up to ``update_model``: workers page
          the next batch's shard rows while statistics are on the wire.

        Execution stays in declaration order (the engine's overlap is a
        scheduling statement), so the numerics — and hence the golden
        trajectories — are bit-identical to the sequential spec.
        """
        return RoundSpec(
            system="ColumnSGD",
            sync=self._sync_policy(),
            phases=(
                ComputePhase(
                    "compute_statistics",
                    run="_phase_compute_statistics",
                    synchronized=True,
                ),
                CommPhase(
                    "gather",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_statistics_push_sizes",
                ),
                ComputePhase(
                    "prefetch_batch",
                    run="_phase_prefetch_batch",
                    after=(),
                    reads=(
                        "ctx.slowdowns",
                        "self._data_nnz",
                        "self._data_rows",
                        "self.cluster",
                        "self.config",
                    ),
                    writes=("ctx.scratch[prefetch_nnz]",),
                ),
                MasterPhase(
                    "reduce",
                    run="_phase_reduce",
                    after=("compute_statistics",),
                ),
                CommPhase(
                    "broadcast",
                    kind=MessageKind.STATISTICS_BCAST,
                    pattern="broadcast",
                    sizes="_statistics_size",
                    after=("gather", "reduce"),
                ),
                ComputePhase(
                    "update_model",
                    run="_phase_update_model",
                    after=("broadcast", "prefetch_batch"),
                ),
            ),
        )

    def _sync_policy(self):
        """The spec's sync policy, from the config's ``sync_*`` knobs."""
        if self.config.sync_policy == "backup":
            return BackupSync(self.groups)
        return TimeoutSync(
            self.groups,
            alpha=self.config.sync_alpha,
            max_retries=(
                self.config.sync_max_retries
                if self.config.sync_policy == "retry"
                else 0
            ),
            backoff=self.config.sync_backoff,
            on_exhausted=self.config.sync_on_exhausted,
        )

    def run_round(self, t: int) -> RoundOutcome:
        """Execute one engine round (public: benches drive this directly).

        Does not advance the clock; refreshes ``last_phase_seconds``,
        ``last_worker_seconds`` and ``last_killed``.
        """
        if self._engine is None:
            self._engine = RoundEngine(
                self,
                self.cluster,
                straggler=self.straggler,
                check_effects=self.config.check_effects,
                check_cost=self.config.check_cost,
            )
        outcome = self._engine.run_round(t)
        self.last_phase_seconds = dict(outcome.phase_seconds)
        self.last_worker_seconds = {
            name: dict(per_worker)
            for name, per_worker in outcome.worker_seconds.items()
        }
        self.last_killed = set(outcome.killed)
        return outcome

    def _phase_compute_statistics(self, ctx) -> Dict[int, float]:
        """Step 1: computeStatistics on every worker.

        A worker's task time is task launch + kernel time; the paper's
        StragglerLevel is the ratio of a straggler's *whole task* time
        to a normal worker's, so the slowdown multiplies both.
        """
        B, width = self.config.batch_size, self.model.statistics_width
        draws = self._index.sample(ctx.t, B)
        cost = self.cluster.cost
        stats_by_worker: Dict[int, Optional[np.ndarray]] = {}
        per_worker: Dict[int, float] = {}
        for worker in self._workers:
            if worker.failed:
                stats_by_worker[worker.worker_id] = None
                per_worker[worker.worker_id] = float("inf")
                continue
            stats, nnz = worker.compute_statistics(draws)
            stats_by_worker[worker.worker_id] = self._through_wire(stats)
            task = cost.task_overhead + cost.sparse_work(nnz, passes=width)
            per_worker[worker.worker_id] = task * ctx.slowdowns[worker.worker_id]
        ctx.failed = frozenset(
            w.worker_id for w in self._workers if w.failed
        )
        ctx.scratch["stats_by_worker"] = stats_by_worker
        ctx.scratch["finish"] = [
            per_worker[w] for w in range(self.cluster.n_workers)
        ]
        return per_worker

    def _phase_prefetch_batch(self, ctx) -> Dict[int, float]:
        """Page the next batch's shard rows while the round is on the wire.

        Pure cost accounting for the overlap: no numerics, no RNG draws,
        and none of the state the concurrent phases write (the next
        round's draws are deterministic per iteration, so nothing needs
        to be materialised early).  The cost charges one pass over the
        shard's expected batch footprint — ``B`` rows at the dataset's
        average density, split across the column partitions.
        """
        B = self.config.batch_size
        expected_nnz = B * self._data_nnz / (self._data_rows * self.cluster.n_workers)
        ctx.scratch["prefetch_nnz"] = expected_nnz
        work = self.cluster.cost.sparse_work(expected_nnz, passes=1)
        return {
            w: work * ctx.slowdowns[w]
            for w in range(self.cluster.n_workers)
        }

    def _statistics_size(self, ctx) -> int:
        """Wire bytes of one statistics buffer (B * width values)."""
        B, width = self.config.batch_size, self.model.statistics_width
        return OBJECT_OVERHEAD_BYTES + B * width * self.config.wire_value_bytes

    def _statistics_push_sizes(self, ctx) -> List[int]:
        """One push per worker the sync policy selected."""
        return [self._statistics_size(ctx)] * len(ctx.chosen)

    def _phase_reduce(self, ctx) -> float:
        """Master sums one contribution per group (reduceStatistics)."""
        reduced = self._through_wire(
            self.master.reduce(
                ctx.scratch["stats_by_worker"],
                finish_times=ctx.scratch["finish"],
                stale_groups=ctx.stale_groups or None,
            )
        )
        ctx.scratch["reduced"] = reduced
        B, width = self.config.batch_size, self.model.statistics_width
        return self.cluster.cost.dense_work(len(ctx.chosen) * B * width)

    def _phase_update_model(self, ctx) -> Dict[int, float]:
        """Step 3: updateModel.

        Each partition is numerically updated exactly once, by its
        first live, non-killed replica; every live replica is charged
        the update time for the partitions it maintains.
        """
        width = self.model.statistics_width
        cost = self.cluster.cost
        reduced = ctx.scratch["reduced"]
        updater_of: Dict[int, int] = {}
        for p in range(self.cluster.n_workers):
            if p // self.groups.group_size in ctx.stale_groups:
                # the group never reported this round; its partitions
                # skip the update and catch up when the group rejoins
                continue
            for w in self.groups.replicas_of_partition(p):
                if not self._workers[w].failed and w not in ctx.killed:
                    updater_of[p] = w
                    break
            else:
                raise TrainingError(
                    "partition {} has no live replica to update".format(p)
                )
        update_times: Dict[int, float] = {}
        for worker in self._workers:
            if worker.failed or worker.worker_id in ctx.killed:
                continue
            mine = {p for p, w in updater_of.items() if w == worker.worker_id}
            worker.update_model(reduced, ctx.t, only_partitions=mine)
            # Time is charged for every replica the worker maintains (in
            # the real system each group member updates all S+1 copies);
            # numerically each partition was touched exactly once above
            # because PartitionState objects are shared between replicas.
            task = cost.task_overhead + cost.sparse_work(
                worker.cached_batch_nnz(), passes=width
            )
            update_times[worker.worker_id] = task * ctx.slowdowns[worker.worker_id]
        return update_times

    def _through_wire(self, statistics: np.ndarray) -> np.ndarray:
        """Apply the configured wire precision to a statistics buffer.

        ``fp32`` rounds values through float32 — an honest model of
        lossy compression: the traffic halves *and* the numerics see the
        rounding, so the exactness invariant intentionally weakens to
        float32 resolution.
        """
        if self.config.wire_precision == "fp32":
            return statistics.astype(np.float32).astype(np.float64)
        return statistics

    # ------------------------------------------------------------------
    # manual worker control (the paper's footnote 6 scenario)
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int) -> None:
        """Permanently kill a worker without recovery.

        Models the paper's footnote 6: "we just kill this worker and
        continue the training without data re-distribution".  With
        backup computation the group replicas keep the job exact; with
        no backup the next iteration raises
        :class:`~repro.errors.StatisticsRecoveryError` because the
        worker's partition statistics are unrecoverable.
        """
        if not 0 <= worker_id < self.cluster.n_workers:
            raise ConfigurationError(
                "unknown worker {}; cluster has workers 0..{}".format(
                    worker_id, self.cluster.n_workers - 1
                )
            )
        self._workers[worker_id].fail()

    # ------------------------------------------------------------------
    # failures (Section X)
    # ------------------------------------------------------------------
    def _handle_failures(self, t: int) -> float:
        """Apply upkeep and scheduled failures; returns extra recovery seconds.

        Runs inside the protocol checker's round window, so heartbeat,
        checkpoint, and replay traffic is audited (as unchecked kinds)
        rather than crossing the barrier.
        """
        manager = self.recovery_manager
        extra = manager.on_iteration(t) if manager is not None else 0.0
        for event in self.failures.events_at(t):
            if event.kind == FailureKind.MASTER:
                if manager is None or not self.recovery_policy.master_restart:
                    raise MasterFailedError(
                        "master failed at iteration {}".format(t)
                    )
                extra += manager.recover_master(t)
                continue
            if event.kind == FailureKind.TASK:
                # Spark relaunches the task; data and model are cached, so
                # the cost is one extra task launch (plus detection delay
                # when a heartbeat detector is configured).
                extra += (
                    manager.restart_task(t)
                    if manager is not None
                    else self.cluster.cost.task_overhead
                )
                continue
            extra += self._recover_worker(event.worker_id, iteration=t)
        return extra

    def _recover_worker(self, worker_id: int, iteration: int = -1) -> float:
        """Worker crash: reload the shard; model-partition handling
        escalates replica copy -> checkpoint restore -> zero re-init
        (see :class:`~repro.core.recovery.RecoveryManager`)."""
        if self.recovery_manager is None:
            raise TrainingError("call load() before recovering workers")
        return self.recovery_manager.recover_worker(worker_id, iteration=iteration)

    def _replay_iteration(self, tau: int) -> float:
        """Re-execute iteration ``tau`` after a master restart.

        Numerically identical to the original round (same deterministic
        draws, same wire rounding, same reduce order); communication is
        accounted under :data:`~repro.net.message.MessageKind.CHECKPOINT`
        (recovery traffic, unchecked by Table-I envelopes) through the
        same star patterns, so replay bytes and seconds stay honest.
        Returns the replayed round's duration.
        """
        B, width = self.config.batch_size, self.model.statistics_width
        draws = self._index.sample(tau, B)
        cost = self.cluster.cost
        stats_by_worker: Dict[int, Optional[np.ndarray]] = {}
        finish: List[float] = []
        for worker in self._workers:
            if worker.failed:
                stats_by_worker[worker.worker_id] = None
                finish.append(float("inf"))
                continue
            stats, nnz = worker.compute_statistics(draws)
            stats_by_worker[worker.worker_id] = self._through_wire(stats)
            finish.append(cost.task_overhead + cost.sparse_work(nnz, passes=width))
        compute_s = max((f for f in finish if f != float("inf")), default=0.0)

        reduced = self._through_wire(
            self.master.reduce(stats_by_worker, finish_times=finish)
        )
        size = OBJECT_OVERHEAD_BYTES + B * width * self.config.wire_value_bytes
        pushers = sum(1 for f in finish if f != float("inf"))
        gather_s = self.cluster.topology.gather(
            MessageKind.CHECKPOINT, [size] * pushers
        )
        reduce_s = cost.dense_work(self.groups.n_groups * B * width)
        bcast_s = self.cluster.topology.broadcast(MessageKind.CHECKPOINT, size)

        update_s = 0.0
        updater_of: Dict[int, int] = {}
        for p in range(self.cluster.n_workers):
            for w in self.groups.replicas_of_partition(p):
                if not self._workers[w].failed:
                    updater_of[p] = w
                    break
        for worker in self._workers:
            if worker.failed:
                continue
            mine = {p for p, w in updater_of.items() if w == worker.worker_id}
            worker.update_model(reduced, tau, only_partitions=mine)
            task = cost.task_overhead + cost.sparse_work(
                worker.cached_batch_nnz(), passes=width
            )
            update_s = max(update_s, task)
        return compute_s + gather_s + reduce_s + bcast_s + update_s

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def current_params(self) -> np.ndarray:
        """Assemble the full model from the column partitions."""
        if self._index is None:
            raise TrainingError("no model yet; call load() first")
        full = np.zeros(
            self.model.param_shape(self._n_features), dtype=np.float64
        )
        for state in self._partitions:
            full[state.columns] = state.params
        return full

    def set_params(self, full_params: np.ndarray) -> None:
        """Scatter a full parameter array into the column partitions.

        Warm-starts training from a checkpoint (see :mod:`repro.io`).
        Optimizer state (momenta, accumulators) is reset, matching what
        restarting a job from a saved model does in practice.
        """
        if self._index is None:
            raise TrainingError("call load() before set_params()")
        full_params = np.asarray(full_params, dtype=np.float64)
        expected = self.model.param_shape(self._n_features)
        if full_params.shape != tuple(expected):
            raise TrainingError(
                "params shape {} does not match model shape {}".format(
                    full_params.shape, tuple(expected)
                )
            )
        for state in self._partitions:
            state.params[...] = full_params[state.columns]
            state.optimizer.reset()

    def evaluate_loss(self, dataset: Optional[Dataset] = None) -> float:
        """Full objective on the (training) dataset — not charged to time.

        After a dataset-less :meth:`load_from_store`, the training data
        is reassembled from the shards once, on first evaluation.
        """
        data = dataset if dataset is not None else self._dataset
        if data is None:
            if self._store is None:
                raise TrainingError("no dataset to evaluate; call load() first")
            self._dataset = data = self._store.materialize_dataset()
        return self.model.loss(data.features, data.labels, self.current_params())

    def _record(
        self,
        result: TrainingResult,
        iteration: int,
        duration: float,
        bytes_sent: int,
        evaluate: bool,
        now: Optional[float] = None,
    ) -> None:
        """Append one iteration record; ``now`` overrides the timestamp
        source (the local backend passes its wall clock — the simulated
        clock does not advance on that path)."""
        loss = self.evaluate_loss() if evaluate else None
        if loss is not None and not np.isfinite(loss):
            raise TrainingError(
                "training diverged at iteration {} (loss={})".format(iteration, loss)
            )
        eval_loss = None
        if evaluate and getattr(self, "_eval_dataset", None) is not None:
            eval_loss = self.evaluate_loss(self._eval_dataset)
        result.add(
            IterationRecord(
                iteration=iteration,
                sim_time=self.cluster.clock.now() if now is None else now,
                duration=duration,
                loss=loss,
                bytes_sent=bytes_sent,
                eval_loss=eval_loss,
            )
        )


def train_columnsgd(
    dataset: Dataset,
    model: StatisticsModel,
    optimizer: Optimizer,
    cluster: SimulatedCluster,
    **config_kwargs,
) -> TrainingResult:
    """One-call convenience: load + fit with a fresh driver."""
    driver = ColumnSGDDriver(
        model, optimizer, cluster, config=ColumnSGDConfig(**config_kwargs)
    )
    driver.load(dataset)
    return driver.fit()
