"""ColumnSGD worker: collocated data shard(s) + model partition(s).

A worker owns one :class:`PartitionState` per logical partition it
stores — exactly one without backup computation, S+1 with it.  The
worker implements the paper's programming interface (Fig 12):
``init_model`` happens at construction, ``compute_statistics`` is
Algorithm 3's Step 1, ``update_model`` is Step 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkerFailedError
from repro.linalg import CSRMatrix
from repro.models.base import StatisticsModel
from repro.optim.base import Optimizer
from repro.partition.workset import WorksetStore


@dataclass
class PartitionState:
    """One logical (data shard, model partition) pair.

    ``columns`` maps local index -> global feature id; ``params`` has
    shape ``(len(columns),) + model.param_shape(m)[1:]``.
    """

    partition_id: int
    store: WorksetStore
    columns: np.ndarray
    params: np.ndarray
    optimizer: Optimizer

    @property
    def local_dim(self) -> int:
        """Features owned by this partition."""
        return int(self.columns.size)


class ColumnWorker:
    """One simulated worker process.

    The worker caches the assembled local batch between the statistics
    and update phases (Algorithm 3 reuses ``XB``), and reports the
    non-zeros it touched so the driver can charge compute time.
    """

    def __init__(self, worker_id: int, model: StatisticsModel, partitions: List[PartitionState]):
        self.worker_id = int(worker_id)
        self.model = model
        self.partitions: Dict[int, PartitionState] = {
            p.partition_id: p for p in partitions
        }
        self._cached_batches: Dict[int, Tuple[CSRMatrix, np.ndarray]] = {}
        self.failed = False

    # ------------------------------------------------------------------
    def partition_ids(self) -> List[int]:
        """Logical partitions stored here, sorted."""
        return sorted(self.partitions)

    def _check_alive(self) -> None:
        if self.failed:
            raise WorkerFailedError(self.worker_id)

    # ------------------------------------------------------------------
    # Algorithm 3, Step 1
    # ------------------------------------------------------------------
    def compute_statistics(
        self, draws: Sequence[Tuple[int, int]]
    ) -> Tuple[np.ndarray, int]:
        """Partial statistics over *all* stored partitions for the batch.

        Returns ``(statistics, nnz_touched)``.  The statistics are the
        sum over this worker's partitions — with backup computation that
        is the whole group's contribution, so the master needs one
        response per group.
        """
        self._check_alive()
        self._cached_batches.clear()
        stats = None
        nnz = 0
        for pid in self.partition_ids():
            partition = self.partitions[pid]
            features, labels = partition.store.assemble_batch(draws)
            self._cached_batches[pid] = (features, labels)
            part_stats = self.model.compute_statistics(features, partition.params)
            nnz += features.nnz
            stats = part_stats if stats is None else stats + part_stats
        if stats is None:
            raise WorkerFailedError(self.worker_id)
        return stats, nnz

    # ------------------------------------------------------------------
    # Algorithm 3, Step 3
    # ------------------------------------------------------------------
    def update_model(
        self, statistics: np.ndarray, iteration: int, only_partitions: Optional[set] = None
    ) -> int:
        """Compute local gradients from complete statistics and update.

        ``only_partitions`` restricts the update (the driver uses it so
        each replicated partition is numerically updated exactly once,
        while time is still charged for every replica).  Returns the
        non-zeros touched by the partitions actually updated.
        """
        self._check_alive()
        nnz = 0
        for pid in self.partition_ids():
            if only_partitions is not None and pid not in only_partitions:
                continue
            partition = self.partitions[pid]
            if pid not in self._cached_batches:
                raise WorkerFailedError(self.worker_id)
            features, labels = self._cached_batches[pid]
            gradient = self.model.gradient_from_statistics(
                features, labels, statistics, partition.params
            )
            partition.optimizer.step(partition.params, gradient, iteration)
            nnz += features.nnz
        return nnz

    # ------------------------------------------------------------------
    # bookkeeping used by the driver's cost model
    # ------------------------------------------------------------------
    def cached_batch_nnz(self) -> int:
        """Non-zeros in the currently cached mini-batch, all partitions."""
        return sum(features.nnz for features, _ in self._cached_batches.values())

    def stored_nnz(self) -> int:
        """Total non-zeros across stored shards (memory model input)."""
        return sum(p.store.nnz for p in self.partitions.values())

    def stored_bytes(self) -> int:
        """Data-shard footprint in bytes."""
        return sum(p.store.stored_bytes() for p in self.partitions.values())

    def model_elements(self) -> int:
        """Model parameters stored here (all replicas)."""
        return sum(p.params.size for p in self.partitions.values())

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the worker: data and cached state become unavailable."""
        self.failed = True
        self._cached_batches.clear()

    def recover(self, partitions: List[PartitionState]) -> None:
        """Restart with reloaded partitions (fresh optimizer state)."""
        self.partitions = {p.partition_id: p for p in partitions}
        self._cached_batches.clear()
        self.failed = False
