"""S-backup computation groups (Section IV-B, Fig 6).

With K workers and backup level S, workers are divided into K/(S+1)
groups; each group owns S+1 data/model partitions and every member
stores *all* of them — members are replicas of one another.  During
training each member reports the statistics aggregated over the whole
group's partitions, so the master only needs one response per group to
recover the complete statistics; up to S stragglers per group are
tolerated.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import PartitionError, StatisticsRecoveryError
from repro.utils.validation import check_non_negative, check_positive


class BackupGroups:
    """Partition/worker grouping for S-backup computation.

    ``S = 0`` degenerates to singleton groups — pure ColumnSGD.
    """

    def __init__(self, n_workers: int, backup: int = 0):
        check_positive(n_workers, "n_workers")
        check_non_negative(backup, "backup")
        group_size = backup + 1
        if n_workers % group_size != 0:
            raise PartitionError(
                "K={} workers cannot form groups of S+1={}".format(n_workers, group_size)
            )
        self.n_workers = int(n_workers)
        self.backup = int(backup)
        self.group_size = group_size
        self.n_groups = self.n_workers // group_size
        self._groups: List[Tuple[int, ...]] = [
            tuple(range(g * group_size, (g + 1) * group_size)) for g in range(self.n_groups)
        ]

    # ------------------------------------------------------------------
    def groups(self) -> List[Tuple[int, ...]]:
        """Worker ids per group, in group order."""
        return list(self._groups)

    def group_of(self, worker: int) -> int:
        """Group index of ``worker``."""
        if not 0 <= worker < self.n_workers:
            raise PartitionError("worker {} out of range".format(worker))
        return worker // self.group_size

    def partitions_of_worker(self, worker: int) -> Tuple[int, ...]:
        """Partition ids ``worker`` stores (its whole group's partitions).

        Partition ids coincide with worker ids of the no-backup layout:
        group g owns partitions ``g*(S+1) .. g*(S+1)+S``.
        """
        g = self.group_of(worker)
        return self._groups[g]

    def partitions_of_group(self, group: int) -> Tuple[int, ...]:
        """Partition ids owned by ``group``."""
        return self._groups[group]

    def replicas_of_partition(self, partition: int) -> Tuple[int, ...]:
        """Workers holding a replica of ``partition``."""
        return self._groups[partition // self.group_size]

    # ------------------------------------------------------------------
    def select_survivors(self, dead: FrozenSet[int]) -> List[int]:
        """Pick one live reporter per group.

        ``dead`` are workers whose statistics never arrive (permanent
        stragglers that were killed, or crashed workers).  Raises
        :class:`StatisticsRecoveryError` when some group has no live
        member — the statistics cannot be recovered then.
        """
        survivors: List[int] = []
        missing: List[int] = []
        for g, members in enumerate(self._groups):
            alive = [w for w in members if w not in dead]
            if alive:
                survivors.append(alive[0])
            else:
                missing.append(g)
        if missing:
            raise StatisticsRecoveryError(missing)
        return survivors

    def fastest_per_group(self, finish_times: Sequence[float]) -> List[int]:
        """Per group, the member finishing first (Fig 6's recovery rule).

        ``finish_times[w]`` may be ``float('inf')`` for dead workers; a
        group of all-inf members raises
        :class:`StatisticsRecoveryError`.
        """
        chosen: List[int] = []
        missing: List[int] = []
        for g, members in enumerate(self._groups):
            best = min(members, key=lambda w: finish_times[w])
            if finish_times[best] == float("inf"):
                missing.append(g)
            else:
                chosen.append(best)
        if missing:
            raise StatisticsRecoveryError(missing)
        return chosen

    def __repr__(self) -> str:
        return "BackupGroups(K={}, S={}, groups={})".format(
            self.n_workers, self.backup, self.n_groups
        )
