"""ColumnSGD on the local multiprocess backend.

:func:`run_local_columnsgd` executes Algorithm 3 against a
:class:`~repro.runtime.LocalRuntime`: every logical worker is a real OS
process holding its column partition(s), statistics cross process
boundaries as codec-encoded payloads
(:func:`~repro.storage.serialization.encode_payload`), and the round's
duration is measured wall-clock instead of derived from Table-I
formulas.

The numerics are the same code the simulator runs —
:class:`~repro.core.worker.ColumnWorker` in the worker processes,
:class:`~repro.core.master.ColumnMaster` at the master — and every
process holds its own copy of the shared
:class:`~repro.partition.indexing.TwoPhaseIndex`, so iteration ``t``'s
draws are identical everywhere without any batch-index traffic (the
paper's deterministic-index trick, now exercised across real process
boundaries).  With ``wire_precision='fp64'`` the codec is raw-byte
lossless and a fixed-seed run reproduces the simulator's trajectory
exactly; ``fp32`` rounds through float32 on encode, matching the
simulated wire's semantics value for value.

Fault tolerance mirrors the simulator's pipeline on real processes
(see ``docs/faults.md``):

* a :class:`~repro.runtime.LocalChaos` plan passed as ``failures=``
  SIGKILLs worker processes, stalls handlers, and drops/garbles reply
  frames — seeded and deterministic per seed;
* the transport detects death (pipe EOF) and silence (TimeoutSync-style
  alpha x median deadlines) and this executor recovers: dead processes
  are respawned and their logical workers restored from the on-disk
  :class:`~repro.core.recovery.LocalCheckpointStore` (codec decode +
  optimizer reload — rollback to snapshot, no replay, exactly like the
  simulated ``RecoveryManager``), falling back to zero-init when no
  snapshot exists;
* silent-but-alive workers follow the config's sync policy: ``'stale'``
  substitutes the master's cached contribution for the round (the
  worker catches up in pipe order), ``'raise'``/plain-barrier escalates;
* every episode lands on the engine trace as
  :class:`~repro.engine.trace.RetryEvent` /
  :class:`~repro.engine.trace.RecoveryEvent`, so ``fault_timeline`` and
  gantt rendering work unchanged.

Byte accounting uses the *actual* encoded lengths, which equal the
simulator's size model by construction — so a
:class:`~repro.net.protocol.ProtocolChecker` run against the local
runtime audits real bytes against the same Table-I expectations
(retransmissions under a RETRY envelope, checkpoint/restore traffic as
unchecked CHECKPOINT chatter, like the sim).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.recovery import LocalCheckpointStore
from repro.core.results import TrainingResult
from repro.core.worker import ColumnWorker
from repro.engine import EngineTrace, PhaseEvent, RoundOutcome, run_training_loop
from repro.engine.trace import RecoveryEvent
from repro.errors import ConfigurationError, WorkerUnresponsiveError
from repro.net.message import Message, MessageKind
from repro.net.protocol import ProtocolChecker, TrafficEnvelope
from repro.partition.indexing import TwoPhaseIndex
from repro.runtime.chaos import LocalChaos
from repro.runtime.deadline import TimeoutPolicy
from repro.runtime.local import LocalRuntime, WorkerReply
from repro.storage.serialization import (
    OBJECT_OVERHEAD_BYTES,
    DenseVectorPayload,
    decode_payload,
    encode_payload,
)

#: phase order of one local ColumnSGD round, for trace rendering
_PHASES = ("compute_statistics", "gather", "reduce", "broadcast", "update_model")
_CATEGORIES = {
    "compute_statistics": "compute",
    "gather": "comm",
    "reduce": "master",
    "broadcast": "comm",
    "update_model": "compute",
}
_KINDS = {
    "gather": MessageKind.STATISTICS_PUSH.value,
    "broadcast": MessageKind.STATISTICS_BCAST.value,
}

#: bounded death-recovery attempts per exchange before escalating
_MAX_RECOVERY_ROUNDS = 3


@dataclass
class ColumnWorkerProgram:
    """One logical worker's program, hosted in a worker process.

    Ships the worker's partition state plus its own copy of the batch
    index; every op is deterministic in ``(seed, iteration)`` so no
    coordination messages are needed beyond the statistics exchange.
    """

    worker: ColumnWorker
    index: TwoPhaseIndex
    batch_size: int
    wire_precision: str

    def handle(self, op: str, args: dict, payload: Optional[bytes]):
        if op == "compute":
            draws = self.index.sample(int(args["t"]), self.batch_size)
            stats, nnz = self.worker.compute_statistics(draws)
            encoded = encode_payload(
                DenseVectorPayload(stats, precision=self.wire_precision)
            )
            return {"nnz": int(nnz), "shape": list(stats.shape)}, encoded
        if op == "update":
            reduced = decode_payload(payload).values.reshape(args["shape"])
            self.worker.update_model(reduced, int(args["t"]))
            return {}, None
        if op == "checkpoint":
            # Snapshot every owned partition: wire-codec params (always
            # fp64 — snapshots must restore losslessly) + pickled
            # optimizer state.  The master spills the blob to disk.
            blob = {}
            for pid, state in self.worker.partitions.items():
                encoded = encode_payload(
                    DenseVectorPayload(
                        np.asarray(state.params, dtype=np.float64).ravel(),
                        precision="fp64",
                    )
                )
                blob[pid] = (
                    tuple(state.params.shape),
                    encoded,
                    pickle.dumps(state.optimizer, protocol=pickle.HIGHEST_PROTOCOL),
                )
            return {"partitions": sorted(blob)}, pickle.dumps(blob)
        if op == "restore":
            # Post-respawn state reload: decode each partition's
            # snapshot (or zero-init when the master had none) into the
            # freshly forked — and therefore stale — partition state.
            blob = pickle.loads(payload)
            modes = {}
            for pid, (shape, params_bytes, opt_blob) in blob.items():
                state = self.worker.partitions[pid]
                if params_bytes is None:
                    state.params[...] = 0.0
                    state.optimizer.reset()
                    modes[pid] = "zero-init"
                else:
                    state.params[...] = decode_payload(params_bytes).values.reshape(
                        shape
                    )
                    state.optimizer = pickle.loads(opt_blob)
                    modes[pid] = "checkpoint"
            return {"modes": modes}, None
        if op == "draws":
            draws = self.index.sample(int(args["t"]), self.batch_size)
            return {"draws": [tuple(map(int, d)) for d in draws]}, None
        if op == "store_stats":
            # Shard cache counters of each owned partition (zeros for
            # in-memory stores).  Out-of-band like "params": the store
            # readers live in *this* process, so the master can only
            # learn their hit/miss/bytes tallies through a reply.
            return {
                "stats": {
                    pid: state.store.cache_stats()
                    for pid, state in self.worker.partitions.items()
                }
            }, None
        if op == "params":
            # Out-of-band state fetch for evaluation/final assembly —
            # not message-accounted, matching the simulator's convention
            # that evaluation is free of protocol traffic.
            return {
                "params": {
                    pid: np.array(state.params, copy=True)
                    for pid, state in self.worker.partitions.items()
                }
            }, None
        raise ValueError("unknown op {!r}".format(op))


def _build_program(driver, worker_id: int) -> ColumnWorkerProgram:
    """A (fresh) program for one logical worker, for start or respawn."""
    return ColumnWorkerProgram(
        worker=driver._workers[worker_id],
        index=driver._index,
        batch_size=driver.config.batch_size,
        wire_precision=driver.config.wire_precision,
    )


def make_local_runtime(driver) -> Tuple[LocalRuntime, Dict[int, ColumnWorkerProgram]]:
    """Build (but do not start) the runtime + programs for a driver."""
    config = driver.config
    if driver._index is None:
        raise ConfigurationError("call load() before starting the local backend")
    if (
        not isinstance(driver.failures, LocalChaos)
        and driver.failures.any_scheduled()
    ):
        raise ConfigurationError(
            "backend='local' runs real processes; simulated failure "
            "injection cannot reach them — pass a repro.runtime.LocalChaos "
            "plan for real faults, or use backend='sim'"
        )
    timeout = TimeoutPolicy(
        alpha=config.sync_alpha,
        floor_s=config.local_timeout_s,
        max_retries=(
            config.sync_max_retries if config.sync_policy == "retry" else 0
        ),
        backoff=config.sync_backoff,
    )
    runtime = LocalRuntime(
        driver.cluster.n_workers,
        processes=config.local_processes,
        timeout=timeout,
    )
    programs = {
        w: _build_program(driver, w) for w in range(driver.cluster.n_workers)
    }
    return runtime, programs


def run_local_columnsgd(
    driver,
    iterations: int,
    result: TrainingResult,
    runtime: Optional[LocalRuntime] = None,
) -> TrainingResult:
    """Drive ``iterations`` real multiprocess rounds for ``driver``.

    Called by :meth:`~repro.core.driver.ColumnSGDDriver.fit` when the
    config says ``backend='local'``; ``result`` already carries the run
    metadata (and the initial evaluation record).  An externally
    started ``runtime`` may be passed for tests; otherwise one is
    created, started, and closed here.
    """
    config = driver.config
    owns_runtime = runtime is None
    if owns_runtime:
        runtime, programs = make_local_runtime(driver)
        runtime.start(programs)
    driver.local_runtime = runtime
    # Continue the recorded time axis: load() charged simulated seconds
    # to the cluster clock and the initial eval record carries that
    # offset, so measured rounds must accumulate on top of it.
    runtime.clock.reset(driver.cluster.clock.now())

    trace = EngineTrace(system=result.system)
    runtime.engine_trace = trace
    driver.cluster.engine_trace = trace
    checker = ProtocolChecker(runtime) if config.check_protocol else None
    K = runtime.n_workers

    chaos = driver.failures if isinstance(driver.failures, LocalChaos) else None
    policy = driver.recovery_policy
    store = LocalCheckpointStore() if policy.checkpoint_every else None
    driver.local_checkpoints = store
    stale_allowed = (
        config.sync_policy != "backup" and config.sync_on_exhausted == "stale"
    )

    # ------------------------------------------------------------------
    # fault pipeline: checkpoint, detect, respawn, restore
    # ------------------------------------------------------------------
    def write_checkpoint(t: int) -> float:
        """Pull every live worker's snapshot blob and spill it to disk."""
        ex = runtime.run_all("checkpoint", iteration=t, raise_on_fault=False)
        for w, reply in ex.replies.items():
            runtime.network.send(
                Message(
                    MessageKind.CHECKPOINT,
                    w,
                    Message.MASTER,
                    OBJECT_OVERHEAD_BYTES + len(reply.payload),
                )
            )
            for pid, (shape, params_bytes, opt_blob) in pickle.loads(
                reply.payload
            ).items():
                store.write(t, pid, shape, params_bytes, opt_blob)
        # dead workers discovered here are recovered by the round's first
        # reliable exchange; their partitions keep the previous snapshot
        return ex.seconds

    def recover_dead(t: int, detect_s: float) -> float:
        """Respawn dead processes and restore their logical workers.

        Escalation per partition: checkpoint restore when a snapshot is
        on disk, zero-init otherwise (backup replicas need backup > 0,
        which the local backend does not host).  Records one
        :class:`RecoveryEvent` per recovered worker.
        """
        dead = runtime.dead_workers()
        if not dead:
            return 0.0
        respawn_s = runtime.respawn({w: _build_program(driver, w) for w in dead})
        total = respawn_s
        detect_share = detect_s
        for w in dead:
            blob = {}
            restored_from_store = bool(driver.groups.partitions_of_worker(w))
            for pid in driver.groups.partitions_of_worker(w):
                if store is not None and store.has_snapshot(pid):
                    _, shape, params_bytes, opt_blob = store.read(pid)
                    blob[pid] = (shape, params_bytes, opt_blob)
                else:
                    blob[pid] = (None, None, None)
                    restored_from_store = False
            mode = "checkpoint" if restored_from_store else "zero-init"
            payload = pickle.dumps(blob)
            runtime.network.send(
                Message(
                    MessageKind.CHECKPOINT,
                    Message.MASTER,
                    w,
                    OBJECT_OVERHEAD_BYTES + len(payload),
                )
            )
            ex = runtime.run_all(
                "restore", payload=payload, workers=[w], iteration=t
            )
            total += ex.seconds
            trace.add_recovery(
                RecoveryEvent(
                    round=t,
                    kind="worker",
                    mode=mode,
                    worker=w,
                    detect_s=detect_share,
                    reload_s=respawn_s / len(dead) + ex.seconds,
                )
            )
            detect_share = 0.0  # the episode's detection delay is paid once
        return total

    def exchange_reliably(
        t: int,
        op: str,
        args: Optional[dict] = None,
        payload: Optional[bytes] = None,
        per_worker_args: Optional[Dict[int, dict]] = None,
    ) -> Tuple[Dict[int, WorkerReply], List[int], float, int]:
        """One exchange that survives worker-process death.

        Runs ``op`` across all workers; on detected death it respawns +
        restores (checkpoint -> zero-init) and re-issues the op to every
        worker still missing — deterministic ops make the re-run exact.
        Returns ``(replies, silent_workers, seconds, retries)`` where
        ``silent_workers`` are alive-but-timed-out workers left for the
        sync policy to resolve.
        """
        replies: Dict[int, WorkerReply] = {}
        failures: Dict[int, object] = {}
        seconds = 0.0
        retries = 0
        targets = list(range(K))
        extra = per_worker_args
        for _ in range(_MAX_RECOVERY_ROUNDS):
            ex = runtime.run_all(
                op,
                args=args,
                payload=payload,
                per_worker_args=extra,
                workers=targets,
                iteration=t,
                raise_on_fault=False,
            )
            replies.update(ex.replies)
            seconds += ex.seconds
            retries += ex.retries
            failures = dict(ex.failures)
            if not ex.dead_workers():
                break
            seconds += recover_dead(t, detect_s=ex.seconds)
            targets = sorted(failures)  # everyone still missing
            extra = None  # injected straggler delays apply once
        else:
            raise WorkerUnresponsiveError(
                op,
                dead=runtime.dead_workers(),
                silent=sorted(failures),
            )
        return replies, sorted(failures), seconds, retries

    # ------------------------------------------------------------------
    # the measured round
    # ------------------------------------------------------------------
    def run_round(t: int) -> RoundOutcome:
        round_start = runtime.clock.now()
        extra_s = 0.0
        stall_args: Optional[Dict[int, dict]] = None
        if chaos is not None:
            stall_args = runtime.inject_faults(chaos.events_at(t)) or None
        if store is not None and t % policy.checkpoint_every == 0:
            extra_s += write_checkpoint(t)

        stats_replies, silent, stats_s, retries = exchange_reliably(
            t, "compute", args={"t": t}, per_worker_args=stall_args
        )
        if silent and not stale_allowed:
            raise WorkerUnresponsiveError("compute", silent=silent)
        arrived = sorted(stats_replies)
        payloads = {w: stats_replies[w].payload for w in arrived}
        sizes = [len(payloads[w]) for w in arrived]
        runtime.gather(MessageKind.STATISTICS_PUSH, sizes)
        shape = stats_replies[arrived[0]].result["shape"]
        stale_groups = {w // driver.groups.group_size for w in silent}

        def reduce_step() -> bytes:
            stats_by_worker = {
                w: (
                    decode_payload(payloads[w]).values.reshape(shape)
                    if w in payloads
                    else None
                )
                for w in range(K)
            }
            reduced = driver.master.reduce(
                stats_by_worker, stale_groups=stale_groups or None
            )
            return encode_payload(
                DenseVectorPayload(reduced, precision=config.wire_precision)
            )

        reduced_payload, reduce_s = runtime.measure(reduce_step)
        upd_replies, upd_silent, upd_s, upd_retries = exchange_reliably(
            t, "update", args={"t": t, "shape": shape}, payload=reduced_payload
        )
        # a silent updater already has the frame queued and applies it in
        # pipe order before its next op — no numeric divergence, so the
        # round proceeds (its RetryEvents are on the trace)
        retries += upd_retries
        runtime.broadcast(MessageKind.STATISTICS_BCAST, len(reduced_payload))

        stats_max = max((r.seconds for r in stats_replies.values()), default=0.0)
        upd_max = max((r.seconds for r in upd_replies.values()), default=0.0)
        phase_seconds = {
            "compute_statistics": stats_max,
            "gather": max(0.0, stats_s - stats_max),
            "reduce": reduce_s,
            "broadcast": max(0.0, upd_s - upd_max),
            "update_model": upd_max,
        }
        _trace_round(trace, t, round_start, phase_seconds)
        worker_seconds = {
            "compute_statistics": {
                w: r.seconds for w, r in stats_replies.items()
            },
            "update_model": {w: r.seconds for w, r in upd_replies.items()},
        }
        driver.last_phase_seconds = dict(phase_seconds)
        driver.last_worker_seconds = {
            name: dict(per_worker)
            for name, per_worker in worker_seconds.items()
        }
        driver.last_killed = {
            e.worker for e in trace.round_recoveries(t) if e.worker is not None
        }
        expected = {
            MessageKind.STATISTICS_PUSH: (len(arrived), sum(sizes)),
            MessageKind.STATISTICS_BCAST: (K, K * len(reduced_payload)),
        }
        if retries:
            # each retry is one resend, plus (for garbles) one wasted
            # arrival — bound, not exact, like the sim's ARQ envelope
            frame = OBJECT_OVERHEAD_BYTES + max(sizes + [len(reduced_payload)])
            expected[MessageKind.RETRY] = TrafficEnvelope(
                retries, 2 * retries, 0, 2 * retries * frame
            )
        return RoundOutcome(
            duration=stats_s + reduce_s + upd_s + extra_s,
            phase_seconds=phase_seconds,
            worker_seconds=worker_seconds,
            chosen=set(arrived),
            expected=expected,
        )

    def record(t: int, duration: float, bytes_sent: int, evaluate: bool) -> None:
        if evaluate:
            sync_params(runtime, driver)
        driver._record(
            result, t, duration, bytes_sent, evaluate, now=runtime.clock.now()
        )

    try:
        stopped_at = run_training_loop(
            cluster=runtime,
            run_round=run_round,
            iterations=iterations,
            eval_every=config.eval_every,
            record=record,
            checker=checker,
            should_stop=lambda: driver._should_stop_early(result),
        )
        if stopped_at is not None:
            result.notes = "early stop at iteration {}".format(stopped_at)
        sync_params(runtime, driver)
        driver.store_read_stats = collect_store_stats(runtime)
    finally:
        if owns_runtime:
            runtime.close()
        if store is not None:
            store.close()
    result.final_params = driver.current_params()
    return result


def sync_params(runtime: LocalRuntime, driver) -> None:
    """Pull model partitions out of the worker processes into the driver.

    The worker processes own the live parameters; evaluation and final
    assembly happen at the master, so this copies them back (an
    out-of-band fetch, like the simulator's free evaluation).
    """
    exchange = runtime.run_all("params")
    for reply in exchange.replies.values():
        for pid, params in reply.result["params"].items():
            driver._partitions[pid].params[...] = params


def collect_store_stats(runtime: LocalRuntime) -> Dict[int, Dict[int, Dict[str, int]]]:
    """Pull per-partition shard cache counters out of the workers.

    Returns ``worker id -> partition id -> counters``; in-memory stores
    report zeros, shard-backed ones the real hit/miss/bytes tallies
    charged in their own process.
    """
    exchange = runtime.run_all("store_stats")
    return {
        w: reply.result["stats"] for w, reply in exchange.replies.items()
    }


def _trace_round(
    trace: EngineTrace,
    t: int,
    round_start: float,
    phase_seconds: Dict[str, float],
) -> None:
    """Record measured phases as sequential :class:`PhaseEvent` spans."""
    offset = 0.0
    for name in _PHASES:
        seconds = phase_seconds[name]
        trace.add(
            PhaseEvent(
                round=t,
                phase=name,
                category=_CATEGORIES[name],
                start=offset,
                end=offset + seconds,
                sim_start=round_start + offset,
                sim_end=round_start + offset + seconds,
                kind=_KINDS.get(name),
            )
        )
        offset += seconds


def local_round_sizes(driver) -> List[int]:
    """Analytic per-worker statistics bytes (what the codec must emit)."""
    B, width = driver.config.batch_size, driver.model.statistics_width
    from repro.storage.serialization import OBJECT_OVERHEAD_BYTES

    size = OBJECT_OVERHEAD_BYTES + B * width * driver.config.wire_value_bytes
    return [size] * driver.cluster.n_workers
