"""ColumnSGD on the local multiprocess backend.

:func:`run_local_columnsgd` executes Algorithm 3 against a
:class:`~repro.runtime.LocalRuntime`: every logical worker is a real OS
process holding its column partition(s), statistics cross process
boundaries as codec-encoded payloads
(:func:`~repro.storage.serialization.encode_payload`), and the round's
duration is measured wall-clock instead of derived from Table-I
formulas.

The numerics are the same code the simulator runs —
:class:`~repro.core.worker.ColumnWorker` in the worker processes,
:class:`~repro.core.master.ColumnMaster` at the master — and every
process holds its own copy of the shared
:class:`~repro.partition.indexing.TwoPhaseIndex`, so iteration ``t``'s
draws are identical everywhere without any batch-index traffic (the
paper's deterministic-index trick, now exercised across real process
boundaries).  With ``wire_precision='fp64'`` the codec is raw-byte
lossless and a fixed-seed run reproduces the simulator's trajectory
exactly; ``fp32`` rounds through float32 on encode, matching the
simulated wire's semantics value for value.

Byte accounting uses the *actual* encoded lengths, which equal the
simulator's size model by construction — so a
:class:`~repro.net.protocol.ProtocolChecker` run against the local
runtime audits real bytes against the same Table-I expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.results import TrainingResult
from repro.core.worker import ColumnWorker
from repro.engine import EngineTrace, PhaseEvent, RoundOutcome, run_training_loop
from repro.errors import ConfigurationError
from repro.net.message import MessageKind
from repro.net.protocol import ProtocolChecker
from repro.partition.indexing import TwoPhaseIndex
from repro.runtime.local import LocalRuntime
from repro.storage.serialization import (
    DenseVectorPayload,
    decode_payload,
    encode_payload,
)

#: phase order of one local ColumnSGD round, for trace rendering
_PHASES = ("compute_statistics", "gather", "reduce", "broadcast", "update_model")
_CATEGORIES = {
    "compute_statistics": "compute",
    "gather": "comm",
    "reduce": "master",
    "broadcast": "comm",
    "update_model": "compute",
}
_KINDS = {
    "gather": MessageKind.STATISTICS_PUSH.value,
    "broadcast": MessageKind.STATISTICS_BCAST.value,
}


@dataclass
class ColumnWorkerProgram:
    """One logical worker's program, hosted in a worker process.

    Ships the worker's partition state plus its own copy of the batch
    index; every op is deterministic in ``(seed, iteration)`` so no
    coordination messages are needed beyond the statistics exchange.
    """

    worker: ColumnWorker
    index: TwoPhaseIndex
    batch_size: int
    wire_precision: str

    def handle(self, op: str, args: dict, payload: Optional[bytes]):
        if op == "compute":
            draws = self.index.sample(int(args["t"]), self.batch_size)
            stats, nnz = self.worker.compute_statistics(draws)
            encoded = encode_payload(
                DenseVectorPayload(stats, precision=self.wire_precision)
            )
            return {"nnz": int(nnz), "shape": list(stats.shape)}, encoded
        if op == "update":
            reduced = decode_payload(payload).values.reshape(args["shape"])
            self.worker.update_model(reduced, int(args["t"]))
            return {}, None
        if op == "draws":
            draws = self.index.sample(int(args["t"]), self.batch_size)
            return {"draws": [tuple(map(int, d)) for d in draws]}, None
        if op == "params":
            # Out-of-band state fetch for evaluation/final assembly —
            # not message-accounted, matching the simulator's convention
            # that evaluation is free of protocol traffic.
            return {
                "params": {
                    pid: np.array(state.params, copy=True)
                    for pid, state in self.worker.partitions.items()
                }
            }, None
        raise ValueError("unknown op {!r}".format(op))


def make_local_runtime(driver) -> Tuple[LocalRuntime, Dict[int, ColumnWorkerProgram]]:
    """Build (but do not start) the runtime + programs for a driver."""
    config = driver.config
    if driver._index is None:
        raise ConfigurationError("call load() before starting the local backend")
    if driver.failures.any_scheduled():
        raise ConfigurationError(
            "backend='local' runs real processes; failure injection is a "
            "simulator feature — use backend='sim'"
        )
    runtime = LocalRuntime(
        driver.cluster.n_workers, processes=config.local_processes
    )
    programs = {
        w: ColumnWorkerProgram(
            worker=driver._workers[w],
            index=driver._index,
            batch_size=config.batch_size,
            wire_precision=config.wire_precision,
        )
        for w in range(driver.cluster.n_workers)
    }
    return runtime, programs


def run_local_columnsgd(
    driver,
    iterations: int,
    result: TrainingResult,
    runtime: Optional[LocalRuntime] = None,
) -> TrainingResult:
    """Drive ``iterations`` real multiprocess rounds for ``driver``.

    Called by :meth:`~repro.core.driver.ColumnSGDDriver.fit` when the
    config says ``backend='local'``; ``result`` already carries the run
    metadata (and the initial evaluation record).  An externally
    started ``runtime`` may be passed for tests; otherwise one is
    created, started, and closed here.
    """
    config = driver.config
    owns_runtime = runtime is None
    if owns_runtime:
        runtime, programs = make_local_runtime(driver)
        runtime.start(programs)
    driver.local_runtime = runtime
    # Continue the recorded time axis: load() charged simulated seconds
    # to the cluster clock and the initial eval record carries that
    # offset, so measured rounds must accumulate on top of it.
    runtime.clock.reset(driver.cluster.clock.now())

    trace = EngineTrace(system=result.system)
    runtime.engine_trace = trace
    driver.cluster.engine_trace = trace
    checker = ProtocolChecker(runtime) if config.check_protocol else None
    K = runtime.n_workers

    def run_round(t: int) -> RoundOutcome:
        round_start = runtime.clock.now()
        ex_stats = runtime.run_all("compute", args={"t": t})
        payloads = ex_stats.payloads()
        sizes = [len(payloads[w]) for w in range(K)]
        runtime.gather(MessageKind.STATISTICS_PUSH, sizes)
        shape = ex_stats.replies[0].result["shape"]

        def reduce_step() -> bytes:
            stats_by_worker = {
                w: decode_payload(payloads[w]).values.reshape(shape)
                for w in range(K)
            }
            reduced = driver.master.reduce(stats_by_worker)
            return encode_payload(
                DenseVectorPayload(reduced, precision=config.wire_precision)
            )

        reduced_payload, reduce_s = runtime.measure(reduce_step)
        ex_update = runtime.run_all(
            "update", args={"t": t, "shape": shape}, payload=reduced_payload
        )
        runtime.broadcast(MessageKind.STATISTICS_BCAST, len(reduced_payload))

        phase_seconds = {
            "compute_statistics": ex_stats.max_worker_seconds(),
            "gather": ex_stats.comm_seconds(),
            "reduce": reduce_s,
            "broadcast": ex_update.comm_seconds(),
            "update_model": ex_update.max_worker_seconds(),
        }
        _trace_round(trace, t, round_start, phase_seconds)
        worker_seconds = {
            "compute_statistics": {
                w: r.seconds for w, r in ex_stats.replies.items()
            },
            "update_model": {w: r.seconds for w, r in ex_update.replies.items()},
        }
        driver.last_phase_seconds = dict(phase_seconds)
        driver.last_worker_seconds = {
            name: dict(per_worker)
            for name, per_worker in worker_seconds.items()
        }
        driver.last_killed = set()
        return RoundOutcome(
            duration=ex_stats.seconds + reduce_s + ex_update.seconds,
            phase_seconds=phase_seconds,
            worker_seconds=worker_seconds,
            chosen=set(range(K)),
            expected={
                MessageKind.STATISTICS_PUSH: (K, sum(sizes)),
                MessageKind.STATISTICS_BCAST: (K, K * len(reduced_payload)),
            },
        )

    def record(t: int, duration: float, bytes_sent: int, evaluate: bool) -> None:
        if evaluate:
            sync_params(runtime, driver)
        driver._record(
            result, t, duration, bytes_sent, evaluate, now=runtime.clock.now()
        )

    try:
        stopped_at = run_training_loop(
            cluster=runtime,
            run_round=run_round,
            iterations=iterations,
            eval_every=config.eval_every,
            record=record,
            checker=checker,
            should_stop=lambda: driver._should_stop_early(result),
        )
        if stopped_at is not None:
            result.notes = "early stop at iteration {}".format(stopped_at)
        sync_params(runtime, driver)
    finally:
        if owns_runtime:
            runtime.close()
    result.final_params = driver.current_params()
    return result


def sync_params(runtime: LocalRuntime, driver) -> None:
    """Pull model partitions out of the worker processes into the driver.

    The worker processes own the live parameters; evaluation and final
    assembly happen at the master, so this copies them back (an
    out-of-band fetch, like the simulator's free evaluation).
    """
    exchange = runtime.run_all("params")
    for reply in exchange.replies.values():
        for pid, params in reply.result["params"].items():
            driver._partitions[pid].params[...] = params


def _trace_round(
    trace: EngineTrace,
    t: int,
    round_start: float,
    phase_seconds: Dict[str, float],
) -> None:
    """Record measured phases as sequential :class:`PhaseEvent` spans."""
    offset = 0.0
    for name in _PHASES:
        seconds = phase_seconds[name]
        trace.add(
            PhaseEvent(
                round=t,
                phase=name,
                category=_CATEGORIES[name],
                start=offset,
                end=offset + seconds,
                sim_start=round_start + offset,
                sim_end=round_start + offset + seconds,
                kind=_KINDS.get(name),
            )
        )
        offset += seconds


def local_round_sizes(driver) -> List[int]:
    """Analytic per-worker statistics bytes (what the codec must emit)."""
    B, width = driver.config.batch_size, driver.model.statistics_width
    from repro.storage.serialization import OBJECT_OVERHEAD_BYTES

    size = OBJECT_OVERHEAD_BYTES + B * width * driver.config.wire_value_bytes
    return [size] * driver.cluster.n_workers
