"""The simulated backend: a Runtime adapter over the ``sim`` + ``net`` stack.

:class:`SimRuntime` owns nothing — it forwards every call to the
:class:`~repro.sim.cluster.SimulatedCluster` it wraps (clock to
:class:`~repro.sim.clock.SimClock`, transport to
:class:`~repro.net.topology.StarTopology` and
:func:`~repro.net.topology.allreduce_time`), so a run through the
runtime layer is *bit-identical* to the pre-runtime code path: the same
messages hit the same :class:`~repro.net.network.NetworkModel` in the
same order and the same floats come back.  The golden-trajectory suite
pins this down.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.message import MessageKind
from repro.net.topology import allreduce_time
from repro.runtime.base import Runtime


class SimRuntime(Runtime):
    """Execution substrate backed by the discrete-event simulator."""

    name = "sim"

    def __init__(self, cluster):
        self.cluster = cluster

    @property
    def n_workers(self) -> int:
        return self.cluster.n_workers

    @property
    def clock(self):
        return self.cluster.clock

    @property
    def network(self):
        return self.cluster.network

    # ------------------------------------------------------------------
    def gather(self, kind: MessageKind, sizes: Sequence[int]) -> float:
        return self.cluster.topology.gather(kind, sizes)

    def broadcast(self, kind: MessageKind, size: int) -> float:
        return self.cluster.topology.broadcast(kind, size)

    def sharded_gather(
        self, kind: MessageKind, sizes: Sequence[int], n_servers: int
    ) -> float:
        return self.cluster.topology.sharded_gather(kind, sizes, n_servers)

    def sharded_broadcast(
        self, kind: MessageKind, size: int, n_servers: int
    ) -> float:
        return self.cluster.topology.sharded_broadcast(kind, size, n_servers)

    def allreduce(self, kind: MessageKind, size: int) -> float:
        # The simulated ring hardcodes MODEL_AVG framing inside
        # allreduce_time; ``kind`` is accepted for interface symmetry.
        return allreduce_time(self.cluster.network, size, self.n_workers)
