"""Deadline-bounded waiting — the only sanctioned blocking primitives.

Every wait in :mod:`repro.runtime` must be bounded: a hung or SIGKILLed
worker process must surface as a structured outcome, never as a parent
that blocks forever on ``conn.recv()``.  Lint rule R018 enforces this
mechanically — bare ``recv``/``poll``/``join``/``wait`` calls are
rejected everywhere in the runtime layer except inside this module,
which wraps each of them with an explicit timeout.

The *length* of the bound comes from :class:`TimeoutPolicy`, the local
backend's port of the simulator's :class:`~repro.engine.policy.TimeoutSync`
rule: the deadline for an exchange is ``alpha x median`` of recently
*measured* exchange durations (the sim uses the median of modeled
per-worker finish times), floored at ``floor_s`` so cold starts and
first exchanges are not suspected spuriously.  Retries back off
exponentially, exactly like ``RetrySync``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from statistics import median
from typing import List, Optional, Sequence, Tuple

from repro.utils.validation import check_non_negative, check_positive

#: Measured exchange durations retained for the alpha x median rule.
HISTORY_WINDOW = 32


@dataclass
class TimeoutPolicy:
    """The alpha x median deadline rule over measured exchange times.

    ``deadline_s()`` returns ``max(floor_s, alpha * median(history))``
    where the history holds the last :data:`HISTORY_WINDOW` measured
    exchange durations (fed via :meth:`observe`).  ``max_retries`` and
    ``backoff`` mirror the simulator's ``RetrySync`` knobs: attempt
    ``k`` waits ``deadline_s() * backoff**k`` before resending.
    """

    alpha: float = 3.0
    floor_s: float = 30.0
    max_retries: int = 2
    backoff: float = 2.0
    history: List[float] = field(default_factory=list)

    def __post_init__(self):
        check_positive(self.alpha, "alpha")
        check_positive(self.floor_s, "floor_s")
        check_non_negative(self.max_retries, "max_retries")
        check_positive(self.backoff, "backoff")

    def observe(self, seconds: float) -> None:
        """Record one successful exchange's measured duration."""
        check_non_negative(seconds, "seconds")
        self.history.append(float(seconds))
        del self.history[:-HISTORY_WINDOW]

    def deadline_s(self, attempt: int = 0) -> float:
        """Deadline for retry ``attempt`` (0 = the initial wait)."""
        check_non_negative(attempt, "attempt")
        base = self.floor_s
        if self.history:
            base = max(self.floor_s, self.alpha * median(self.history))
        return base * self.backoff ** attempt


# ----------------------------------------------------------------------
# sanctioned blocking primitives (R018: nothing else in repro.runtime
# may call recv / poll / join / wait directly)
# ----------------------------------------------------------------------
def wait_ready(conns: Sequence[object], timeout_s: float) -> List[object]:
    """Bounded ``multiprocessing.connection.wait``.

    Returns the connections with a frame (or EOF) available; an empty
    list means the deadline expired with nothing to read.  A connection
    whose peer was SIGKILLed becomes ready (its pipe hits EOF), so dead
    processes are *detected* here rather than hung on.
    """
    check_non_negative(timeout_s, "timeout_s")
    if not conns:
        return []
    return list(_mp_connection.wait(list(conns), timeout=timeout_s))


def recv_ready(conn) -> Tuple[bool, object]:
    """Receive from a connection :func:`wait_ready` reported ready.

    Returns ``(True, frame)``, or ``(False, None)`` when the readiness
    was EOF — the peer process is gone.  Never blocks: readiness was
    established by the bounded wait.
    """
    try:
        return True, conn.recv()
    except (EOFError, OSError, ConnectionResetError):
        return False, None


def recv_within(conn, timeout_s: float) -> Tuple[bool, Optional[object]]:
    """Bounded receive on one connection.

    ``(True, frame)`` on data, ``(False, None)`` on deadline expiry
    *or* EOF — callers distinguish the two by checking the peer process.
    """
    check_non_negative(timeout_s, "timeout_s")
    try:
        if not conn.poll(timeout_s):
            return False, None
        return True, conn.recv()
    except (EOFError, OSError, ConnectionResetError):
        return False, None


def recv_command(conn, poll_s: float = 1.0) -> Tuple[bool, Optional[object]]:
    """Child-side command wait: poll in bounded slices until a frame.

    Worker processes idle here between exchanges.  Polling in
    ``poll_s`` slices (instead of a bare ``recv``) keeps every wait in
    the runtime bounded and lets an orphaned child notice the master's
    EOF and exit: returns ``(True, frame)`` on data, ``(False, None)``
    when the master side of the pipe is gone.
    """
    check_positive(poll_s, "poll_s")
    while True:
        try:
            if conn.poll(poll_s):
                return True, conn.recv()
        except (EOFError, OSError, ConnectionResetError):
            return False, None


def join_within(proc, timeout_s: float) -> bool:
    """Bounded process join; True when the process exited in time."""
    check_non_negative(timeout_s, "timeout_s")
    proc.join(timeout_s)
    return not proc.is_alive()
